"""Ablation: knowledge-compilation backend (DPLL vs OBDD).

DESIGN.md substitutes a top-down DPLL compiler for c2d; OBDDs are the
classic alternative d-D target.  This bench compares compiled-circuit
sizes and end-to-end exact Shapley time over the ground-truth circuits.

Expected shape: the DPLL compiler produces smaller circuits on
join-style lineage (component decomposition exploits the DNF block
structure), while OBDDs win on some narrow/chained inputs.
"""

from repro.bench import format_table, mean, write_csv
from repro.circuits import eliminate_auxiliary, tseytin_transform
from repro.compiler import compile_circuit_obdd, compile_cnf
from repro.core import shapley_all_facts

HEADERS = [
    "backend", "circuits", "mean d-D size", "worst d-D size",
    "mean exact time [s]",
]


def _dpll(circuit):
    cnf = tseytin_transform(circuit)
    return eliminate_auxiliary(
        compile_cnf(cnf).circuit, set(cnf.labels.values())
    )


def _obdd(circuit):
    compiled, _ = compile_circuit_obdd(circuit)
    return compiled


def test_ablation_compile_backend(ground_truth_records, results_dir, capsys, benchmark):
    import time

    records = [r for r in ground_truth_records if r.n_facts <= 60][:40]
    rows = []
    agreement_checked = 0
    for name, backend in (("DPLL (c2d role)", _dpll), ("OBDD", _obdd)):
        sizes, times = [], []
        for record in records:
            players = sorted(record.values)
            start = time.perf_counter()
            compiled = backend(record.circuit)
            values = shapley_all_facts(compiled, players)
            times.append(time.perf_counter() - start)
            sizes.append(len(compiled))
            if name == "OBDD" and agreement_checked < 10:
                assert values == record.values  # backends agree exactly
                agreement_checked += 1
        rows.append([name, len(records), mean(sizes), max(sizes), mean(times)])

    write_csv(results_dir / "ablation_backends.csv", HEADERS, rows)
    with capsys.disabled():
        print("\nAblation — compilation backend")
        print(format_table(HEADERS, rows))

    mid = sorted(records, key=lambda r: r.n_facts)[len(records) // 2]
    benchmark(_dpll, mid.circuit)
    assert agreement_checked > 0
