"""Shared fixtures for the benchmark suite.

Each bench module reproduces one table or figure of the paper (see
DESIGN.md's per-experiment index).  The fixtures here generate the two
datasets once per session and run the exact pipeline over the full
query suites, so individual benches only aggregate.

Results are printed live (``capsys.disabled``) and written as CSV under
``benchmarks/results/``.
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench import run_suite  # noqa: E402
from repro.compiler import CompilationBudget  # noqa: E402
from repro.engine import ArtifactCache, PersistentArtifactStore  # noqa: E402
from repro.workloads import (  # noqa: E402
    IMDB_QUERIES,
    TPCH_QUERIES,
    ImdbConfig,
    TpchConfig,
    generate_imdb,
    generate_tpch,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's recommended hybrid timeout; doubles as the per-output
#: budget of the exact pipeline in all benches.
EXACT_BUDGET = CompilationBudget(max_nodes=400_000, max_seconds=2.5)

TPCH_CONFIG = TpchConfig(scale_factor=0.0005)
IMDB_CONFIG = ImdbConfig()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def tpch_db():
    return generate_tpch(TPCH_CONFIG)


@pytest.fixture(scope="session")
def imdb_db():
    return generate_imdb(IMDB_CONFIG)


@pytest.fixture(scope="session")
def artifact_store(tmp_path_factory) -> PersistentArtifactStore:
    """One disk-backed artifact store shared by every driver of the
    session: the suite fixtures below populate it and fig6/fig7/fig8/
    table2 reuse the same canonical artifacts instead of recompiling
    or re-Tseytin-ing per driver.  The byte budget is generous (the
    suites fit well under it) but keeps a long-lived results machine
    from growing the directory without bound."""
    return PersistentArtifactStore(
        tmp_path_factory.mktemp("artifact-store"), max_bytes=512 << 20
    )


@pytest.fixture(scope="session")
def shared_cache(artifact_store) -> ArtifactCache:
    """The session-wide two-tier artifact cache over ``artifact_store``."""
    return ArtifactCache(store=artifact_store)


@pytest.fixture(scope="session")
def tpch_runs(tpch_db, shared_cache):
    """Exact pipeline over every output tuple of the TPC-H suite."""
    return run_suite(
        tpch_db, TPCH_QUERIES, "TPC-H", budget=EXACT_BUDGET,
        keep_values=True, cache=shared_cache,
    )


@pytest.fixture(scope="session")
def imdb_runs(imdb_db, shared_cache):
    """Exact pipeline over every output tuple of the IMDB suite (the
    largest-output queries are capped to keep the session short)."""
    return run_suite(
        imdb_db, IMDB_QUERIES, "IMDB", budget=EXACT_BUDGET,
        keep_values=True, max_outputs=40, cache=shared_cache,
    )


@pytest.fixture(scope="session")
def all_records(tpch_runs, imdb_runs):
    """Every per-output record across both datasets."""
    records = []
    for run in tpch_runs + imdb_runs:
        records.extend(run.records)
    return records


@pytest.fixture(scope="session")
def ground_truth_records(all_records):
    """Records where exact computation succeeded (the ground truth used
    by the inexact-method experiments), sampled deterministically."""
    import random

    ok = [r for r in all_records if r.ok and r.values and r.n_facts >= 2]
    rng = random.Random(1234)
    rng.shuffle(ok)
    return ok[:120]
