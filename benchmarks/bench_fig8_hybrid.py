"""Figure 8: the hybrid strategy vs its timeout parameter.

Sweeps the hybrid timeout and reports (a) the exact-computation success
rate and (b) the mean execution time of the hybrid, per dataset —
justifying the paper's choice of 2.5 s.

Expected shape: success rate saturates quickly in the timeout (most
outputs either finish fast or essentially never), while the mean
execution time keeps growing with the timeout on the dataset with more
hard cases (TPC-H in the paper).
"""

from repro.bench import format_table, mean, write_csv
from repro.engine import EngineOptions, get_engine

TIMEOUTS = [0.05, 0.2, 0.5, 1.0, 2.5]
HEADERS = ["dataset", "timeout [s]", "outputs", "exact rate", "mean time [s]"]


def _sweep(records, dataset):
    hybrid = get_engine("hybrid")
    rows = []
    usable = [r for r in records if r.circuit is not None]
    for timeout in TIMEOUTS:
        kinds = []
        times = []
        # Deliberately uncached: the session's shared artifact store
        # (already warm from the suite fixtures) would rescue every
        # timeout with a d-DNNF hit and flatten the sweep — the whole
        # point here is the *cold* success-rate-vs-timeout trade-off.
        options = EngineOptions(timeout=timeout)
        for record in usable:
            players = sorted(record.circuit.reachable_vars())
            result = hybrid.explain_circuit(record.circuit, players, options)
            kinds.append(result.exact)
            times.append(result.seconds)
        rows.append(
            [
                dataset, timeout, len(usable),
                f"{sum(kinds) / len(kinds):.2%}", mean(times),
            ]
        )
    return rows


def test_fig8_hybrid_timeout_sweep(
    tpch_runs, imdb_runs, shared_cache, results_dir, capsys, benchmark
):
    tpch_records = [r for run in tpch_runs for r in run.records][:40]
    imdb_records = [r for run in imdb_runs for r in run.records][:60]
    rows = _sweep(tpch_records, "TPC-H") + _sweep(imdb_records, "IMDB")

    write_csv(results_dir / "fig8_hybrid.csv", HEADERS, rows)
    with capsys.disabled():
        print("\nFig 8 — hybrid success rate and mean time vs timeout")
        print(format_table(HEADERS, rows))

    # Kernel: one hybrid call at the recommended timeout, in the warm
    # production regime (the shared store serves the compiled shape).
    record = next(r for r in imdb_records if r.circuit is not None)
    players = sorted(record.circuit.reachable_vars())
    hybrid = get_engine("hybrid")
    benchmark(
        hybrid.explain_circuit, record.circuit, players,
        EngineOptions(timeout=2.5, cache=shared_cache),
    )

    # Shape: success rate is non-decreasing in the timeout per dataset.
    for dataset in ("TPC-H", "IMDB"):
        rates = [
            float(row[3].strip("%")) for row in rows if row[0] == dataset
        ]
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
