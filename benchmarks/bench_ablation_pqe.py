"""Ablation: extensional (lifted) vs intensional (lineage + compile)
probabilistic query evaluation, and the Prop. 3.1 reduction end to end.

The reduction Shapley <= PQE makes n+1 oracle calls; with the lifted
oracle on a hierarchical query the whole pipeline is polynomial.  This
bench measures both oracles on a hierarchical query over growing data,
plus the full reduction against Algorithm 1 on the same instance.

Expected shape: lifted PQE scales linearly-ish and beats the lineage
route as data grows; the reduction (n+1 oracle calls + interpolation)
is far slower than Algorithm 1 for the same answer — which is exactly
why the paper treats the reduction as theory and compiles circuits in
practice.
"""

import time
from fractions import Fraction

from repro.bench import format_table, write_csv
from repro.core import shapley_via_pqe
from repro.db import Database, RelationSchema, Schema, cq
from repro.probdb import TupleIndependentDatabase, pqe_lifted, pqe_lineage

HEADERS = ["facts", "lifted PQE [s]", "lineage PQE [s]", "agree"]


def _chain_db(size):
    schema = Schema.of(
        RelationSchema.of("R", "a"), RelationSchema.of("S", "a", "b")
    )
    db = Database(schema)
    probs = {}
    for i in range(size):
        probs[db.add("R", i)] = Fraction(1, 2)
        probs[db.add("S", i, i + 100)] = Fraction(1, 3)
        probs[db.add("S", i, i + 200)] = Fraction(1, 4)
    return db, TupleIndependentDatabase(db, probs)


def test_ablation_pqe_oracles(results_dir, capsys, benchmark):
    query = cq(None, "R(x)", "S(x, y)")
    rows = []
    for size in (4, 8, 16, 32):
        db, tid = _chain_db(size)
        start = time.perf_counter()
        lifted = pqe_lifted(query, tid)
        t_lifted = time.perf_counter() - start
        start = time.perf_counter()
        lineage_prob = pqe_lineage(query, tid)
        t_lineage = time.perf_counter() - start
        rows.append([3 * size, t_lifted, t_lineage, lifted == lineage_prob])
        assert lifted == lineage_prob

    write_csv(results_dir / "ablation_pqe.csv", HEADERS, rows)
    with capsys.disabled():
        print("\nAblation — PQE oracles on a hierarchical query")
        print(format_table(HEADERS, rows))

    db, tid = _chain_db(8)
    benchmark(pqe_lifted, query, tid)


def test_ablation_reduction_vs_algorithm1(results_dir, capsys, benchmark):
    from repro.core import exact_shapley_of_circuit
    from repro.db import lineage as lineage_of

    query = cq(None, "R(x)", "S(x, y)")
    db, _ = _chain_db(3)
    fact = db.endogenous_facts()[0]

    start = time.perf_counter()
    via_reduction = shapley_via_pqe(query, db, fact, oracle=pqe_lifted)
    t_reduction = time.perf_counter() - start

    plan = query.to_algebra(db.schema)
    start = time.perf_counter()
    circuit = lineage_of(plan, db, endogenous_only=True).lineage_of(())
    values = exact_shapley_of_circuit(circuit, db.endogenous_facts())
    t_alg1 = time.perf_counter() - start

    assert values[fact] == via_reduction
    rows = [["Prop 3.1 reduction", t_reduction], ["Algorithm 1", t_alg1]]
    write_csv(results_dir / "ablation_reduction.csv", ["route", "seconds"], rows)
    with capsys.disabled():
        print("\nAblation — Prop 3.1 reduction vs Algorithm 1 (one fact)")
        print(format_table(["route", "seconds"], rows))

    benchmark(shapley_via_pqe, query, db, fact, oracle=pqe_lifted)
