"""Ablation: Algorithm 1's all-facts strategies — the paper's per-fact
conditioning loop (O(|C| n^3) total), the legacy shared derivative pass
over an explicitly smoothed circuit, and the smoothing-free compiled
gate tape (PR 4).

Expected shape: both shared passes beat conditioning increasingly with
the number of facts, and the smoothing-free tape is at least as fast as
the smoothed pass (it skips the padding gates and the per-call circuit
traversal); all three return identical exact values (asserted).
"""

import time

from repro.bench import bucket_of, format_table, mean, write_csv
from repro.circuits import eliminate_auxiliary, tseytin_transform
from repro.compiler import compile_cnf
from repro.core import shapley_all_facts

HEADERS = [
    "bucket", "circuits", "conditioning [s]", "smoothed [s]",
    "smoothing-free [s]", "speedup vs smoothed",
]


def test_ablation_all_facts_modes(ground_truth_records, results_dir, capsys, benchmark):
    records = [r for r in ground_truth_records if r.n_facts <= 120][:50]
    per_bucket: dict[str, list[tuple[float, float, float]]] = {}
    checked = 0
    compiled_cache = []
    for record in records:
        cnf = tseytin_transform(record.circuit)
        ddnnf = eliminate_auxiliary(
            compile_cnf(cnf).circuit, set(cnf.labels.values())
        )
        players = sorted(record.values)
        start = time.perf_counter()
        conditioning = shapley_all_facts(ddnnf, players, method="conditioning")
        t_cond = time.perf_counter() - start
        start = time.perf_counter()
        smoothed = shapley_all_facts(ddnnf, players, method="smoothed")
        t_smooth = time.perf_counter() - start
        start = time.perf_counter()
        derivative = shapley_all_facts(ddnnf, players, method="derivative")
        t_der = time.perf_counter() - start
        assert conditioning == smoothed == derivative
        checked += 1
        bucket = bucket_of(record.n_facts) or ">400"
        per_bucket.setdefault(bucket, []).append((t_cond, t_smooth, t_der))
        compiled_cache.append((ddnnf, players))

    rows = []
    for bucket in sorted(per_bucket, key=lambda b: int(b.strip(">").split("-")[0])):
        triples = per_bucket[bucket]
        cond = mean([t[0] for t in triples])
        smooth = mean([t[1] for t in triples])
        der = mean([t[2] for t in triples])
        rows.append([bucket, len(triples), cond, smooth, der,
                     smooth / der if der else float("nan")])

    write_csv(results_dir / "ablation_shapley_modes.csv", HEADERS, rows)
    with capsys.disabled():
        print(f"\nAblation — Algorithm 1 modes over {checked} circuits")
        print(format_table(HEADERS, rows))

    # Kernel: smoothing-free derivative mode on the largest compiled
    # circuit.
    big = max(compiled_cache, key=lambda pair: len(pair[0]))
    benchmark(shapley_all_facts, big[0], big[1], method="derivative")

    # Shape: on the largest bucket the shared passes are not slower
    # than conditioning, and the smoothing-free tape holds its own
    # against the smoothed pass.
    if len(rows) >= 2:
        last = rows[-1]
        assert last[2] / last[4] >= 0.8  # conditioning / smoothing-free
        assert last[5] >= 0.8            # smoothed / smoothing-free
