"""Ablation: Algorithm 1's per-fact conditioning loop (the paper's
O(|C| n^3) total) vs the shared forward/backward-derivative pass
(O(|C| n^2) total).

Expected shape: the derivative mode wins increasingly with the number
of facts; both return identical exact values (asserted).
"""

import time

from repro.bench import bucket_of, format_table, mean, write_csv
from repro.circuits import eliminate_auxiliary, tseytin_transform
from repro.compiler import compile_cnf
from repro.core import shapley_all_facts

HEADERS = ["bucket", "circuits", "conditioning [s]", "derivative [s]", "speedup"]


def test_ablation_all_facts_modes(ground_truth_records, results_dir, capsys, benchmark):
    records = [r for r in ground_truth_records if r.n_facts <= 120][:50]
    per_bucket: dict[str, list[tuple[float, float]]] = {}
    checked = 0
    compiled_cache = []
    for record in records:
        cnf = tseytin_transform(record.circuit)
        ddnnf = eliminate_auxiliary(
            compile_cnf(cnf).circuit, set(cnf.labels.values())
        )
        players = sorted(record.values)
        start = time.perf_counter()
        conditioning = shapley_all_facts(ddnnf, players, method="conditioning")
        t_cond = time.perf_counter() - start
        start = time.perf_counter()
        derivative = shapley_all_facts(ddnnf, players, method="derivative")
        t_der = time.perf_counter() - start
        assert conditioning == derivative
        checked += 1
        bucket = bucket_of(record.n_facts) or ">400"
        per_bucket.setdefault(bucket, []).append((t_cond, t_der))
        compiled_cache.append((ddnnf, players))

    rows = []
    for bucket in sorted(per_bucket, key=lambda b: int(b.strip(">").split("-")[0])):
        pairs = per_bucket[bucket]
        cond = mean([p[0] for p in pairs])
        der = mean([p[1] for p in pairs])
        rows.append([bucket, len(pairs), cond, der,
                     cond / der if der else float("nan")])

    write_csv(results_dir / "ablation_shapley_modes.csv", HEADERS, rows)
    with capsys.disabled():
        print(f"\nAblation — Algorithm 1 modes over {checked} circuits")
        print(format_table(HEADERS, rows))

    # Kernel: derivative mode on the largest compiled circuit.
    big = max(compiled_cache, key=lambda pair: len(pair[0]))
    benchmark(shapley_all_facts, big[0], big[1], method="derivative")

    # Shape: on the largest bucket the shared pass is not slower.
    if len(rows) >= 2:
        assert rows[-1][4] >= 0.8
