"""Ablation: numeric kernels (PR 4).

Recomputes exact Shapley values for the ground-truth records consumed
by the fig6/fig7/table2 drivers under every registered numeric kernel
and every all-facts mode, asserting byte-identical Fractions (the
acceptance criterion of PR 4), and reports per-bucket timing of the
reference vs the vectorized backend on the smoothing-free tape pass.
"""

import time
from fractions import Fraction

from repro.bench import bucket_of, format_table, mean, write_csv
from repro.circuits import eliminate_auxiliary, tseytin_transform
from repro.compiler import compile_cnf
from repro.core import shapley_all_facts
from repro.core.numerics import HAS_NUMPY, available_kernels, get_kernel

MODES = ("conditioning", "smoothed", "derivative")
HEADERS = ["bucket", "circuits", "python [s]", "numpy [s]", "numpy available"]


def test_ablation_numeric_kernels(
    ground_truth_records, results_dir, capsys, benchmark
):
    records = [r for r in ground_truth_records if r.n_facts <= 120][:40]
    kernels = [get_kernel(name) for name in available_kernels()]
    per_bucket: dict[str, list[tuple[float, float]]] = {}
    compiled = []
    for record in records:
        cnf = tseytin_transform(record.circuit)
        ddnnf = eliminate_auxiliary(
            compile_cnf(cnf).circuit, set(cnf.labels.values())
        )
        players = sorted(record.values)
        compiled.append((ddnnf, players))

        # Acceptance: every kernel x mode combination returns the very
        # Fractions the drivers' ground truth was computed from.
        reference = record.values
        for kernel in kernels:
            for mode in MODES:
                values = shapley_all_facts(
                    ddnnf, players, method=mode, kernel=kernel
                )
                assert values == reference, (kernel.name, mode)
                assert all(type(v) is Fraction for v in values.values())

        start = time.perf_counter()
        shapley_all_facts(ddnnf, players, kernel="python")
        t_python = time.perf_counter() - start
        start = time.perf_counter()
        shapley_all_facts(ddnnf, players, kernel="numpy")
        t_numpy = time.perf_counter() - start
        bucket = bucket_of(record.n_facts) or ">400"
        per_bucket.setdefault(bucket, []).append((t_python, t_numpy))

    rows = []
    for bucket in sorted(per_bucket, key=lambda b: int(b.strip(">").split("-")[0])):
        pairs = per_bucket[bucket]
        rows.append([
            bucket, len(pairs),
            mean([p[0] for p in pairs]), mean([p[1] for p in pairs]),
            HAS_NUMPY,
        ])
    write_csv(results_dir / "ablation_numerics.csv", HEADERS, rows)
    with capsys.disabled():
        print(f"\nAblation — numeric kernels over {len(compiled)} circuits "
              f"(numpy available: {HAS_NUMPY})")
        print(format_table(HEADERS, rows))

    # Kernel: the vectorized backend on the largest compiled circuit.
    big = max(compiled, key=lambda pair: len(pair[0]))
    benchmark(shapley_all_facts, big[0], big[1], kernel="numpy")
