"""PR 8 acceptance driver: writes BENCH_8.json at the repo root.

Checks, in one run:

1. **Warm-batch throughput** — a 100-answer same-shape batch from the
   fig7 ground-truth pool, executed warm (tape compiled, plan cached):
   the cross-answer batched ``(batch, planes, slots, width)`` pass must
   beat the PR 5 per-answer machine-width loop by >= 2x (median over
   warmed repeats), with byte-identical Fractions.
2. **Batched/per-answer x kernel x transport matrix** — on a join
   workload, batched sessions on every kernel (python / auto / torch)
   and every transport (thread / process / socket) return Fractions
   byte-identical to the unbatched reference session.
3. **Mixed-tier batch** — one batch spanning the float64 tier, the CRT
   tier, and a beyond-capacity fallback shape stays exact lane by lane
   (eligible lanes batched, the fallback lane interpreted).
4. **Budget knob** — ``bench --fastpath-budget`` with a tiny budget
   reports every answer under ``fastpath_budget_fallbacks`` and still
   returns exact values.

Run with ``PYTHONPATH=src python benchmarks/run_pr8.py``; pass
``--quick`` (the CI perf-smoke mode) to shrink the pool, skip the
timing assertion (CI runners are too noisy to gate on wall-clock
ratios), and skip writing BENCH_8.json.
"""

import io
import json
import random
import statistics
import sys
import tempfile
import threading
import time
from contextlib import redirect_stdout
from fractions import Fraction
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.bench import run_suite  # noqa: E402
from repro.circuits import (  # noqa: E402
    Circuit, eliminate_auxiliary, tseytin_transform,
)
from repro.cli import main as cli_main  # noqa: E402
from repro.compiler import CompilationBudget, compile_cnf  # noqa: E402
from repro.core import shapley_all_facts  # noqa: E402
from repro.core.numerics import (  # noqa: E402
    HAS_NUMPY,
    HAS_TORCH,
    FastpathStats,
    compile_tape,
    plan_for,
)
from repro.core.shapley import shapley_all_facts_batched  # noqa: E402
from repro.db import (  # noqa: E402
    Database, RelationSchema, Schema, cq,
)
from repro.engine import (  # noqa: E402
    Coordinator, EngineOptions, ExplainSession, run_worker,
)
from repro.workloads import (  # noqa: E402
    TPCH_QUERIES, TpchConfig, generate_tpch,
)

EXACT_BUDGET = CompilationBudget(max_nodes=400_000, max_seconds=2.5)
TIMING_REPEATS = 9
BATCH_SIZE = 100


def _timed(fn, repeats=TIMING_REPEATS):
    """``(min, median)`` seconds over ``repeats`` runs, after one
    explicit warm-up call."""
    fn()
    laps = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        laps.append(time.perf_counter() - start)
    return min(laps), statistics.median(laps)


def _compiled(circuit: Circuit):
    cnf = tseytin_transform(circuit)
    ddnnf = eliminate_auxiliary(
        compile_cnf(cnf).circuit, set(cnf.labels.values())
    )
    return ddnnf, sorted(ddnnf.reachable_vars(), key=repr)


def _engineered_cnf(n_clauses: int, width: int, seed: int) -> Circuit:
    """Monotone CNF over disjoint shuffled clause blocks (run_pr5's
    tier-engineering helper)."""
    rng = random.Random(seed)
    labels = [f"v{i}" for i in range(n_clauses * width)]
    rng.shuffle(labels)
    circuit = Circuit()
    clauses = []
    for index in range(n_clauses):
        block = labels[index * width:(index + 1) * width]
        clauses.append(circuit.or_([circuit.var(v) for v in block]))
    circuit.output = circuit.and_(clauses)
    return circuit


def fig7_shape():
    """The largest machine-width-eligible shape of the fig7 ground
    truth pool (TPC-H half, same selection as run_pr5)."""
    runs = run_suite(
        generate_tpch(TpchConfig(scale_factor=0.0005)), TPCH_QUERIES,
        "TPC-H", budget=EXACT_BUDGET, keep_values=True,
    )
    records = [r for run in runs for r in run.records
               if r.ok and r.values and r.n_facts >= 2]
    records.sort(key=lambda r: -r.n_facts)
    for record in records:
        ddnnf, _ = _compiled(record.circuit)
        tape = compile_tape(ddnnf.condition({}))
        if plan_for(tape) is not None:
            return tape, sorted(record.values)
    raise AssertionError("no machine-width-eligible fig7 shape found")


def _shape_group(tape, players, size):
    """``size`` re-targeted answers of one shape, the engine's warm
    shape group."""
    tapes, endo = [], []
    for i in range(size):
        mapping = {label: (label, i) for label in tape.var_labels}
        tapes.append(tape.with_labels(mapping))
        endo.append([mapping.get(p, p) for p in players])
    return tapes, endo


def warm_batch_throughput(quick: bool) -> dict:
    """The headline gate: batched vs per-answer execution of a
    100-answer same-shape fig7 batch, warm."""
    tape, players = fig7_shape()
    size = 20 if quick else BATCH_SIZE
    tapes, endo = _shape_group(tape, players, size)

    def per_answer():
        return [
            shapley_all_facts(None, facts, method="derivative",
                              kernel="int64", tape=lane_tape)
            for lane_tape, facts in zip(tapes, endo)
        ]

    def batched():
        return shapley_all_facts_batched(tapes, endo, kernel="int64")

    reference = per_answer()
    values = batched()
    assert values == reference
    for lane in values:
        for value in lane.values():
            assert type(value) is Fraction
    per_min, per_median = _timed(per_answer)
    batch_min, batch_median = _timed(batched)
    speedup = round(per_median / batch_median, 3)
    if not quick:
        assert speedup >= 2.0, speedup
    plan = plan_for(tape)
    return {
        "batch_size": size,
        "n_facts": len(players),
        "tape_instructions": len(tape),
        "tier": plan.tier_name,
        "per_answer_median_seconds": round(per_median, 6),
        "per_answer_min_seconds": round(per_min, 6),
        "batched_median_seconds": round(batch_median, 6),
        "batched_min_seconds": round(batch_min, 6),
        "speedup_median": speedup,
        "timing_repeats": TIMING_REPEATS,
        "identical_fractions": True,
    }


JOIN_QUERY = cq(["a"], "R(a, b)", "S(b, c)")


def _join_database(n_answers: int, fanout: int) -> Database:
    """Pairwise-isomorphic lineages — one warm shape group per run
    (mirrors tests/test_store.py)."""
    schema = Schema.of(
        RelationSchema.of("R", "a", "b"), RelationSchema.of("S", "b", "c")
    )
    db = Database(schema)
    for i in range(n_answers):
        db.add("R", f"x{i}", f"y{i}")
        for j in range(fanout):
            db.add("S", f"y{i}", f"z{i}_{j}")
    return db


def transport_matrix(quick: bool) -> dict:
    """Batched sessions across kernels and transports vs the unbatched
    reference — the ``identical_fractions`` acceptance matrix."""
    db = _join_database(6 if quick else 10, 2)
    reference = ExplainSession(
        db, method="exact", options=EngineOptions(batch_execution=False),
    ).explain_many(JOIN_QUERY)
    expected = {answer: result.values for answer, result in reference.items()}
    coordinator = Coordinator().start()
    with tempfile.TemporaryDirectory() as store_dir:
        ready = threading.Barrier(3, timeout=30)
        threads = [
            threading.Thread(
                target=run_worker, args=(coordinator.address,),
                kwargs={"cache_dir": store_dir, "on_ready": ready.wait},
                daemon=True,
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        ready.wait()
        coordinator.wait_for_workers(2, timeout=30)
        combos = []
        try:
            for backend in ("python", "auto", "torch"):
                with ExplainSession(
                    db, method="exact", max_workers=2,
                    options=EngineOptions(numeric_backend=backend),
                    coordinator=coordinator.address, min_workers=2,
                ) as session:
                    for executor in ("thread", "process", "socket"):
                        results = session.explain_many(
                            JOIN_QUERY, executor=executor)
                        got = {a: r.values for a, r in results.items()}
                        assert got == expected, (backend, executor)
                        assert all(
                            type(v) is Fraction
                            for values in got.values()
                            for v in values.values()
                        ), (backend, executor)
                        combos.append(f"{backend}/{executor}")
        finally:
            coordinator.shutdown()
            for thread in threads:
                thread.join(timeout=10)
    return {
        "answers": len(expected),
        "combinations": combos,
        "torch_available": HAS_TORCH,
        "identical_fractions": True,
    }


def mixed_tier_batch() -> dict:
    """One batch spanning float64, CRT, and beyond-capacity lanes."""
    shapes = [(12, 3, 0), (23, 3, 0), (50, 3, 4)]
    lanes = []
    for n_clauses, width, seed in shapes:
        ddnnf, players = _compiled(_engineered_cnf(n_clauses, width, seed))
        lanes.append((compile_tape(ddnnf.condition({})), players))
    tapes, endo = [], []
    for i, (tape, players) in enumerate(lanes * 2):
        mapping = {label: (label, i) for label in tape.var_labels}
        tapes.append(tape.with_labels(mapping))
        endo.append([mapping[p] for p in players])
    stats = FastpathStats()
    values = shapley_all_facts_batched(
        tapes, endo, kernel="int64", fastpath_stats=stats)
    for lane_tape, facts, got in zip(tapes, endo, values):
        reference = shapley_all_facts(
            None, facts, method="derivative", kernel="python",
            tape=lane_tape)
        assert got == reference
    assert stats.hits == 4 and stats.ineligible == 2, stats
    return {
        "lanes": len(tapes),
        "fastpath_hits": stats.hits,
        "fastpath_ineligible_fallbacks": stats.ineligible,
        "identical_fractions": True,
    }


def budget_knob_check() -> dict:
    """``bench --fastpath-budget`` end to end: a tiny budget routes
    every answer to the exact pass and counts it by reason."""
    def bench(extra):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli_main([
                "bench", "--workload", "flights",
                "--numeric-backend", "auto", "--json", *extra,
            ])
        assert code == 0, buffer.getvalue()
        return json.loads(buffer.getvalue())

    tiny = bench(["--fastpath-budget", "1k"])
    roomy = bench([])
    assert tiny["stats"]["fastpath_budget_fallbacks"] == tiny["outputs"]
    assert tiny["stats"]["fastpath_hits"] == 0
    assert roomy["stats"]["fastpath_budget_fallbacks"] == 0
    assert tiny["ok"] == roomy["ok"] == tiny["outputs"]
    return {
        "tiny_budget_fallbacks": tiny["stats"]["fastpath_budget_fallbacks"],
        "default_budget_fallbacks":
            roomy["stats"]["fastpath_budget_fallbacks"],
        "outputs": tiny["outputs"],
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    if not HAS_NUMPY:
        print("run_pr8 needs NumPy (the batched machine-width tier "
              "under test)")
        return 1
    started = time.time()
    print("PR 8 acceptance: warm-batch throughput "
          f"({'20' if quick else str(BATCH_SIZE)}-answer fig7 shape "
          "group) ...", flush=True)
    throughput = warm_batch_throughput(quick)
    print(f"  speedup {throughput['speedup_median']}x "
          f"({throughput['tier']}, batch {throughput['batch_size']})",
          flush=True)
    print("PR 8 acceptance: kernel x transport matrix ...", flush=True)
    matrix = transport_matrix(quick)
    torch_note = ("present" if HAS_TORCH
                  else "absent: int64 serves torch requests")
    print(f"  {len(matrix['combinations'])} combinations identical "
          f"(torch {torch_note})", flush=True)
    print("PR 8 acceptance: mixed-tier batch ...", flush=True)
    mixed = mixed_tier_batch()
    print("PR 8 acceptance: fastpath budget knob ...", flush=True)
    budget = budget_knob_check()
    payload = {
        "pr": 8,
        "title": "Cross-answer batched LevelPlan execution with an "
                 "optional GPU kernel backend",
        "numpy_available": HAS_NUMPY,
        "torch_available": HAS_TORCH,
        "quick": quick,
        "warm_batch_throughput": throughput,
        "transport_matrix": matrix,
        "mixed_tier_batch": mixed,
        "fastpath_budget": budget,
        "total_seconds": round(time.time() - started, 1),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not quick:
        out = ROOT / "BENCH_8.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
