"""Table 1: statistics of the exact Shapley computation per query.

Reproduces the paper's Table 1 columns — #joined tables, #filter
conditions, query evaluation time, #output tuples, success rate, and
mean/p25/p50/p75/p99 of the knowledge-compilation and Algorithm 1
steps — for the eight TPC-H and nine IMDB suite queries.

Expected shape (paper): most outputs succeed within the budget; the
failures concentrate on the many-join/projection-heavy queries (the
paper's Q5/Q7 analogues); Algorithm 1 is usually much cheaper than KC
but has heavy-tailed outliers (q19/11d analogues).
"""

from repro.bench import (
    TABLE1_HEADERS,
    format_table,
    table1_rows,
    write_csv,
)
from repro.core import run_exact


def _print_table(rows, capsys):
    with capsys.disabled():
        print()
        print(format_table(TABLE1_HEADERS, rows))


def test_table1_tpch(tpch_runs, results_dir, capsys, benchmark):
    rows = table1_rows(tpch_runs, "TPC-H")
    write_csv(results_dir / "table1_tpch.csv", TABLE1_HEADERS, rows)
    _print_table(rows, capsys)

    # Benchmark kernel: the exact pipeline on a median-sized Q3 output.
    records = [r for run in tpch_runs for r in run.records if r.ok and r.circuit]
    records.sort(key=lambda r: r.n_facts)
    record = records[len(records) // 2]
    players = sorted(record.circuit.reachable_vars())
    benchmark(run_exact, record.circuit, players)

    assert any(run.success_rate > 0 for run in tpch_runs)


def test_table1_imdb(imdb_runs, results_dir, capsys, benchmark):
    rows = table1_rows(imdb_runs, "IMDB")
    write_csv(results_dir / "table1_imdb.csv", TABLE1_HEADERS, rows)
    _print_table(rows, capsys)

    records = [r for run in imdb_runs for r in run.records if r.ok and r.circuit]
    records.sort(key=lambda r: r.n_facts)
    record = records[len(records) // 2]
    players = sorted(record.circuit.reachable_vars())
    benchmark(run_exact, record.circuit, players)

    # Paper shape: the vast majority of IMDB outputs succeed.
    total = sum(len(run.records) for run in imdb_runs)
    ok = sum(len(run.ok_records()) for run in imdb_runs)
    with capsys.disabled():
        print(f"\nIMDB success rate: {ok}/{total} = {ok / total:.2%}")
    assert ok / total > 0.8
