"""Figure 5: Algorithm 1 runtime as a function of TPC-H scale.

The paper scales the lineitem table and tracks the runtime of the exact
computation for representative query outputs: easy outputs stay in the
milliseconds (5a) while difficult outputs grow steeply and eventually
fail on the full data (5b).  We sweep the generator's scale factor and
measure the mean per-output exact time for an easy query (Q3) and a
hard one (Q5's projection onto the nation).

Expected shape: Q3's per-output time is flat-ish in scale (per-answer
lineage stays small); Q5's grows superlinearly and hits the budget at
the largest scale.
"""

from repro.bench import format_table, run_query, write_csv
from repro.compiler import CompilationBudget
from repro.workloads import TpchConfig, generate_tpch, tpch_query

SCALES = [0.0002, 0.0004, 0.0006, 0.0008]
HEADERS = [
    "scale", "lineitems",
    "Q3 outputs", "Q3 mean exact [s]", "Q3 success",
    "Q5 outputs", "Q5 mean exact [s]", "Q5 success",
]


def test_fig5_scaling(results_dir, capsys, benchmark):
    budget = CompilationBudget(max_nodes=400_000, max_seconds=2.5)
    rows = []
    keep = None
    for scale in SCALES:
        db = generate_tpch(TpchConfig(scale_factor=scale))
        lineitems = len(db.relation("lineitem"))
        q3 = run_query(db, tpch_query("Q3"), "TPC-H", budget=budget,
                       max_outputs=25, keep_values=True)
        q5 = run_query(db, tpch_query("Q5"), "TPC-H", budget=budget,
                       keep_values=True)
        rows.append(
            [
                scale, lineitems,
                len(q3.records),
                _mean_total(q3), f"{q3.success_rate:.0%}",
                len(q5.records),
                _mean_total(q5), f"{q5.success_rate:.0%}",
            ]
        )
        if scale == SCALES[1]:
            keep = next((r for r in q3.records if r.ok and r.circuit), None)

    write_csv(results_dir / "fig5_tpch_scale.csv", HEADERS, rows)
    with capsys.disabled():
        print("\nFig 5 — exact runtime vs lineitem scale")
        print(format_table(HEADERS, rows))

    # Kernel: exact pipeline at the second scale point.
    from repro.core import run_exact

    assert keep is not None
    players = sorted(keep.circuit.reachable_vars())
    benchmark(run_exact, keep.circuit, players)

    # Shape: data grows monotonically with scale.
    assert rows[-1][1] > rows[0][1]


def _mean_total(run):
    ok = run.ok_records()
    if not ok:
        return float("nan")
    return sum(r.total_seconds for r in ok) / len(ok)
