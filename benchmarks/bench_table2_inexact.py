"""Table 2: median (mean) performance of the inexact methods at the
largest sampling budget (50 samples per fact).

For every ground-truth record (exact computation succeeded) we run
Monte Carlo, Kernel SHAP and CNF Proxy and report execution time, L1,
L2, nDCG, Precision@5 and Precision@10 against the exact values.

Expected shape (paper's Table 2): CNF Proxy is orders of magnitude
faster than both sampling methods with equal-or-better ranking quality
(nDCG, P@k); Kernel SHAP achieves the best L1/L2 (it approximates the
*values*, which CNF Proxy does not even attempt).
"""

from repro.bench import format_table, write_csv
from repro.core import l1_error, l2_error, ndcg, precision_at_k, summarize
from repro.engine import EngineOptions, get_engine

SAMPLES_PER_FACT = 50
METRICS = ["time", "L1", "L2", "nDCG", "P@5", "P@10"]
#: Display name -> registered engine name: dispatch goes through the
#: engine registry, so adding a method here is one more pair.
ENGINES = [
    ("Monte Carlo", "monte_carlo"),
    ("Kernel SHAP", "kernel_shap"),
    ("CNF Proxy", "proxy"),
]
HEADERS = ["metric"] + [display for display, _ in ENGINES]


def _evaluate_method(records, engine_name, seed=0, cache=None):
    engine = get_engine(engine_name)
    stats = {metric: [] for metric in METRICS}
    for index, record in enumerate(records):
        truth = {f: float(v) for f, v in record.values.items()}
        players = sorted(record.values)
        # `cache` only matters to CNF Proxy (the sampling engines never
        # compile); it serves Tseytin CNFs from the session's shared
        # two-tier artifact store.
        options = EngineOptions(
            samples_per_fact=SAMPLES_PER_FACT, seed=seed + index, cache=cache
        )
        result = engine.explain_circuit(record.circuit, players, options)
        estimate = {f: float(v) for f, v in result.values.items()}
        stats["time"].append(result.seconds)
        stats["L1"].append(l1_error(truth, estimate))
        stats["L2"].append(l2_error(truth, estimate))
        stats["nDCG"].append(ndcg(truth, estimate))
        stats["P@5"].append(precision_at_k(truth, estimate, 5))
        stats["P@10"].append(precision_at_k(truth, estimate, 10))
    return stats


def test_table2(ground_truth_records, shared_cache, results_dir, capsys, benchmark):
    records = ground_truth_records
    by_method = {
        display: _evaluate_method(records, name, cache=shared_cache)
        for display, name in ENGINES
    }

    rows = []
    for metric in METRICS:
        row = [metric]
        for display, _ in ENGINES:
            stats = summarize(by_method[display][metric])
            row.append(f"{stats['median']:.4g} ({stats['mean']:.4g})")
        rows.append(row)
    write_csv(results_dir / "table2_inexact.csv", HEADERS, rows)
    with capsys.disabled():
        print(f"\nTable 2 — inexact methods at {SAMPLES_PER_FACT} samples/fact "
              f"over {len(records)} ground-truth outputs; median (mean)")
        print(format_table(HEADERS, rows))

    # Benchmark kernel: CNF Proxy on the largest ground-truth circuit.
    big = max(records, key=lambda r: r.n_facts)
    players = sorted(big.values)
    proxy = get_engine("proxy")
    benchmark(proxy.explain_circuit, big.circuit, players)

    # Paper-shape assertions.  Note: our Monte Carlo evaluates all
    # permutation prefixes bit-parallel, so it is much faster than the
    # paper's baseline; the robust time comparison at micro scale is
    # against Kernel SHAP (regression-based, like the paper's).
    proxy_time = summarize(by_method["CNF Proxy"]["time"])["median"]
    ks_time = summarize(by_method["Kernel SHAP"]["time"])["median"]
    assert proxy_time < ks_time, "CNF Proxy must be faster than Kernel SHAP"
    proxy_ndcg = summarize(by_method["CNF Proxy"]["nDCG"])["mean"]
    assert proxy_ndcg > 0.9, "CNF Proxy ranking quality should be high"
    ks_l2 = summarize(by_method["Kernel SHAP"]["L2"])["mean"]
    proxy_l2 = summarize(by_method["CNF Proxy"]["L2"])["mean"]
    assert ks_l2 < proxy_l2, "Kernel SHAP should win on value error (L2)"
