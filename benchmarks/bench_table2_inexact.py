"""Table 2: median (mean) performance of the inexact methods at the
largest sampling budget (50 samples per fact).

For every ground-truth record (exact computation succeeded) we run
Monte Carlo, Kernel SHAP and CNF Proxy and report execution time, L1,
L2, nDCG, Precision@5 and Precision@10 against the exact values.

Expected shape (paper's Table 2): CNF Proxy is orders of magnitude
faster than both sampling methods with equal-or-better ranking quality
(nDCG, P@k); Kernel SHAP achieves the best L1/L2 (it approximates the
*values*, which CNF Proxy does not even attempt).
"""

import random
import time

from repro.bench import format_table, write_csv
from repro.core import (
    cnf_proxy_from_circuit,
    kernel_shap_values,
    l1_error,
    l2_error,
    monte_carlo_shapley,
    ndcg,
    precision_at_k,
    summarize,
)

SAMPLES_PER_FACT = 50
METRICS = ["time", "L1", "L2", "nDCG", "P@5", "P@10"]
HEADERS = ["metric"] + ["Monte Carlo", "Kernel SHAP", "CNF Proxy"]


def _evaluate_method(records, method, seed=0):
    stats = {metric: [] for metric in METRICS}
    for index, record in enumerate(records):
        truth = {f: float(v) for f, v in record.values.items()}
        players = sorted(record.values)
        start = time.perf_counter()
        estimate = method(record.circuit, players, random.Random(seed + index))
        elapsed = time.perf_counter() - start
        estimate = {f: float(v) for f, v in estimate.items()}
        stats["time"].append(elapsed)
        stats["L1"].append(l1_error(truth, estimate))
        stats["L2"].append(l2_error(truth, estimate))
        stats["nDCG"].append(ndcg(truth, estimate))
        stats["P@5"].append(precision_at_k(truth, estimate, 5))
        stats["P@10"].append(precision_at_k(truth, estimate, 10))
    return stats


def _monte_carlo(circuit, players, rng):
    return monte_carlo_shapley(
        circuit, players, samples_per_fact=SAMPLES_PER_FACT, rng=rng
    )


def _kernel_shap(circuit, players, rng):
    return kernel_shap_values(
        circuit, players, samples_per_fact=SAMPLES_PER_FACT, rng=rng
    )


def _proxy(circuit, players, rng):
    return cnf_proxy_from_circuit(circuit, players)


def test_table2(ground_truth_records, results_dir, capsys, benchmark):
    records = ground_truth_records
    by_method = {
        "Monte Carlo": _evaluate_method(records, _monte_carlo),
        "Kernel SHAP": _evaluate_method(records, _kernel_shap),
        "CNF Proxy": _evaluate_method(records, _proxy),
    }

    rows = []
    for metric in METRICS:
        row = [metric]
        for name in ("Monte Carlo", "Kernel SHAP", "CNF Proxy"):
            stats = summarize(by_method[name][metric])
            row.append(f"{stats['median']:.4g} ({stats['mean']:.4g})")
        rows.append(row)
    write_csv(results_dir / "table2_inexact.csv", HEADERS, rows)
    with capsys.disabled():
        print(f"\nTable 2 — inexact methods at {SAMPLES_PER_FACT} samples/fact "
              f"over {len(records)} ground-truth outputs; median (mean)")
        print(format_table(HEADERS, rows))

    # Benchmark kernel: CNF Proxy on the largest ground-truth circuit.
    big = max(records, key=lambda r: r.n_facts)
    players = sorted(big.values)
    benchmark(cnf_proxy_from_circuit, big.circuit, players)

    # Paper-shape assertions.  Note: our Monte Carlo evaluates all
    # permutation prefixes bit-parallel, so it is much faster than the
    # paper's baseline; the robust time comparison at micro scale is
    # against Kernel SHAP (regression-based, like the paper's).
    proxy_time = summarize(by_method["CNF Proxy"]["time"])["median"]
    ks_time = summarize(by_method["Kernel SHAP"]["time"])["median"]
    assert proxy_time < ks_time, "CNF Proxy must be faster than Kernel SHAP"
    proxy_ndcg = summarize(by_method["CNF Proxy"]["nDCG"])["mean"]
    assert proxy_ndcg > 0.9, "CNF Proxy ranking quality should be high"
    ks_l2 = summarize(by_method["Kernel SHAP"]["L2"])["mean"]
    proxy_l2 = summarize(by_method["CNF Proxy"]["L2"])["mean"]
    assert ks_l2 < proxy_l2, "Kernel SHAP should win on value error (L2)"
