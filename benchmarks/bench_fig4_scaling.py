"""Figure 4: KC time and Algorithm 1 time as functions of provenance
features (number of distinct facts, CNF clauses, d-DNNF size).

The paper plots per-output scatter; we report per-bucket medians of the
same series (a/c/e: KC time, b/d/f: Algorithm 1 time) and persist the
raw points so they can be re-plotted.

Expected shape: both times grow with each size measure, with Algorithm 1
time tracking d-DNNF size most tightly (its complexity is
O(|C| * n^2)).
"""

from repro.bench import format_table, group_by_bucket, median, write_csv
from repro.circuits import count_models_by_size

HEADERS = ["bucket", "n", "KC p50 [s]", "Alg1 p50 [s]"]


def _series(records, key):
    pairs_kc = [(key(r), r.compile_seconds) for r in records if r.ok]
    pairs_a1 = [(key(r), r.shapley_seconds) for r in records if r.ok]
    kc = group_by_bucket(pairs_kc)
    a1 = group_by_bucket(pairs_a1)
    rows = []
    for bucket in sorted(kc, key=lambda b: int(b.strip(">").split("-")[0])):
        rows.append(
            [bucket, len(kc[bucket]), median(kc[bucket]), median(a1.get(bucket, []))]
        )
    return rows


def test_fig4_times_by_n_facts(all_records, results_dir, capsys, benchmark):
    """Figures 4a/4b: time vs number of distinct facts."""
    rows = _series(all_records, lambda r: r.n_facts)
    write_csv(results_dir / "fig4_by_facts.csv", HEADERS, rows)
    with capsys.disabled():
        print("\nFig 4a/4b — time vs #facts")
        print(format_table(HEADERS, rows))

    raw = [
        [r.dataset, r.query, r.n_facts, r.cnf_clauses, r.ddnnf_size,
         r.compile_seconds, r.shapley_seconds, r.status]
        for r in all_records
    ]
    write_csv(
        results_dir / "fig4_raw_points.csv",
        ["dataset", "query", "n_facts", "cnf_clauses", "ddnnf_size",
         "kc_seconds", "alg1_seconds", "status"],
        raw,
    )

    # Kernel: the #SAT_k dynamic program on the largest compiled circuit.
    from repro.circuits import eliminate_auxiliary, tseytin_transform
    from repro.compiler import compile_cnf

    ok = [r for r in all_records if r.ok and r.circuit is not None]
    big = max(ok, key=lambda r: r.ddnnf_size)
    cnf = tseytin_transform(big.circuit)
    ddnnf = eliminate_auxiliary(
        compile_cnf(cnf).circuit, set(cnf.labels.values())
    )
    benchmark(count_models_by_size, ddnnf)
    assert rows


def test_fig4_times_by_cnf_clauses(all_records, results_dir, capsys, benchmark):
    """Figures 4c/4d: time vs CNF clause count (buckets reuse the fact
    buckets scaled by the typical clauses-per-fact ratio)."""
    rows = _series(all_records, lambda r: max(1, r.cnf_clauses // 4))
    write_csv(results_dir / "fig4_by_clauses.csv", HEADERS, rows)
    with capsys.disabled():
        print("\nFig 4c/4d — time vs #CNF clauses (bucket unit = 4 clauses)")
        print(format_table(HEADERS, rows))
    benchmark(lambda: _series(all_records, lambda r: r.cnf_clauses // 4))
    assert rows


def test_fig4_times_by_ddnnf_size(all_records, results_dir, capsys, benchmark):
    """Figures 4e/4f: time vs d-DNNF size (bucket unit = 16 gates)."""
    ok = [r for r in all_records if r.ok]
    rows = _series(ok, lambda r: max(1, r.ddnnf_size // 16))
    write_csv(results_dir / "fig4_by_ddnnf.csv", HEADERS, rows)
    with capsys.disabled():
        print("\nFig 4e/4f — time vs d-DNNF size (bucket unit = 16 gates)")
        print(format_table(HEADERS, rows))
    benchmark(lambda: _series(ok, lambda r: r.ddnnf_size // 16))

    # Shape check: Algorithm 1 median time is monotone-ish in d-DNNF
    # size — the largest bucket is slower than the smallest.
    medians = [row[3] for row in rows if row[3] == row[3]]
    if len(medians) >= 2:
        assert medians[-1] >= medians[0]
