"""PR 5 acceptance driver: writes BENCH_5.json at the repo root.

Checks, in one run:

1. **Warm-store machine-width smoke** — ``bench --json`` with the
   ``int64`` backend over a persistent store twice: the warm run must
   report 0 compilations, 0 tape lowerings, *and* ``fastpath_hits > 0``
   (the level-scheduled tier actually ran).
2. **Kernel/mode parity** — on the fig7 ground-truth pool, every
   numeric kernel (python / numpy / int64) x all-facts mode
   (conditioning / smoothed / derivative) returns byte-identical exact
   Fractions.
3. **Machine-width speedup** — on the largest fig7 instance, the
   warm-tape derivative pass on the ``int64`` level-scheduled tier must
   beat the PR 4 ``numpy`` object-dtype baseline by >= 3x (median over
   warmed repeats), with identical Fractions.
4. **Larger synthetic tier** — a 120-fact engineered instance (CRT
   residue planes) timed the same way.
5. **Overflow tier** — a ~150-bit instance beyond CRT capacity must
   *fall back* (``fastpath_fallbacks > 0``) and still return exact
   values identical to the reference kernel.

Run with ``PYTHONPATH=src python benchmarks/run_pr5.py``; pass
``--quick`` (the CI perf-smoke mode) to use the TPC-H half of the
ground-truth pool only, skip the timing assertions (CI runners are too
noisy to gate on wall-clock ratios), and skip writing BENCH_5.json.
"""

import io
import json
import random
import statistics
import sys
import tempfile
import time
from contextlib import redirect_stdout
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.bench import run_suite  # noqa: E402
from repro.circuits import (  # noqa: E402
    Circuit, eliminate_auxiliary, tseytin_transform,
)
from repro.cli import main as cli_main  # noqa: E402
from repro.compiler import CompilationBudget, compile_cnf  # noqa: E402
from repro.core import shapley_all_facts  # noqa: E402
from repro.core.numerics import (  # noqa: E402
    HAS_NUMPY,
    FastpathStats,
    available_kernels,
    compile_tape,
    get_kernel,
    plan_for,
)
from repro.workloads import (  # noqa: E402
    IMDB_QUERIES,
    TPCH_QUERIES,
    ImdbConfig,
    TpchConfig,
    generate_imdb,
    generate_tpch,
)
from repro.workloads.synthetic import random_monotone_cnf  # noqa: E402

EXACT_BUDGET = CompilationBudget(max_nodes=400_000, max_seconds=2.5)
MODES = ("conditioning", "smoothed", "derivative")
TIMING_REPEATS = 9


def _timed(fn, repeats=TIMING_REPEATS):
    """``(min, median)`` seconds over ``repeats`` runs, after one
    explicit warm-up call (first-call effects — tape plan construction,
    matrix caches — belong to neither side of a speedup ratio)."""
    fn()
    laps = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        laps.append(time.perf_counter() - start)
    return min(laps), statistics.median(laps)


def _bench_json(store_dir: str) -> dict:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli_main([
            "bench", "--workload", "flights",
            "--cache-dir", store_dir, "--numeric-backend", "int64", "--json",
        ])
    assert code == 0, buffer.getvalue()
    return json.loads(buffer.getvalue())


def warm_store_fastpath_check() -> dict:
    with tempfile.TemporaryDirectory() as store_dir:
        cold = _bench_json(store_dir)
        warm = _bench_json(store_dir)
    assert cold["stats"]["compile_calls"] > 0, cold
    assert warm["stats"]["compile_calls"] == 0, warm
    assert warm["stats"]["tape_compilations"] == 0, warm
    assert warm["stats"]["fastpath_hits"] > 0, warm
    assert warm["stats"]["fastpath_fallbacks"] == 0, warm
    assert warm["ok"] == cold["ok"] == cold["outputs"], (cold, warm)
    return {
        "cold": {
            "compile_calls": cold["stats"]["compile_calls"],
            "tape_compilations": cold["stats"]["tape_compilations"],
            "fastpath_hits": cold["stats"]["fastpath_hits"],
        },
        "warm": {
            "compile_calls": warm["stats"]["compile_calls"],
            "tape_compilations": warm["stats"]["tape_compilations"],
            "fastpath_hits": warm["stats"]["fastpath_hits"],
            "store_hits": warm["stats"]["store_hits"],
        },
    }


def ground_truth_records(quick: bool):
    """The fig6/fig7/table2 ground-truth pool (same selection as
    benchmarks/conftest.py); ``--quick`` keeps the TPC-H half only."""
    tpch = run_suite(
        generate_tpch(TpchConfig(scale_factor=0.0005)), TPCH_QUERIES,
        "TPC-H", budget=EXACT_BUDGET, keep_values=True,
    )
    runs = list(tpch)
    if not quick:
        runs += run_suite(
            generate_imdb(ImdbConfig()), IMDB_QUERIES, "IMDB",
            budget=EXACT_BUDGET, keep_values=True, max_outputs=40,
        )
    records = []
    for run in runs:
        records.extend(run.records)
    ok = [r for r in records if r.ok and r.values and r.n_facts >= 2]
    rng = random.Random(1234)
    rng.shuffle(ok)
    return ok[:120]


def _compiled(circuit: Circuit):
    cnf = tseytin_transform(circuit)
    ddnnf = eliminate_auxiliary(
        compile_cnf(cnf).circuit, set(cnf.labels.values())
    )
    return ddnnf, sorted(ddnnf.reachable_vars(), key=repr)


def parity_check(records, n_records: int) -> dict:
    kernels = [get_kernel(name) for name in available_kernels()]
    fastpath = FastpathStats()
    checked = 0
    for record in records[:n_records]:
        ddnnf, _ = _compiled(record.circuit)
        players = sorted(record.values)
        tape = compile_tape(ddnnf.condition({}))
        for kernel in kernels:
            for mode in MODES:
                values = shapley_all_facts(
                    ddnnf, players, method=mode, kernel=kernel,
                    tape=tape if mode == "derivative" else None,
                    fastpath_stats=fastpath,
                )
                assert values == record.values, (kernel.name, mode)
        checked += 1
    # The fig7-tier acceptance gate: the machine-width tier must have
    # actually served these shapes, not silently fallen back.
    assert fastpath.hits > 0, fastpath
    return {
        "records_checked": checked,
        "kernels": list(available_kernels()),
        "modes": list(MODES),
        "identical_fractions": True,
        "fastpath_hits": fastpath.hits,
        "fastpath_fallbacks": fastpath.fallbacks,
    }


def _tier_name(plan) -> str:
    if plan is None:
        return "fallback"
    if plan.moduli:
        return f"crt[{len(plan.moduli)}]"
    import numpy as np

    return np.dtype(plan.dtype).name


def fastpath_speedup(ddnnf, players, label: str, quick: bool) -> dict:
    """Warm-tape derivative pass: int64 level-scheduled vs the PR 4
    numpy object-dtype baseline, min/median over warmed repeats."""
    tape = compile_tape(ddnnf.condition({}))
    plan = plan_for(tape)
    numpy_kernel = get_kernel("numpy")
    int64_kernel = get_kernel("int64")
    baseline_values = shapley_all_facts(
        ddnnf, players, method="derivative", kernel=numpy_kernel, tape=tape)
    fast_values = shapley_all_facts(
        ddnnf, players, method="derivative", kernel=int64_kernel, tape=tape)
    assert baseline_values == fast_values, label
    base_min, base_median = _timed(lambda: shapley_all_facts(
        ddnnf, players, method="derivative", kernel=numpy_kernel, tape=tape))
    fast_min, fast_median = _timed(lambda: shapley_all_facts(
        ddnnf, players, method="derivative", kernel=int64_kernel, tape=tape))
    speedup = round(base_median / fast_median, 3)
    if not quick:
        assert speedup >= 3.0, (label, speedup)
    forward_bits, backward_bits, diff_bits = tape.bound_bits()
    return {
        "instance": {
            "n_facts": len(players),
            "ddnnf_gates": len(ddnnf),
            "tape_instructions": len(tape),
            "bound_bits": max(forward_bits, backward_bits, diff_bits),
            "tier": _tier_name(plan),
        },
        "baseline_numpy_median_seconds": round(base_median, 6),
        "baseline_numpy_min_seconds": round(base_min, 6),
        "fastpath_int64_median_seconds": round(fast_median, 6),
        "fastpath_int64_min_seconds": round(fast_min, 6),
        "speedup_median": speedup,
        "timing_repeats": TIMING_REPEATS,
        "warmup_iteration": True,
        "identical_fractions": True,
    }


def _engineered_cnf(n_clauses: int, width: int, seed: int) -> Circuit:
    """Monotone CNF over disjoint shuffled clause blocks: model count
    exactly ``(2^width - 1)^n_clauses``, compilation trivial."""
    rng = random.Random(seed)
    labels = [f"v{i}" for i in range(n_clauses * width)]
    rng.shuffle(labels)
    circuit = Circuit()
    clauses = []
    for index in range(n_clauses):
        block = labels[index * width:(index + 1) * width]
        clauses.append(circuit.or_([circuit.var(v) for v in block]))
    circuit.output = circuit.and_(clauses)
    return circuit


def overflow_tier_check() -> dict:
    """Bounds beyond CRT capacity: the fast path must decline and the
    interpreted pass must return the same exact values."""
    ddnnf, players = _compiled(_engineered_cnf(50, 3, seed=4))
    tape = compile_tape(ddnnf.condition({}))
    stats = FastpathStats()
    fast = shapley_all_facts(
        ddnnf, players, method="derivative", kernel="int64",
        tape=tape, fastpath_stats=stats,
    )
    reference = shapley_all_facts(
        ddnnf, players, method="derivative", kernel="python", tape=tape)
    assert stats.fallbacks > 0, stats
    assert fast == reference
    forward_bits, backward_bits, diff_bits = tape.bound_bits()
    return {
        "n_facts": len(players),
        "bound_bits": max(forward_bits, backward_bits, diff_bits),
        "fastpath_fallbacks": stats.fallbacks,
        "identical_fractions": True,
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    if not HAS_NUMPY:
        print("run_pr5 needs NumPy (the machine-width tier under test)")
        return 1
    started = time.time()
    print("PR 5 acceptance: warm-store machine-width smoke ...", flush=True)
    warm = warm_store_fastpath_check()
    print("PR 5 acceptance: building fig7 ground truth "
          f"({'TPC-H only' if quick else 'TPC-H + IMDB'}) ...", flush=True)
    records = ground_truth_records(quick)
    print(f"  {len(records)} ground-truth records", flush=True)
    print("PR 5 acceptance: kernel/mode parity ...", flush=True)
    parity = parity_check(records, 10 if quick else 30)
    biggest = max(records, key=lambda r: r.n_facts)
    ddnnf, _ = _compiled(biggest.circuit)
    players = sorted(biggest.values)
    print(f"PR 5 acceptance: fig7 fastpath timing "
          f"({biggest.n_facts} facts) ...", flush=True)
    fig7 = fastpath_speedup(ddnnf, players, "fig7", quick)
    print(f"  speedup {fig7['speedup_median']}x "
          f"({fig7['instance']['tier']})", flush=True)
    print("PR 5 acceptance: larger synthetic tier "
          "(70-var monotone CNF, ~7k-gate d-DNNF) ...", flush=True)
    synthetic_ddnnf, _ = _compiled(random_monotone_cnf(70, 16, 6, seed=0))
    synthetic_players = [f"x{i}" for i in range(70)]
    synthetic = fastpath_speedup(
        synthetic_ddnnf, synthetic_players, "synthetic", quick)
    print(f"  speedup {synthetic['speedup_median']}x "
          f"({synthetic['instance']['tier']})", flush=True)
    print("PR 5 acceptance: overflow tier ...", flush=True)
    overflow = overflow_tier_check()
    payload = {
        "pr": 5,
        "title": "Machine-width fast path: overflow-guarded int64/float64 "
                 "kernels and level-scheduled tape execution",
        "numpy_available": HAS_NUMPY,
        "quick": quick,
        "warm_store_fastpath": warm,
        "parity": parity,
        "fig7_fastpath": fig7,
        "synthetic_tier": synthetic,
        "overflow_tier": overflow,
        "total_seconds": round(time.time() - started, 1),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not quick:
        out = ROOT / "BENCH_5.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
