"""PR 9 acceptance driver: writes BENCH_9.json at the repo root.

Cold-batch A/B on the shared-block multi-shape family: the same batch
planned twice — once with the PR 8 warm-wave-barrier schedule, once
with the PR 9 compile/execute pipeline (fleet-wide one-pass component
compilation + streaming stitch/group dispatch) — across the thread,
process, and socket transports.  Checks, in one run:

1. **Byte-identical Fractions** — every pipelined run returns exactly
   the barrier run's values, per transport and across transports.
2. **One-pass component dedupe** — the pipelined schedule performs one
   standalone compile per *distinct* canonical component, strictly
   fewer than the shapes x components the family owns (the barrier
   schedule's concurrent representatives race the memo and duplicate).
3. **Compile/execute overlap** — ``pipeline_overlap_seconds > 0``: at
   least one sibling group executed while another shape was still
   compiling.
4. **End-to-end cold-batch speedup** — pipelined vs barrier wall time
   (min over repeats, cold caches each lap).  The >= 1.5x gate is
   enforced on multi-core hosts only: the overlap half of the win is
   physically unavailable on a single-CPU container (both schedules
   serialize onto one core), where the measured speedup reduces to the
   duplicate-compile work the one-pass dedupe eliminates.  The host
   core count and the gate decision are recorded in the payload.

Run with ``PYTHONPATH=src python benchmarks/run_pr9.py``; pass
``--quick`` (the CI perf-smoke mode) to shrink the family, run one lap
per schedule, assert invariants 1-3 only, and skip writing
BENCH_9.json (CI runners are too noisy to gate on wall-clock ratios).
"""

import hashlib
import json
import os
import sys
import tempfile
import threading
import time
from fractions import Fraction
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.engine import (  # noqa: E402
    ArtifactCache, Coordinator, EngineOptions, InProcessTransport,
    PersistentArtifactStore, ProcessPoolTransport, SocketTransport,
    run_worker,
)
from repro.engine.scheduler import (  # noqa: E402
    Job, artifact_component_planner, plan_batch,
)
from repro.workloads.synthetic import shared_block_circuits  # noqa: E402

TIMING_REPEATS = 3
SPEEDUP_GATE = 1.5

# The shared-block multi-shape family (see workloads.synthetic): with
# pool_size == n_circuits the template windows wrap, so every block
# template is owned by n_blocks distinct shapes — the worst case for
# the barrier schedule's per-owning-shape compiles and the best case
# for the fleet-wide one-pass dedupe.  One renamed sibling per shape
# exercises the streaming stitch -> batched-group dispatch.
FULL_FAMILY = dict(n_circuits=10, n_blocks=6, block_vars=12,
                   block_terms=24, term_width=3, pool_size=10, seed=7)
QUICK_FAMILY = dict(n_circuits=6, n_blocks=4, block_vars=10,
                    block_terms=12, term_width=3, pool_size=6, seed=7)


def family_circuits(quick: bool):
    spec = QUICK_FAMILY if quick else FULL_FAMILY
    circuits = []
    for circuit in shared_block_circuits(**spec):
        circuits.append(circuit)
        circuits.append(circuit.rename(
            {v: f"s1_{v}" for v in circuit.reachable_vars()}
        ))
    return circuits, spec


def build_jobs(circuits, cache):
    """Mirror ``ExplainSession._build_jobs``: one Job per answer with
    its artifact handle attached.  ``timeout=None`` — the per-answer
    deadline is a latency guard, not part of the schedule under test,
    and a loaded runner would trip it in both schedules."""
    base = EngineOptions().with_(cache=cache, timeout=None)
    jobs = []
    for index, circuit in enumerate(circuits):
        handle = cache.open(circuit)
        jobs.append(Job(
            index, (index,), circuit, sorted(handle.labels),
            base.with_(artifacts=handle), handle.signature,
        ))
    return jobs


def make_plan(circuits, cache, pipelined: bool):
    planner = artifact_component_planner("tape") if pipelined else None
    return plan_batch("exact", build_jobs(circuits, cache), True,
                      batch=True, component_planner=planner)


def check_results(results, reference=None) -> str:
    """All-ok assertion plus a digest of the exact Fractions."""
    digest = hashlib.sha256()
    for index in sorted(results):
        result = results[index]
        assert result.status == "ok", (index, result.status, result.error)
        assert all(type(v) is Fraction for v in result.values.values())
        digest.update(repr((index, sorted(
            (repr(fact), repr(value))
            for fact, value in result.values.items()
        ))).encode())
    got = digest.hexdigest()
    if reference is not None:
        assert got == reference, "Fractions diverged from the reference"
    return got


def plan_shape_counts(plan):
    pipeline = plan.pipeline
    assert pipeline is not None, "cold family planned no components"
    distinct = len(pipeline.components)
    owned = sum(len(indexes) for indexes in pipeline.needs.values())
    return distinct, owned


def run_thread(circuits, pipelined, width):
    cache = ArtifactCache()
    plan = make_plan(circuits, cache, pipelined)
    transport = InProcessTransport(width)
    started = time.perf_counter()
    results = transport.run_batch(plan)
    seconds = time.perf_counter() - started
    transport.close()
    stats = cache.stats
    return seconds, results, {
        "component_compilations": stats.component_compilations,
        "component_pass_compiles": stats.component_pass_compiles,
        "stitch_jobs": stats.stitch_jobs,
        "overlap_seconds": stats.pipeline_overlap_seconds,
    }


def run_process(circuits, pipelined, workers=2):
    with tempfile.TemporaryDirectory() as store_dir:
        cache = ArtifactCache(store=PersistentArtifactStore(store_dir))
        plan = make_plan(circuits, cache, pipelined)
        transport = ProcessPoolTransport(workers, store_dir=store_dir)
        try:
            started = time.perf_counter()
            results = transport.run_batch(plan)
            seconds = time.perf_counter() - started
        finally:
            transport.close()
        stats = cache.stats
        # Pipelined component compiles run in pool workers; the parent
        # observes them through the recorded pipeline outcome.
        compiles = (stats.component_pass_compiles if pipelined
                    else stats.component_compilations)
        return seconds, results, {
            "component_compilations": compiles,
            "component_pass_compiles": stats.component_pass_compiles,
            "stitch_jobs": stats.stitch_jobs,
            "overlap_seconds": stats.pipeline_overlap_seconds,
        }


def run_socket(circuits, pipelined, workers=2):
    coordinator = Coordinator().start()
    with tempfile.TemporaryDirectory() as store_dir:
        ready = threading.Barrier(workers + 1, timeout=30)
        threads = [
            threading.Thread(
                target=run_worker, args=(coordinator.address,),
                kwargs={"cache_dir": store_dir, "on_ready": ready.wait},
                daemon=True,
            )
            for _ in range(workers)
        ]
        for thread in threads:
            thread.start()
        ready.wait()
        coordinator.wait_for_workers(workers, timeout=30)
        try:
            cache = ArtifactCache()
            plan = make_plan(circuits, cache, pipelined)
            transport = SocketTransport(
                coordinator.address, min_workers=workers)
            started = time.perf_counter()
            results = transport.run_batch(plan)
            seconds = time.perf_counter() - started
            remote = transport.remote_stats
        finally:
            coordinator.shutdown()
            for thread in threads:
                thread.join(timeout=10)
        return seconds, results, {
            "component_compilations":
                int(remote.get("component_compilations", 0)),
            "component_pass_compiles":
                int(remote.get("component_pass_compiles", 0)),
            "stitch_jobs": int(remote.get("stitch_jobs", 0)),
            "overlap_seconds":
                float(remote.get("pipeline_overlap_seconds", 0.0)),
        }


def ab_lap(runner, circuits, reference, repeats):
    """Barrier vs pipelined, fresh cold state every lap; min seconds
    over ``repeats`` plus the last lap's counters."""
    timings = {False: [], True: []}
    counters = {}
    for pipelined in (False, True):
        for _ in range(repeats):
            seconds, results, stats = runner(circuits, pipelined)
            reference = check_results(results, reference)
            timings[pipelined].append(seconds)
            counters[pipelined] = stats
    barrier, pipelined = min(timings[False]), min(timings[True])
    return reference, {
        "barrier_seconds": round(barrier, 3),
        "pipelined_seconds": round(pipelined, 3),
        "speedup": round(barrier / pipelined, 3),
        "barrier_component_compiles":
            counters[False]["component_compilations"],
        "pipelined_component_compiles":
            counters[True]["component_compilations"],
        "stitch_jobs": counters[True]["stitch_jobs"],
        "pipeline_overlap_seconds":
            round(counters[True]["overlap_seconds"], 6),
        "timing_repeats": repeats,
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    started = time.time()
    circuits, spec = family_circuits(quick)
    width = spec["n_circuits"]
    repeats = 1 if quick else TIMING_REPEATS
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)

    probe = make_plan(circuits, ArtifactCache(), True)
    distinct, owned = plan_shape_counts(probe)
    print(f"PR 9 acceptance: shared-block family — "
          f"{spec['n_circuits']} shapes x {spec['n_blocks']} blocks, "
          f"{distinct} distinct components, {owned} owned", flush=True)

    reference = None
    sections = {}
    runners = [
        ("thread", lambda c, p: run_thread(c, p, width)),
        ("process", run_process),
        ("socket", run_socket),
    ]
    for name, runner in runners:
        print(f"PR 9 acceptance: {name} transport A/B ...", flush=True)
        reference, section = ab_lap(runner, circuits, reference, repeats)
        sections[name] = section
        print(f"  barrier {section['barrier_seconds']}s "
              f"({section['barrier_component_compiles']} compiles) vs "
              f"pipelined {section['pipelined_seconds']}s "
              f"({section['pipelined_component_compiles']} compiles): "
              f"{section['speedup']}x, overlap "
              f"{section['pipeline_overlap_seconds']}s", flush=True)

    # Invariant 2: one-pass dedupe.  The thread pipeline shares one
    # memo, so its compile count is exactly the distinct components;
    # process/socket fleets may race the shared store, but every
    # schedule must compile strictly fewer than the owned total.
    assert sections["thread"]["pipelined_component_compiles"] == distinct
    for name, section in sections.items():
        assert section["pipelined_component_compiles"] < owned, name
        assert section["pipelined_component_compiles"] <= \
            section["barrier_component_compiles"], name

    # Invariant 3: compile/execute overlap on the streaming schedule.
    # At least one transport must have executed a ready shape while
    # another was still compiling (on a small quick family a single
    # transport's overlap can legitimately be hairline).
    assert max(s["pipeline_overlap_seconds"]
               for s in sections.values()) > 0.0

    # Invariant 4: the end-to-end gate, on hosts that can overlap.
    gate_enforced = not quick and cores > 1
    if gate_enforced:
        for name, section in sections.items():
            assert section["speedup"] >= SPEEDUP_GATE, (
                f"{name}: {section['speedup']}x < {SPEEDUP_GATE}x")

    payload = {
        "pr": 9,
        "title": "Pipelined cold-batch execution: fleet-wide one-pass "
                 "component compilation with compile/execute overlap",
        "quick": quick,
        "family": {**spec, "answers": len(circuits),
                   "distinct_components": distinct,
                   "owned_components": owned},
        "transports": sections,
        "identical_fractions": True,
        "host_cores": cores,
        "speedup_gate": SPEEDUP_GATE,
        "speedup_gate_enforced": gate_enforced,
        "notes": (
            "Fractions byte-identical across barrier/pipelined x "
            "thread/process/socket.  The pipelined schedule compiles "
            "each distinct component once fleet-wide; the barrier's "
            "concurrent representatives race the memo and duplicate. "
            + ("Single-core host: the compile/execute-overlap half of "
               "the speedup cannot manifest (both schedules serialize "
               "onto one CPU), so the wall-clock gate is informational "
               "here and enforced on multi-core hosts."
               if cores <= 1 else
               f"Wall-clock gate (>= {SPEEDUP_GATE}x) enforced on this "
               f"{cores}-core host.")
        ),
        "total_seconds": round(time.time() - started, 1),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not quick:
        out = ROOT / "BENCH_9.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
