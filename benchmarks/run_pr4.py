"""PR 4 acceptance driver: writes BENCH_4.json at the repo root.

Checks, in one run:

1. **Warm-store tape reuse** — ``bench --json`` over a persistent store
   twice: the second run must report 0 circuit compilations *and* 0
   tape compilations.
2. **Kernel/mode parity** — on the fig6/fig7/table2 ground-truth
   records, every numeric kernel x all-facts mode returns byte-identical
   exact Fractions.
3. **Smoothing-free vs smoothed** — on the largest fig7 instance, the
   smoothing-free derivative pass must beat the legacy smoothed pass
   wall-clock (median of repeats).

Run with ``PYTHONPATH=src python benchmarks/run_pr4.py``.
"""

import io
import json
import random
import statistics
import sys
import tempfile
import time
from contextlib import redirect_stdout
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.bench import run_suite  # noqa: E402
from repro.circuits import eliminate_auxiliary, tseytin_transform  # noqa: E402
from repro.cli import main as cli_main  # noqa: E402
from repro.compiler import CompilationBudget, compile_cnf  # noqa: E402
from repro.core import shapley_all_facts  # noqa: E402
from repro.core.numerics import HAS_NUMPY, available_kernels, get_kernel  # noqa: E402
from repro.engine import ArtifactCache, PersistentArtifactStore  # noqa: E402
from repro.workloads import (  # noqa: E402
    IMDB_QUERIES,
    TPCH_QUERIES,
    ImdbConfig,
    TpchConfig,
    generate_imdb,
    generate_tpch,
)

EXACT_BUDGET = CompilationBudget(max_nodes=400_000, max_seconds=2.5)
MODES = ("conditioning", "smoothed", "derivative")
TIMING_REPEATS = 7


def _bench_json(store_dir: str) -> dict:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli_main([
            "bench", "--workload", "flights",
            "--cache-dir", store_dir, "--json",
        ])
    assert code == 0, buffer.getvalue()
    return json.loads(buffer.getvalue())


def warm_store_check() -> dict:
    with tempfile.TemporaryDirectory() as store_dir:
        cold = _bench_json(store_dir)
        warm = _bench_json(store_dir)
    assert cold["stats"]["compile_calls"] > 0, cold
    assert cold["stats"]["tape_compilations"] > 0, cold
    assert warm["stats"]["compile_calls"] == 0, warm
    assert warm["stats"]["tape_compilations"] == 0, warm
    assert warm["ok"] == cold["ok"] == cold["outputs"], (cold, warm)
    return {
        "cold": {
            "compile_calls": cold["stats"]["compile_calls"],
            "tape_compilations": cold["stats"]["tape_compilations"],
            "store_writes": cold["stats"]["store_writes"],
        },
        "warm": {
            "compile_calls": warm["stats"]["compile_calls"],
            "tape_compilations": warm["stats"]["tape_compilations"],
            "store_hits": warm["stats"]["store_hits"],
        },
    }


def ground_truth_records():
    """The same record selection as benchmarks/conftest.py (the pool
    fig6/fig7/table2 draw from)."""
    store = PersistentArtifactStore(tempfile.mkdtemp(prefix="pr4-store-"))
    cache = ArtifactCache(store=store)
    tpch = run_suite(
        generate_tpch(TpchConfig(scale_factor=0.0005)), TPCH_QUERIES,
        "TPC-H", budget=EXACT_BUDGET, keep_values=True, cache=cache,
    )
    imdb = run_suite(
        generate_imdb(ImdbConfig()), IMDB_QUERIES, "IMDB",
        budget=EXACT_BUDGET, keep_values=True, max_outputs=40, cache=cache,
    )
    records = []
    for run in tpch + imdb:
        records.extend(run.records)
    ok = [r for r in records if r.ok and r.values and r.n_facts >= 2]
    rng = random.Random(1234)
    rng.shuffle(ok)
    return ok[:120]


def _compiled(record):
    cnf = tseytin_transform(record.circuit)
    ddnnf = eliminate_auxiliary(
        compile_cnf(cnf).circuit, set(cnf.labels.values())
    )
    return ddnnf, sorted(record.values)


def parity_check(records) -> dict:
    kernels = [get_kernel(name) for name in available_kernels()]
    checked = 0
    for record in records:
        ddnnf, players = _compiled(record)
        for kernel in kernels:
            for mode in MODES:
                values = shapley_all_facts(
                    ddnnf, players, method=mode, kernel=kernel
                )
                assert values == record.values, (kernel.name, mode)
        checked += 1
    return {
        "records_checked": checked,
        "kernels": list(available_kernels()),
        "modes": list(MODES),
        "identical_fractions": True,
    }


def _median_seconds(fn, repeats=TIMING_REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def smoothing_free_check(records) -> dict:
    biggest = max(records, key=lambda r: r.n_facts)
    ddnnf, players = _compiled(biggest)
    smoothed = _median_seconds(
        lambda: shapley_all_facts(ddnnf, players, method="smoothed")
    )
    derivative = _median_seconds(
        lambda: shapley_all_facts(ddnnf, players, method="derivative")
    )
    assert derivative < smoothed, (derivative, smoothed)
    return {
        "largest_fig7_instance": {
            "n_facts": biggest.n_facts,
            "ddnnf_gates": len(ddnnf),
        },
        "smoothed_seconds_median": round(smoothed, 6),
        "smoothing_free_seconds_median": round(derivative, 6),
        "speedup": round(smoothed / derivative, 3),
        "timing_repeats": TIMING_REPEATS,
    }


def main() -> int:
    started = time.time()
    print("PR 4 acceptance: warm-store tape reuse ...", flush=True)
    warm = warm_store_check()
    print("PR 4 acceptance: building fig6/fig7/table2 ground truth ...",
          flush=True)
    records = ground_truth_records()
    print(f"  {len(records)} ground-truth records", flush=True)
    print("PR 4 acceptance: kernel/mode parity ...", flush=True)
    parity = parity_check(records[:30])
    print("PR 4 acceptance: smoothing-free vs smoothed timing ...",
          flush=True)
    timing = smoothing_free_check(records)
    payload = {
        "pr": 4,
        "title": "Pluggable numeric-kernel layer for circuit Shapley",
        "numpy_available": HAS_NUMPY,
        "warm_store": warm,
        "parity": parity,
        "smoothing_free_vs_smoothed": timing,
        "total_seconds": round(time.time() - started, 1),
    }
    out = ROOT / "BENCH_4.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
