"""PR 6 acceptance driver: writes BENCH_6.json at the repo root.

Checks, in one run:

1. **Shared-subcircuit cold-path speedup** — a family of lineage
   circuits that differ as whole shapes but share isomorphic blocks
   (the fig7/IMDB situation): compiling the family through the
   cross-shape component memo must beat the inline baseline by
   >= 1.5x, with ``component_hits > 0`` from the second shape on.
2. **Serial / parallel / memoized parity** — the same CNF compiled
   serially, with ``jobs=4``, and against a warm memo produces
   byte-identical structural signatures; all paths (including the
   memoization-free baseline) return identical exact Fractions.
3. **Disjoint-shape no-regression** — on circuits sharing nothing the
   memo layer's canonicalization overhead stays within noise.
4. **fig7 tier** — the largest memo-eligible TPC-H ground-truth
   instance recompiled against a warm memo: cold-compile speedup with
   Fractions identical to the recorded ground truth.
5. **Transport x compile-jobs parity** — the flights workload explained
   over thread / process / socket executors with ``compile_jobs`` 1
   and 4: identical Fractions everywhere.
6. **Warm-store fleet e2e** — after ``warm_ahead`` through one worker
   fleet, a *fresh* fleet on the same store directory explains the
   query with zero compiles and zero component compilations fleet-wide.

Run with ``PYTHONPATH=src python benchmarks/run_pr6.py``; pass
``--quick`` (the CI perf-smoke mode) to shrink the workloads, skip the
timing assertions (CI runners are too noisy to gate on wall-clock
ratios), and skip writing BENCH_6.json.
"""

import json
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.bench import run_suite  # noqa: E402
from repro.circuits import (  # noqa: E402
    eliminate_auxiliary, tseytin_transform,
)
from repro.compiler import CompilationBudget, compile_cnf  # noqa: E402
from repro.core import shapley_all_facts  # noqa: E402
from repro.engine import (  # noqa: E402
    ArtifactCache,
    Coordinator,
    EngineOptions,
    ExplainSession,
    PersistentArtifactStore,
    run_worker,
)
from repro.workloads import (  # noqa: E402
    TPCH_QUERIES,
    TpchConfig,
    flights_database,
    flights_query,
    generate_tpch,
    shared_block_circuits,
)

EXACT_BUDGET = CompilationBudget(max_nodes=400_000, max_seconds=2.5)
#: The timed shared-subcircuit family: blocks big enough that canonical
#: compilation dominates canonicalization (the regime the memo targets).
TIMED_FAMILY = dict(n_blocks=4, block_vars=16, block_terms=10, term_width=4)
#: The CI / parity family: small enough for exact Shapley values.
QUICK_FAMILY = dict(n_blocks=3, block_vars=10, block_terms=5, term_width=3)
TIMING_REPEATS = 3


def _sig(result):
    return result.circuit.structural_signature()[0]


def _timed_min(fn, repeats=TIMING_REPEATS):
    """Minimum wall-clock over ``repeats`` runs (no warm-up: both sides
    of every ratio here are *cold* compiles by design)."""
    laps = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        laps.append(time.perf_counter() - start)
    return min(laps)


def shared_subcircuit_speedup(quick: bool) -> dict:
    family = dict(QUICK_FAMILY if quick else TIMED_FAMILY, seed=0)
    circuits = shared_block_circuits(3 if quick else 6, **family)
    cnfs = [tseytin_transform(c) for c in circuits]

    def baseline():
        for cnf in cnfs:
            compile_cnf(cnf, memoize_components=False)

    def memoized():
        with tempfile.TemporaryDirectory() as store_dir:
            cache = ArtifactCache(store=PersistentArtifactStore(store_dir))
            for cnf in cnfs:
                compile_cnf(cnf, memo=cache.component_memo())
        return cache

    base_seconds = _timed_min(baseline)
    memo_seconds = _timed_min(memoized)
    cache = memoized()
    stats = cache.stats
    speedup = round(base_seconds / memo_seconds, 3)

    # the acceptance counter: the second shape already stitches warm
    # sub-circuits instead of recompiling them
    probe = ArtifactCache()
    compile_cnf(cnfs[0], memo=probe.component_memo())
    first_hits = probe.stats.component_hits
    compile_cnf(cnfs[1], memo=probe.component_memo())
    assert first_hits == 0, probe.stats
    assert probe.stats.component_hits > 0, probe.stats
    assert stats.component_hits > 0, stats
    if not quick:
        # 6 circuits over a 9-template pool: reuse dominates compiles
        assert stats.component_hits > stats.component_compilations, stats
        assert speedup >= 1.5, speedup
    return {
        "circuits": len(cnfs),
        "family": family,
        "baseline_seconds": round(base_seconds, 4),
        "memoized_seconds": round(memo_seconds, 4),
        "speedup": speedup,
        "component_hits": stats.component_hits,
        "component_misses": stats.component_misses,
        "component_compilations": stats.component_compilations,
        "second_shape_component_hits": probe.stats.component_hits,
        "timing_repeats": TIMING_REPEATS,
    }


def parity_check() -> dict:
    """Serial vs parallel vs warm-memoized compiles of one shared pair:
    byte-identical structural signatures, identical exact Fractions
    (including against the memoization-free baseline)."""
    first, second = shared_block_circuits(2, **QUICK_FAMILY, seed=1)
    cnf = tseytin_transform(second)
    keep = set(cnf.labels.values())

    memo = ArtifactCache().component_memo()
    compile_cnf(tseytin_transform(first), memo=memo)  # warm the memo
    baseline = compile_cnf(cnf, memoize_components=False)
    serial = compile_cnf(cnf)
    parallel = compile_cnf(cnf, jobs=4)
    warm = compile_cnf(cnf, memo=memo)
    assert warm.stats.component_hits > 0, warm.stats
    assert _sig(serial) == _sig(parallel) == _sig(warm)

    values = []
    for result in (baseline, serial, parallel, warm):
        ddnnf = eliminate_auxiliary(result.circuit, keep)
        players = sorted(ddnnf.reachable_vars(), key=repr)
        values.append(shapley_all_facts(ddnnf, players))
    assert values[0] == values[1] == values[2] == values[3]
    return {
        "identical_signatures": True,
        "identical_fractions": True,
        "warm_component_hits": warm.stats.component_hits,
        "n_facts": len(values[0]),
    }


def disjoint_shapes_check(quick: bool) -> dict:
    """Circuits sharing no blocks: the memo never hits and its overhead
    (canonicalization plus standalone compile-and-import of each
    eligible component) must stay small and bounded."""
    family = QUICK_FAMILY if quick else TIMED_FAMILY
    cnfs = [
        tseytin_transform(
            shared_block_circuits(1, **family, seed=100 + i)[0]
        )
        for i in range(3)
    ]

    def baseline():
        for cnf in cnfs:
            compile_cnf(cnf, memoize_components=False)

    def memoized():
        cache = ArtifactCache()
        for cnf in cnfs:
            compile_cnf(cnf, memo=cache.component_memo())
        return cache

    base_seconds = _timed_min(baseline)
    memo_seconds = _timed_min(memoized)
    cache = memoized()
    assert cache.stats.component_hits == 0, cache.stats
    ratio = round(memo_seconds / base_seconds, 3)
    if not quick:
        assert ratio <= 1.4, ratio
    return {
        "baseline_seconds": round(base_seconds, 4),
        "memoized_seconds": round(memo_seconds, 4),
        "overhead_ratio": ratio,
        "component_hits": cache.stats.component_hits,
    }


def fig7_check(quick: bool) -> dict:
    """The largest memo-eligible fig7 (TPC-H) ground-truth instance:
    recompiling against a warm memo must reuse its components and
    reproduce the recorded exact Fractions."""
    tpch = run_suite(
        generate_tpch(TpchConfig(scale_factor=0.0005)), TPCH_QUERIES,
        "TPC-H", budget=EXACT_BUDGET, keep_values=True,
    )
    records = [
        r for run in tpch for r in run.records
        if r.ok and r.values and r.n_facts >= 2
    ]
    chosen = None
    memo = ArtifactCache().component_memo()
    for record in sorted(records, key=lambda r: -r.n_facts):
        cnf = tseytin_transform(record.circuit)
        probe = compile_cnf(cnf, memo=memo)
        if probe.stats.component_compilations > 0:
            chosen = (record, cnf)
            break
    assert chosen is not None, "no memo-eligible fig7 instance"
    record, cnf = chosen

    base_seconds = _timed_min(
        lambda: compile_cnf(cnf, memoize_components=False)
    )
    warm_seconds = _timed_min(lambda: compile_cnf(cnf, memo=memo))
    warm = compile_cnf(cnf, memo=memo)
    assert warm.stats.component_hits > 0, warm.stats
    assert warm.stats.component_compilations == 0, warm.stats

    ddnnf = eliminate_auxiliary(warm.circuit, set(cnf.labels.values()))
    players = sorted(record.values)
    values = shapley_all_facts(ddnnf, players)
    assert values == record.values
    return {
        "n_facts": record.n_facts,
        "baseline_seconds": round(base_seconds, 4),
        "warm_memo_seconds": round(warm_seconds, 4),
        "cold_compile_speedup": round(base_seconds / warm_seconds, 3),
        "warm_component_hits": warm.stats.component_hits,
        "identical_fractions": True,
        "quick": quick,
    }


class _Fleet:
    """A live coordinator plus two worker threads sharing one store."""

    def __init__(self, store_dir: str):
        self.coordinator = Coordinator().start()
        ready = threading.Barrier(3, timeout=30)
        self.threads = [
            threading.Thread(
                target=run_worker,
                args=(self.coordinator.address,),
                kwargs={"cache_dir": store_dir, "on_ready": ready.wait},
                daemon=True,
            )
            for _ in range(2)
        ]
        for thread in self.threads:
            thread.start()
        ready.wait()
        self.coordinator.wait_for_workers(2, timeout=30)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.coordinator.shutdown()
        for thread in self.threads:
            thread.join(timeout=30)


def transport_parity() -> dict:
    """Identical Fractions across all three transports, with serial and
    parallel component compilation."""
    db = flights_database()
    query = flights_query()
    expected = {
        answer: result.values
        for answer, result in
        ExplainSession(db, method="exact").explain_many(query).items()
    }
    combos = 0
    with tempfile.TemporaryDirectory() as store_dir:
        with _Fleet(store_dir) as fleet:
            for jobs in (1, 4):
                options = EngineOptions(compile_jobs=jobs)
                with ExplainSession(
                    db, method="exact", options=options, max_workers=2,
                    coordinator=fleet.coordinator.address, min_workers=2,
                ) as session:
                    for executor in ("thread", "process", "socket"):
                        got = session.explain_many(query, executor=executor)
                        assert {
                            a: r.values for a, r in got.items()
                        } == expected, (executor, jobs)
                        combos += 1
    return {
        "executors": ["thread", "process", "socket"],
        "compile_jobs": [1, 4],
        "combinations_checked": combos,
        "identical_fractions": True,
    }


def warm_store_fleet_check() -> dict:
    """Compile-ahead e2e: warm one fleet's store via the coordinator
    queue, then point a *fresh* fleet at the same directory — the batch
    must run with zero compiles and zero component compilations
    fleet-wide."""
    db = flights_database()
    query = flights_query()
    expected = {
        answer: result.values
        for answer, result in
        ExplainSession(db, method="exact").explain_many(query).items()
    }
    with tempfile.TemporaryDirectory() as store_dir:
        with _Fleet(store_dir) as fleet:
            with ExplainSession(
                db, method="exact", executor="socket",
                coordinator=fleet.coordinator.address, min_workers=2,
            ) as session:
                warm = session.warm_ahead(query)
        assert warm["failed"] == 0, warm
        assert warm["pending"] == 0, warm
        assert warm["completed"] == warm["shapes"] > 0, warm

        with _Fleet(store_dir) as fresh:
            with ExplainSession(
                db, method="exact", executor="socket",
                coordinator=fresh.coordinator.address, min_workers=2,
            ) as session:
                results = session.explain_many(query)
                stats = session.stats
    assert {a: r.values for a, r in results.items()} == expected
    assert stats["remote_compile_calls"] == 0, stats
    assert stats["remote_component_compilations"] == 0, stats
    assert stats["remote_store_hits"] > 0, stats
    return {
        "warm": warm,
        "fresh_fleet_compile_calls": stats["remote_compile_calls"],
        "fresh_fleet_component_compilations":
            stats["remote_component_compilations"],
        "fresh_fleet_store_hits": stats["remote_store_hits"],
        "identical_fractions": True,
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    started = time.time()
    print("PR 6 acceptance: shared-subcircuit cold-path speedup ...",
          flush=True)
    shared = shared_subcircuit_speedup(quick)
    print(f"  speedup {shared['speedup']}x "
          f"({shared['component_hits']} hits / "
          f"{shared['component_compilations']} compilations)", flush=True)
    print("PR 6 acceptance: serial/parallel/memoized parity ...", flush=True)
    parity = parity_check()
    print("PR 6 acceptance: disjoint-shape overhead ...", flush=True)
    disjoint = disjoint_shapes_check(quick)
    print(f"  overhead ratio {disjoint['overhead_ratio']}", flush=True)
    print("PR 6 acceptance: fig7 warm-memo tier ...", flush=True)
    fig7 = fig7_check(quick)
    print(f"  {fig7['n_facts']} facts, cold-compile speedup "
          f"{fig7['cold_compile_speedup']}x", flush=True)
    print("PR 6 acceptance: transport x compile-jobs parity ...", flush=True)
    transports = transport_parity()
    print("PR 6 acceptance: warm-store fleet e2e ...", flush=True)
    fleet = warm_store_fleet_check()
    payload = {
        "pr": 6,
        "title": "Cold path: persistent cross-shape sub-circuit "
                 "memoization, parallel component compilation, and a "
                 "coordinator compile-ahead queue",
        "quick": quick,
        "shared_subcircuits": shared,
        "parity": parity,
        "disjoint_shapes": disjoint,
        "fig7_warm_memo": fig7,
        "transport_parity": transports,
        "warm_store_fleet": fleet,
        "total_seconds": round(time.time() - started, 1),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not quick:
        out = ROOT / "BENCH_6.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
