"""Figure 6: inexact-method quality and cost vs the sampling budget.

Sweeps m in {10n, 20n, 30n, 40n, 50n} for Monte Carlo and Kernel SHAP
and reports execution time (6a), nDCG (6b) and Precision@10 (6c); CNF
Proxy does not sample, so its row is constant across budgets.

Expected shape: both sampling methods improve monotonically-ish with
budget; Kernel SHAP dominates Monte Carlo at equal budget; CNF Proxy
matches or beats both at a tiny fraction of their cost.
"""

import random
import time

from repro.bench import format_table, mean, write_csv
from repro.core import (
    cnf_proxy_from_circuit,
    kernel_shap_values,
    monte_carlo_shapley,
    ndcg,
    precision_at_k,
)

BUDGETS = [10, 20, 30, 40, 50]
HEADERS = ["method", "budget/fact", "mean time [s]", "mean nDCG", "mean P@10"]


def test_fig6_budget_sweep(ground_truth_records, results_dir, capsys, benchmark):
    records = ground_truth_records[:60]
    rows = []

    for budget in BUDGETS:
        for name in ("Monte Carlo", "Kernel SHAP"):
            times, ndcgs, precisions = [], [], []
            for index, record in enumerate(records):
                truth = {f: float(v) for f, v in record.values.items()}
                players = sorted(record.values)
                rng = random.Random(1000 * budget + index)
                start = time.perf_counter()
                if name == "Monte Carlo":
                    estimate = monte_carlo_shapley(
                        record.circuit, players, samples_per_fact=budget, rng=rng
                    )
                else:
                    estimate = kernel_shap_values(
                        record.circuit, players, samples_per_fact=budget, rng=rng
                    )
                times.append(time.perf_counter() - start)
                ndcgs.append(ndcg(truth, estimate))
                precisions.append(precision_at_k(truth, estimate, 10))
            rows.append([name, budget, mean(times), mean(ndcgs), mean(precisions)])

    # CNF Proxy: constant across budgets.
    times, ndcgs, precisions = [], [], []
    for record in records:
        truth = {f: float(v) for f, v in record.values.items()}
        players = sorted(record.values)
        start = time.perf_counter()
        estimate = {
            f: float(v)
            for f, v in cnf_proxy_from_circuit(record.circuit, players).items()
        }
        times.append(time.perf_counter() - start)
        ndcgs.append(ndcg(truth, estimate))
        precisions.append(precision_at_k(truth, estimate, 10))
    rows.append(["CNF Proxy", "-", mean(times), mean(ndcgs), mean(precisions)])

    write_csv(results_dir / "fig6_budget_sweep.csv", HEADERS, rows)
    with capsys.disabled():
        print(f"\nFig 6 — budget sweep over {len(records)} outputs")
        print(format_table(HEADERS, rows))

    # Kernel: Monte Carlo at the middle budget on a mid-size record.
    mid = sorted(records, key=lambda r: r.n_facts)[len(records) // 2]
    players = sorted(mid.values)
    benchmark(
        monte_carlo_shapley, mid.circuit, players,
        samples_per_fact=20, rng=random.Random(0),
    )

    # Shape: Monte Carlo nDCG at 50/fact beats its 10/fact value.
    mc = {row[1]: row[3] for row in rows if row[0] == "Monte Carlo"}
    assert mc[50] >= mc[10] - 0.01
    # CNF Proxy is cheaper than Kernel SHAP at every budget (our
    # bit-parallel Monte Carlo is faster than the paper's baseline, so
    # it is excluded from the strict time comparison at micro scale).
    proxy_time = rows[-1][2]
    ks_times = [row[2] for row in rows if row[0] == "Kernel SHAP"]
    assert proxy_time <= min(ks_times)
