"""Figure 6: inexact-method quality and cost vs the sampling budget.

Sweeps m in {10n, 20n, 30n, 40n, 50n} for Monte Carlo and Kernel SHAP
and reports execution time (6a), nDCG (6b) and Precision@10 (6c); CNF
Proxy does not sample, so its row is constant across budgets.

Expected shape: both sampling methods improve monotonically-ish with
budget; Kernel SHAP dominates Monte Carlo at equal budget; CNF Proxy
matches or beats both at a tiny fraction of their cost.
"""

import random

from repro.bench import format_table, mean, write_csv
from repro.core import monte_carlo_shapley, ndcg, precision_at_k
from repro.engine import EngineOptions, get_engine

BUDGETS = [10, 20, 30, 40, 50]
#: Display name -> registered engine name (registry dispatch).
SAMPLING_ENGINES = [("Monte Carlo", "monte_carlo"), ("Kernel SHAP", "kernel_shap")]
HEADERS = ["method", "budget/fact", "mean time [s]", "mean nDCG", "mean P@10"]


def _sweep_engine(records, engine_name, options_per_index):
    engine = get_engine(engine_name)
    times, ndcgs, precisions = [], [], []
    for index, record in enumerate(records):
        truth = {f: float(v) for f, v in record.values.items()}
        players = sorted(record.values)
        result = engine.explain_circuit(
            record.circuit, players, options_per_index(index)
        )
        estimate = {f: float(v) for f, v in result.values.items()}
        times.append(result.seconds)
        ndcgs.append(ndcg(truth, estimate))
        precisions.append(precision_at_k(truth, estimate, 10))
    return mean(times), mean(ndcgs), mean(precisions)


def test_fig6_budget_sweep(
    ground_truth_records, shared_cache, results_dir, capsys, benchmark
):
    records = ground_truth_records[:60]
    rows = []

    for budget in BUDGETS:
        for display, name in SAMPLING_ENGINES:
            stats = _sweep_engine(
                records, name,
                lambda index, budget=budget: EngineOptions(
                    samples_per_fact=budget, seed=1000 * budget + index
                ),
            )
            rows.append([display, budget, *stats])

    # CNF Proxy: constant across budgets.  The session cache (already
    # populated by the suite fixtures through the shared disk store)
    # serves the Tseytin CNFs, so the proxy row measures Algorithm 2
    # itself rather than re-transformation.
    stats = _sweep_engine(
        records, "proxy", lambda index: EngineOptions(cache=shared_cache)
    )
    rows.append(["CNF Proxy", "-", *stats])

    write_csv(results_dir / "fig6_budget_sweep.csv", HEADERS, rows)
    with capsys.disabled():
        print(f"\nFig 6 — budget sweep over {len(records)} outputs")
        print(format_table(HEADERS, rows))

    # Kernel: Monte Carlo at the middle budget on a mid-size record.
    mid = sorted(records, key=lambda r: r.n_facts)[len(records) // 2]
    players = sorted(mid.values)
    benchmark(
        monte_carlo_shapley, mid.circuit, players,
        samples_per_fact=20, rng=random.Random(0),
    )

    # Shape: Monte Carlo nDCG at 50/fact beats its 10/fact value.
    mc = {row[1]: row[3] for row in rows if row[0] == "Monte Carlo"}
    assert mc[50] >= mc[10] - 0.01
    # CNF Proxy is cheaper than Kernel SHAP at every budget (our
    # bit-parallel Monte Carlo is faster than the paper's baseline, so
    # it is excluded from the strict time comparison at micro scale).
    proxy_time = rows[-1][2]
    ks_times = [row[2] for row in rows if row[0] == "Kernel SHAP"]
    assert proxy_time <= min(ks_times)
