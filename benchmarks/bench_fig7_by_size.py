"""Figure 7: inexact methods vs provenance size (distribution + worst
case), at a fixed budget of 20 samples per fact.

Per size bucket (1-10, 11-25, ... facts) we report, for each method,
the median and worst-case runtime, nDCG, and Precision@10.

Expected shape (the paper's key selling point for CNF Proxy): the
sampling methods' Precision@10 collapses as provenance grows while CNF
Proxy stays flat; CNF Proxy is consistently the fastest.
"""

import random

from repro.bench import bucket_of, format_table, median, write_csv
from repro.core import kernel_shap_values, ndcg, precision_at_k
from repro.engine import EngineOptions, get_engine

BUDGET = 20
#: Display name -> registered engine name (registry dispatch).
ENGINES = {
    "Monte Carlo": "monte_carlo",
    "Kernel SHAP": "kernel_shap",
    "CNF Proxy": "proxy",
}
HEADERS = [
    "bucket", "method", "n",
    "time p50 [s]", "time worst [s]",
    "nDCG p50", "nDCG worst",
    "P@10 p50", "P@10 worst",
]


def _run(record, name, seed, cache=None):
    players = sorted(record.values)
    # The sampling engines ignore `cache`; CNF Proxy serves its Tseytin
    # CNF from the session's shared two-tier store.
    options = EngineOptions(samples_per_fact=BUDGET, seed=seed, cache=cache)
    return get_engine(ENGINES[name]).explain_circuit(
        record.circuit, players, options
    )


def test_fig7_by_provenance_size(
    ground_truth_records, shared_cache, results_dir, capsys, benchmark
):
    records = ground_truth_records
    buckets: dict[str, dict[str, dict[str, list[float]]]] = {}
    for index, record in enumerate(records):
        bucket = bucket_of(record.n_facts)
        if bucket is None:
            continue
        truth = {f: float(v) for f, v in record.values.items()}
        for name in ENGINES:
            result = _run(record, name, index, cache=shared_cache)
            estimate = {f: float(v) for f, v in result.values.items()}
            cell = buckets.setdefault(bucket, {}).setdefault(
                name, {"time": [], "ndcg": [], "p10": []}
            )
            cell["time"].append(result.seconds)
            cell["ndcg"].append(ndcg(truth, estimate))
            cell["p10"].append(precision_at_k(truth, estimate, 10))

    rows = []
    for bucket in sorted(buckets, key=lambda b: int(b.strip(">").split("-")[0])):
        for name in ENGINES:
            cell = buckets[bucket][name]
            rows.append(
                [
                    bucket, name, len(cell["time"]),
                    median(cell["time"]), max(cell["time"]),
                    median(cell["ndcg"]), min(cell["ndcg"]),
                    median(cell["p10"]), min(cell["p10"]),
                ]
            )
    write_csv(results_dir / "fig7_by_size.csv", HEADERS, rows)
    with capsys.disabled():
        print(f"\nFig 7 — methods by provenance size (budget {BUDGET}/fact)")
        print(format_table(HEADERS, rows))

    # Kernel: Kernel SHAP on the largest record.
    big = max(records, key=lambda r: r.n_facts)
    players = sorted(big.values)
    benchmark(
        kernel_shap_values, big.circuit, players,
        samples_per_fact=BUDGET, rng=random.Random(7),
    )

    # Shape: in every bucket, CNF Proxy is at least as fast as Kernel
    # SHAP (our bit-parallel Monte Carlo is faster than the paper's, so
    # the proxy-vs-MC gap only opens up at larger provenance sizes).
    for bucket, methods in buckets.items():
        proxy = median(methods["CNF Proxy"]["time"])
        assert proxy <= median(methods["Kernel SHAP"]["time"])
