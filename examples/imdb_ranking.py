"""Ranking influential facts on IMDB-style join queries.

Runs the JOB-style query 16a (cast of US title-character movies) over
the synthetic IMDB database and compares three ways of ranking the
facts behind one answer: exact Shapley values, CNF Proxy, and Monte
Carlo sampling — reporting the nDCG/Precision@10 of the inexact
rankings against the exact one, as in the paper's Section 6.2.

Run:  python examples/imdb_ranking.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import exact_shapley_of_circuit, ndcg, precision_at_k, ranking
from repro.db import lineage
from repro.engine import EngineOptions, get_engine
from repro.workloads import generate_imdb, imdb_query


def main() -> None:
    db = generate_imdb()
    spec = imdb_query("16a")
    print(f"Generated {db}")
    print(f"Query 16a: {spec.description}\n")

    result = lineage(spec.plan(db), db, endogenous_only=True)
    answers = sorted(
        result.tuples(), key=lambda t: len(result.facts_of(t)), reverse=True
    )
    # Pick a medium-difficulty answer: large provenance, still exact-able.
    answer = next(
        t for t in answers if 15 <= len(result.facts_of(t)) <= 60
    )
    circuit = result.lineage_of(answer)
    players = sorted(circuit.reachable_vars())
    print(f"Explaining answer person={answer[0]} "
          f"({len(players)} facts in its provenance)\n")

    start = time.perf_counter()
    exact = exact_shapley_of_circuit(circuit, players)
    t_exact = time.perf_counter() - start
    truth = {f: float(v) for f, v in exact.items()}

    # The inexact methods resolve through the engine registry.
    options = EngineOptions(samples_per_fact=20, seed=0)
    proxy_run = get_engine("proxy").explain_circuit(circuit, players, options)
    proxy, t_proxy = proxy_run.values, proxy_run.seconds

    monte_run = get_engine("monte_carlo").explain_circuit(
        circuit, players, options
    )
    monte, t_monte = monte_run.values, monte_run.seconds

    print("Top-5 facts by exact Shapley value:")
    for fact in ranking(truth)[:5]:
        print(f"  {float(truth[fact]):.4f}  {fact}")

    print("\nRanking quality against the exact order:")
    for name, estimate, seconds in (
        ("CNF Proxy", proxy, t_proxy),
        ("Monte Carlo (20/fact)", monte, t_monte),
    ):
        floats = {f: float(v) for f, v in estimate.items()}
        print(f"  {name:22s} nDCG={ndcg(truth, floats):.4f} "
              f"P@10={precision_at_k(truth, floats, 10):.2f} "
              f"time={seconds * 1000:.1f} ms "
              f"(exact took {t_exact * 1000:.1f} ms)")

    print("\nThe proxy reproduces the exact ranking almost perfectly at a")
    print("fraction of the cost — the paper's headline practical result.")


if __name__ == "__main__":
    main()
