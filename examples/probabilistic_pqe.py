"""Probabilistic query evaluation and the Shapley <= PQE reduction.

Demonstrates the theory side of the paper (Section 3):

1. a tuple-independent database evaluated with three PQE strategies
   (possible-world enumeration, lifted inference, lineage + d-DNNF);
2. the Proposition 3.1 reduction computing an exact Shapley value from
   nothing but a PQE oracle (n + 1 calls + Vandermonde interpolation).

Run:  python examples/probabilistic_pqe.py
"""

import os
import sys
from fractions import Fraction

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import count_slices, shapley_naive_query, shapley_via_pqe
from repro.db import Database, RelationSchema, Schema, cq
from repro.probdb import (
    TupleIndependentDatabase,
    pqe_lifted,
    pqe_lineage,
    pqe_naive,
)


def main() -> None:
    schema = Schema.of(
        RelationSchema.of("Customer", "name"),
        RelationSchema.of("Order", "name", "item"),
    )
    db = Database(schema)
    probabilities = {}
    probabilities[db.add("Customer", "ann")] = Fraction(1, 2)
    probabilities[db.add("Customer", "bob")] = Fraction(2, 3)
    probabilities[db.add("Order", "ann", "book")] = Fraction(1, 4)
    probabilities[db.add("Order", "bob", "mug")] = Fraction(1, 5)
    probabilities[db.add("Order", "bob", "pen")] = Fraction(1, 2)
    tid = TupleIndependentDatabase(db, probabilities)

    query = cq(None, "Customer(x)", "Order(x, y)")
    print(f"Query: {query}")
    print(f"Hierarchical: {query.is_hierarchical()} "
          f"(safe => PQE in polynomial time)\n")

    naive = pqe_naive(query, tid)
    lifted = pqe_lifted(query, tid)
    intensional = pqe_lineage(query, tid)
    print("P(query) by possible-world enumeration:", naive)
    print("P(query) by lifted (extensional) plan: ", lifted)
    print("P(query) by lineage + d-DNNF (WMC):    ", intensional)
    assert naive == lifted == intensional

    # --- Proposition 3.1: Shapley value from the PQE oracle ----------
    print("\n#Slices(q, Dx, Dn, k) via n+1 PQE calls + interpolation:")
    slices = count_slices(query, db, oracle=pqe_lifted)
    for k, count in enumerate(slices):
        print(f"  size {k}: {count} satisfying endogenous subsets")

    fact = db.relation("Customer")[0]
    via_pqe = shapley_via_pqe(query, db, fact, oracle=pqe_lifted)
    ground_truth = shapley_naive_query(query.to_algebra(schema), db)[fact]
    print(f"\nShapley({fact}) via the PQE reduction: {via_pqe}")
    print(f"Shapley({fact}) via Equation (1):      {ground_truth}")
    assert via_pqe == ground_truth
    print("\nThe reduction is exact — Shapley computation is no harder "
          "than PQE (Prop. 3.1).")


if __name__ == "__main__":
    main()
