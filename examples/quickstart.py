"""Quickstart: Shapley values of facts on the paper's running example.

The database (Figure 1 of the paper) has endogenous Flights facts and
exogenous Airports facts; the query asks whether a "USA" airport can
reach a "FR" airport with at most one connection.  We compute the exact
Shapley value of every flight with each of the library's methods.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import attribute, available_engines
from repro.workloads.flights import flights_database, flights_query


def main() -> None:
    db = flights_database()
    query = flights_query()
    print(f"Database: {db}")
    print(f"Query: {query}")
    # Every method below is dispatched through the engine registry;
    # attribute(method=...) accepts any of these names.
    print(f"Registered engines: {', '.join(available_engines())}\n")

    # Exact Shapley values via knowledge compilation (Algorithm 1).
    exact = attribute(db, query, answer=(), method="exact")
    print("Exact Shapley values (Algorithm 1):")
    for fact, value in exact.top(10):
        print(f"  {str(fact):30s} {str(value):>8s}  ≈ {float(value):.4f}")
    print(f"  computed in {exact.seconds * 1000:.1f} ms\n")

    # The recommended default: exact-with-timeout, CNF Proxy fallback.
    hybrid = attribute(db, query, answer=(), method="hybrid", timeout=2.5)
    print(f"Hybrid method returned kind={hybrid.detail.kind} "
          f"(exact={hybrid.exact})\n")

    # Fast inexact ranking via CNF Proxy (Algorithm 2).
    proxy = attribute(db, query, answer=(), method="proxy")
    print("CNF Proxy ranking (scores are NOT Shapley values; "
          "trust the order):")
    for fact in proxy.ranking():
        print(f"  {str(fact):30s} {float(proxy.values[fact]):+.5f}")
    print("  (note how the direct JFK->CDG flight lands at the bottom: this")
    print("  tiny query is the paper's Example 5.4, the documented case")
    print("  where the proxy misranks — on the benchmarks it rarely does)")
    print()

    # Sampling baselines.
    for method in ("monte_carlo", "kernel_shap"):
        estimate = attribute(
            db, query, answer=(), method=method, samples_per_fact=50, seed=0
        )
        top_fact, top_value = estimate.top(1)[0]
        print(f"{method:12s}: top fact {top_fact} "
              f"(estimate {float(top_value):.3f}) "
              f"in {estimate.seconds * 1000:.1f} ms")

    print("\nExpected (paper, Example 2.1): Flights('JFK','CDG') = 43/105,")
    print("middle-leg flights = 23/210, LAX/MUC legs = 8/105, "
          "Flights('LHR','MUC') = 0.")


if __name__ == "__main__":
    main()
