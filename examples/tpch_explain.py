"""Explaining TPC-H query answers: who made this order ship late?

Generates a micro-scale TPC-H database, runs the suite's Q3 (shipping
priority) and Q5 (local supplier volume), and attributes selected
answers to the underlying facts — exactly the workflow of the paper's
Section 6.1, including a budget-bounded exact computation and the
hybrid fallback for hard answers.

Run:  python examples/tpch_explain.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import ArtifactCache, EngineOptions, ShapleyExplainer, get_engine
from repro.compiler import CompilationBudget
from repro.db import lineage
from repro.workloads import TpchConfig, generate_tpch, tpch_query


def main() -> None:
    db = generate_tpch(TpchConfig(scale_factor=0.0005))
    print(f"Generated {db}\n")

    # One artifact cache shared by everything below: isomorphic
    # lineages (same query shape, different answer tuples) compile once.
    cache = ArtifactCache()

    # --- Q3: small per-answer provenance; batch all answers ----------
    spec = tpch_query("Q3")
    explainer = ShapleyExplainer(
        db, budget=CompilationBudget(max_seconds=2.5), cache=cache
    )
    explanations = explainer.explain_many(spec.sql)
    print(f"Q3 ({spec.description.splitlines()[0]})")
    print(f"  {len(explanations)} answers; explaining the first three:")
    for answer in list(explanations)[:3]:
        explanation = explanations[answer]
        if not explanation.outcome.ok:
            print(f"  order {answer[0]}: exact failed "
                  f"({explanation.outcome.status})")
            continue
        top_fact, top_value = explanation.top(1)[0]
        print(f"  order {answer[0]}: {len(explanation.values())} facts, "
              f"top contributor {top_fact} "
              f"with Shapley value {float(top_value):.4f}")
    print()

    # --- Q5: large per-answer provenance; use the hybrid engine ------
    spec = tpch_query("Q5")
    hybrid = get_engine("hybrid")
    options = EngineOptions(timeout=2.5, cache=cache)
    result = lineage(spec.plan(db), db, endogenous_only=True)
    print(f"Q5 ({spec.description.splitlines()[0]})")
    for answer in result.tuples():
        circuit = result.lineage_of(answer)
        players = sorted(circuit.reachable_vars())
        outcome = hybrid.explain_circuit(circuit, players, options)
        marker = "exact values" if outcome.exact else "proxy ranking"
        print(f"  nation {answer[0]}: {len(players)} facts -> {marker} "
              f"in {outcome.seconds:.3f}s")
        for fact in outcome.detail.ranking()[:3]:
            print(f"      {fact}")

    stats = cache.stats
    print(f"\nArtifact cache: {stats.compile_calls} compilations, "
          f"{stats.ddnnf_hits} d-DNNF hits, {stats.cnf_hits} CNF hits "
          "— repeated lineage shapes compiled once.")
    print("Interpretation: the top facts are the lineitem/order/customer")
    print("rows whose removal would hurt the answer most — the paper's")
    print("notion of fact responsibility.")


if __name__ == "__main__":
    main()
