"""Explaining TPC-H query answers: who made this order ship late?

Generates a micro-scale TPC-H database, runs the suite's Q3 (shipping
priority) and Q5 (local supplier volume), and attributes selected
answers to the underlying facts — exactly the workflow of the paper's
Section 6.1, including a budget-bounded exact computation and the
hybrid fallback for hard answers.

Run:  python examples/tpch_explain.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import ShapleyExplainer, hybrid_shapley
from repro.compiler import CompilationBudget
from repro.db import lineage
from repro.workloads import TpchConfig, generate_tpch, tpch_query


def main() -> None:
    db = generate_tpch(TpchConfig(scale_factor=0.0005))
    print(f"Generated {db}\n")

    # --- Q3: small per-answer provenance, exact is instantaneous -----
    spec = tpch_query("Q3")
    explainer = ShapleyExplainer(
        db, budget=CompilationBudget(max_seconds=2.5)
    )
    explanations = explainer.explain(spec.sql)
    print(f"Q3 ({spec.description.splitlines()[0]})")
    print(f"  {len(explanations)} answers; explaining the first three:")
    for answer in list(explanations)[:3]:
        explanation = explanations[answer]
        if not explanation.outcome.ok:
            print(f"  order {answer[0]}: exact failed "
                  f"({explanation.outcome.status})")
            continue
        top_fact, top_value = explanation.top(1)[0]
        print(f"  order {answer[0]}: {len(explanation.values())} facts, "
              f"top contributor {top_fact} "
              f"with Shapley value {float(top_value):.4f}")
    print()

    # --- Q5: large per-answer provenance; use the hybrid -------------
    spec = tpch_query("Q5")
    result = lineage(spec.plan(db), db, endogenous_only=True)
    print(f"Q5 ({spec.description.splitlines()[0]})")
    for answer in result.tuples():
        circuit = result.lineage_of(answer)
        players = sorted(circuit.reachable_vars())
        outcome = hybrid_shapley(circuit, players, timeout=2.5)
        marker = "exact values" if outcome.is_exact else "proxy ranking"
        print(f"  nation {answer[0]}: {len(players)} facts -> {marker} "
              f"in {outcome.seconds:.3f}s")
        for fact in outcome.ranking()[:3]:
            print(f"      {fact}")
    print("\nInterpretation: the top facts are the lineitem/order/customer")
    print("rows whose removal would hurt the answer most — the paper's")
    print("notion of fact responsibility.")


if __name__ == "__main__":
    main()
