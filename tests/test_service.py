"""Tests for the service layer: transport parity (the acceptance
criterion — all three transports produce identical Shapley values),
session lifecycle (context manager, deterministic shutdown, transport
reuse), and coordinator/worker behaviour over real sockets."""

import socket
import threading
from fractions import Fraction

import pytest

from repro.compiler import CompilationBudget
from repro.engine import (
    ArtifactCache,
    Coordinator,
    EngineOptions,
    ExplainSession,
    PersistentArtifactStore,
    TransportError,
    run_worker,
)
from repro.engine.scheduler import plan_batch
from repro.engine.service.local import InProcessTransport, ProcessPoolTransport
from repro.engine.service.protocol import parse_address, recv_msg, send_msg
from repro.engine.service.remote import SocketTransport

from .test_store import JOIN_QUERY, join_database


def values_of(results):
    return {answer: result.values for answer, result in results.items()}


def mixed_fanout_database(n_answers, fanouts):
    """Two (or more) distinct lineage shapes in one batch: answer ``i``
    joins with ``fanouts[i % len(fanouts)]`` S rows.  Fanouts >= 4 give
    each shape a >=8-var component, so the pipelined schedule gates
    every shape on a component compile."""
    from repro.db import Database, RelationSchema, Schema

    schema = Schema.of(
        RelationSchema.of("R", "a", "b"), RelationSchema.of("S", "b", "c")
    )
    db = Database(schema)
    for i in range(n_answers):
        db.add("R", f"x{i}", f"y{i}")
        for j in range(fanouts[i % len(fanouts)]):
            db.add("S", f"y{i}", f"z{i}_{j}")
    return db


@pytest.fixture
def fleet(tmp_path):
    """A live coordinator with two in-thread workers sharing a store."""
    coordinator = Coordinator().start()
    store_dir = str(tmp_path / "fleet-store")
    ready = threading.Barrier(3, timeout=10)
    threads = [
        threading.Thread(
            target=run_worker,
            args=(coordinator.address,),
            kwargs={"cache_dir": store_dir, "on_ready": ready.wait},
            daemon=True,
        )
        for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    ready.wait()
    coordinator.wait_for_workers(2, timeout=10)
    yield coordinator
    coordinator.shutdown()
    for thread in threads:
        thread.join(timeout=10)


class TestTransportParity:
    def test_exact_identical_fractions_across_all_three_transports(
        self, fleet
    ):
        db = join_database(6, 2)
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        with ExplainSession(
            db, method="exact", max_workers=2,
            coordinator=fleet.address, min_workers=2,
        ) as session:
            by_process = session.explain_many(JOIN_QUERY, executor="process")
            by_socket = session.explain_many(JOIN_QUERY, executor="socket")
        expected = values_of(baseline)
        assert values_of(by_process) == expected
        assert values_of(by_socket) == expected
        for result in expected.values():
            assert all(isinstance(v, Fraction) for v in result.values())

    def test_sampling_identical_values_for_equal_seeds(self, fleet):
        db = join_database(4, 2)
        options = EngineOptions(seed=99)
        runs = []
        for executor in ("thread", "process", "socket"):
            with ExplainSession(
                db, method="monte_carlo", options=options, max_workers=2,
                executor=executor, coordinator=fleet.address,
            ) as session:
                runs.append(values_of(session.explain_many(JOIN_QUERY)))
        assert runs[0] == runs[1] == runs[2]

    def test_socket_workers_share_the_store(self, fleet):
        db = join_database(6, 2)
        with ExplainSession(
            db, method="exact", executor="socket",
            coordinator=fleet.address, min_workers=2,
        ) as session:
            session.explain_many(JOIN_QUERY)
            stats = session.stats
        # six isomorphic answers, one shape: exactly one compile across
        # the whole fleet (shape affinity keeps the shape on one
        # worker; the store shares it with the other).
        assert stats["remote_workers"] == 2
        assert stats["remote_compile_calls"] == 1
        assert stats["compile_calls"] == 0  # the client never compiles

    def test_pipelined_socket_batch_matches_and_reports_counters(
        self, fleet
    ):
        # A cold two-shape batch down the coordinator's interleaved
        # compile/stitch/group schedule: Fractions identical to the
        # local baseline, pipeline counters aggregated under remote_*.
        db = mixed_fanout_database(6, (6, 7))
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        with ExplainSession(
            db, method="exact", executor="socket",
            coordinator=fleet.address, min_workers=2,
        ) as session:
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert values_of(results) == values_of(baseline)
        assert all(r.ok for r in results.values())
        assert stats["remote_component_pass_compiles"] == 2
        assert stats["remote_stitch_jobs"] == 2
        assert stats["remote_pipeline_overlap_seconds"] >= 0.0
        assert stats["compile_calls"] == 0  # the client never compiles


class TestSessionLifecycle:
    def test_context_manager_closes_transports(self):
        db = join_database(2, 1)
        with ExplainSession(db, method="exact") as session:
            session.explain_many(JOIN_QUERY)
            transport = session._transports["thread"]
            assert transport._pool is not None
        assert session.closed
        assert transport._pool is None
        with pytest.raises(RuntimeError, match="closed"):
            session.explain_many(JOIN_QUERY)
        with pytest.raises(RuntimeError, match="closed"):
            session.__enter__()

    def test_close_is_idempotent(self):
        session = ExplainSession(join_database(1, 1))
        session.close()
        session.close()
        assert session.closed

    def test_transports_are_reused_across_calls(self):
        db = join_database(3, 1)
        with ExplainSession(db, method="exact", max_workers=2) as session:
            session.explain_many(JOIN_QUERY)
            first = session._transports["thread"]
            first_pool = first._pool
            session.explain_many(JOIN_QUERY)
            assert session._transports["thread"] is first
            assert first._pool is first_pool

    def test_process_pool_persists_across_batches(self):
        db = join_database(3, 1)
        with ExplainSession(
            db, method="monte_carlo", options=EngineOptions(seed=5),
            max_workers=2, executor="process",
        ) as session:
            session.explain_many(JOIN_QUERY)
            transport = session._transports["process"]
            pool = transport._pool
            assert pool is not None
            session.explain_many(JOIN_QUERY)
            assert transport._pool is pool
        assert transport._pool is None  # closed deterministically

    def test_exception_mid_batch_leaves_session_usable_and_closeable(self):
        from repro.engine.base import Engine
        from repro.engine.registry import register_engine

        calls = {"n": 0}

        @register_engine
        class _FlakyEngine(Engine):
            name = "_test_flaky"
            exact = False

            def explain_circuit(self, circuit, players, options=None):
                calls["n"] += 1
                raise ValueError("engine exploded")

        db = join_database(3, 1)
        with ExplainSession(db, method="_test_flaky") as session:
            with pytest.raises(ValueError, match="engine exploded"):
                session.explain_many(JOIN_QUERY)
            # the pool survived the failed batch and still works
            with pytest.raises(ValueError, match="engine exploded"):
                session.explain_many(JOIN_QUERY)
        assert session.closed

    def test_socket_executor_requires_coordinator(self):
        with pytest.raises(ValueError, match="coordinator"):
            ExplainSession(
                join_database(1, 1), executor="socket"
            ).explain_many(JOIN_QUERY)

    def test_unknown_executor_still_rejected(self):
        db = join_database(1, 1)
        with pytest.raises(ValueError, match="unknown executor"):
            ExplainSession(db, executor="gpu")
        with pytest.raises(ValueError, match="unknown executor"):
            ExplainSession(db).explain_many(JOIN_QUERY, executor="gpu")


class TestCoordinator:
    def test_ping_reports_worker_count(self, fleet):
        transport = SocketTransport(fleet.address)
        assert transport.ping() == 2

    def test_unreachable_coordinator_is_a_transport_error(self):
        db = join_database(1, 1)
        transport = SocketTransport(
            ("127.0.0.1", 1), connect_retry_for=0.0
        )
        session = ExplainSession(db, method="exact")
        plan = plan_batch("exact", session._build_jobs(JOIN_QUERY, None), True)
        with pytest.raises(TransportError, match="cannot reach"):
            transport.run_batch(plan)

    def test_min_workers_timeout_fails_the_batch(self):
        with Coordinator() as coordinator:
            db = join_database(1, 1)
            transport = SocketTransport(
                coordinator.address, min_workers=3, wait_timeout=0.2
            )
            session = ExplainSession(db, method="exact")
            plan = plan_batch(
                "exact", session._build_jobs(JOIN_QUERY, None), True
            )
            with pytest.raises(TransportError, match="worker"):
                transport.run_batch(plan)

    def test_idle_dead_workers_are_swept_from_the_barrier(self):
        # A "worker" that registers and immediately hangs up must not
        # count towards n_workers or satisfy the min_workers barrier.
        with Coordinator() as coordinator:
            ghost = socket.create_connection(coordinator.address, timeout=5)
            send_msg(ghost, {"op": "hello", "role": "worker", "pid": -1})
            coordinator.wait_for_workers(1, timeout=10)
            ghost.close()
            assert coordinator.wait_for_workers(1, timeout=0.3) == 0
            assert coordinator.n_workers == 0

    def test_mid_batch_death_is_redistributed_to_survivors(
        self, tmp_path
    ):
        # A worker that accepts its first task and then hangs up: the
        # coordinator must discard it and let the survivor absorb its
        # unfinished shard.  The traitor registers *first* so the
        # single-shape batch is deterministically placed on it.
        with Coordinator() as coordinator:
            died = threading.Event()

            def traitor():
                sock = socket.create_connection(coordinator.address, timeout=5)
                send_msg(sock, {"op": "hello", "role": "worker", "pid": -1})
                recv_msg(sock)  # first task of our shard arrives...
                sock.close()    # ...and we die without answering
                died.set()

            threading.Thread(target=traitor, daemon=True).start()
            coordinator.wait_for_workers(1, timeout=10)
            survivor = threading.Thread(
                target=run_worker,
                args=(coordinator.address,),
                kwargs={"cache_dir": str(tmp_path / "store")},
                daemon=True,
            )
            survivor.start()
            coordinator.wait_for_workers(2, timeout=10)

            db = join_database(6, 2)
            with ExplainSession(
                db, method="exact", executor="socket",
                coordinator=coordinator.address,
            ) as session:
                results = session.explain_many(JOIN_QUERY)
            assert died.wait(timeout=10)
            assert len(results) == 6
            assert all(r.ok for r in results.values())
            baseline = ExplainSession(
                db, method="exact"
            ).explain_many(JOIN_QUERY)
            assert values_of(results) == values_of(baseline)

    def test_death_during_component_compile_is_redistributed(
        self, tmp_path
    ):
        # The pipelined variant of the traitor test: both shapes of a
        # mixed-fanout batch are gated on a component compile, so each
        # worker's *first* op is deterministically a pipelined
        # ``compile`` — the traitor dies holding one, the coordinator
        # requeues it, and the survivor finishes the whole DAG with
        # Fractions identical to the local baseline.
        db = mixed_fanout_database(4, (6, 7))
        with Coordinator() as coordinator:
            died = threading.Event()

            def traitor():
                sock = socket.create_connection(coordinator.address, timeout=5)
                send_msg(sock, {"op": "hello", "role": "worker", "pid": -1})
                recv_msg(sock)  # our component-compile op arrives...
                sock.close()    # ...and we die without answering
                died.set()

            threading.Thread(target=traitor, daemon=True).start()
            coordinator.wait_for_workers(1, timeout=10)
            survivor = threading.Thread(
                target=run_worker,
                args=(coordinator.address,),
                kwargs={"cache_dir": str(tmp_path / "store")},
                daemon=True,
            )
            survivor.start()
            coordinator.wait_for_workers(2, timeout=10)

            with ExplainSession(
                db, method="exact", executor="socket",
                coordinator=coordinator.address,
            ) as session:
                results = session.explain_many(JOIN_QUERY)
                stats = session.stats
            assert died.wait(timeout=10)
            assert len(results) == 4
            assert all(r.ok for r in results.values())
            baseline = ExplainSession(
                db, method="exact"
            ).explain_many(JOIN_QUERY)
            assert values_of(results) == values_of(baseline)
            # the survivor ran the whole one-pass component phase
            assert stats["remote_component_pass_compiles"] == 2
            assert stats["remote_stitch_jobs"] == 2

    def test_worker_survives_engine_errors(self, fleet):
        from repro.engine.base import Engine
        from repro.engine.registry import register_engine

        @register_engine
        class _BoomEngine(Engine):
            name = "_test_boom"
            exact = False

            def explain_circuit(self, circuit, players, options=None):
                raise RuntimeError("kaboom")

        db = join_database(2, 1)
        with ExplainSession(
            db, method="_test_boom", executor="socket",
            coordinator=fleet.address,
        ) as session:
            results = session.explain_many(JOIN_QUERY)
        assert all(r.status == "error" for r in results.values())
        assert all("kaboom" in r.error for r in results.values())
        # the same workers still serve healthy batches afterwards
        with ExplainSession(
            db, method="exact", executor="socket", coordinator=fleet.address,
        ) as session:
            healthy = session.explain_many(JOIN_QUERY)
        assert all(r.ok for r in healthy.values())

    def test_parse_address(self):
        assert parse_address("host:123") == ("host", 123)
        assert parse_address(("h", 9)) == ("h", 9)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address("host:abc")


class TestCompileAhead:
    def test_warm_ahead_then_batch_compiles_nothing_new(self, fleet):
        db = join_database(6, 2)
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        with ExplainSession(
            db, method="exact", executor="socket",
            coordinator=fleet.address, min_workers=2,
        ) as session:
            status = session.warm_ahead(JOIN_QUERY)
            assert status == {"shapes": 1, "queued": 1, "completed": 1,
                              "failed": 0, "pending": 0, "component_tasks": 0}
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert values_of(results) == values_of(baseline)
        # the warm pass did the fleet's only compile; the batch reused
        # it (worker stats are cumulative since worker start)
        assert stats["remote_compile_calls"] == 1
        assert stats["compile_calls"] == 0  # the client never compiles

    def test_warm_status_starts_at_zero(self, fleet):
        transport = SocketTransport(fleet.address)
        assert transport.warm_status() == {
            "queued": 0, "in_flight": 0, "pending": 0,
            "completed": 0, "failed": 0,
            "component_completed": 0, "component_failed": 0,
        }

    def test_warm_ahead_local_executor_warms_inline(self):
        db = join_database(4, 2)
        with ExplainSession(db, method="exact") as session:
            status = session.warm_ahead(JOIN_QUERY)
            assert status["shapes"] == 1
            assert status["completed"] == 1
            assert status["pending"] == 0
            session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert stats["compile_calls"] == 1  # the warm pass only

    def test_warm_ahead_is_a_noop_for_sampling_engines(self):
        db = join_database(4, 2)
        with ExplainSession(
            db, method="monte_carlo", options=EngineOptions(seed=5)
        ) as session:
            status = session.warm_ahead(JOIN_QUERY)
        assert status == {"shapes": 0, "queued": 0, "completed": 0,
                          "failed": 0, "pending": 0, "component_tasks": 0}

    def test_warm_failures_are_counted_not_fatal(self, fleet):
        db = join_database(6, 2)
        tiny = EngineOptions(budget=CompilationBudget(max_nodes=1))
        with ExplainSession(
            db, method="exact", executor="socket",
            coordinator=fleet.address, options=tiny,
        ) as session:
            status = session.warm_ahead(JOIN_QUERY)
        assert status["failed"] == 1
        assert status["completed"] == 0
        # the fleet still serves healthy batches afterwards
        with ExplainSession(
            db, method="exact", executor="socket", coordinator=fleet.address,
        ) as session:
            healthy = session.explain_many(JOIN_QUERY)
        assert all(r.ok for r in healthy.values())


class TestLocalTransports:
    def test_inprocess_transport_runs_a_plan_directly(self):
        db = join_database(3, 1)
        session = ExplainSession(db, method="exact")
        plan = plan_batch("exact", session._build_jobs(JOIN_QUERY, None), True)
        with InProcessTransport(max_workers=2) as transport:
            outcomes = transport.run_batch(plan)
        assert sorted(outcomes) == [0, 1, 2]
        assert all(result.ok for result in outcomes.values())

    def test_process_transport_uses_store_dir(self, tmp_path):
        store = PersistentArtifactStore(tmp_path / "store")
        cache = ArtifactCache(store=store)
        db = join_database(4, 2)
        session = ExplainSession(db, method="exact", cache=cache)
        plan = plan_batch("exact", session._build_jobs(JOIN_QUERY, None), True)
        with ProcessPoolTransport(
            max_workers=2, store_dir=str(store.directory)
        ) as transport:
            outcomes = transport.run_batch(plan)
        assert all(result.ok for result in outcomes.values())
        assert store.stats.writes >= 2  # warm wave published cnf+dnnf
