"""Tests for the pure scheduling layer: shape dedup / warm-up planning
(:func:`plan_batch`), affinity-preserving shard assignment
(:func:`assign_shards`), and job portability."""

import pytest

from repro.engine import ArtifactCache, EngineOptions
from repro.engine.scheduler import Job, assign_shards, plan_batch
from repro.engine.store import signature_digest
from repro.workloads.synthetic import chained_dnf


def job(index, signature, answer=None):
    return Job(
        index=index,
        answer=answer if answer is not None else (index,),
        circuit=None,
        players=[],
        options=EngineOptions(),
        signature=signature,
    )


class TestPlanBatch:
    def test_warm_wave_is_first_occurrence_per_shape(self):
        jobs = [job(0, "A"), job(1, "B"), job(2, "A"), job(3, "A"), job(4, "B")]
        plan = plan_batch("exact", jobs, deduplicate=True)
        assert [j.index for j in plan.warm_wave] == [0, 1]
        assert [j.index for j in plan.main_wave] == [2, 3, 4]
        assert plan.n_shapes == 2
        assert plan.deduplicated
        assert [j.index for j in plan.jobs] == [0, 1, 2, 3, 4]

    def test_no_dedup_means_single_wave(self):
        jobs = [job(0, None), job(1, None), job(2, None)]
        plan = plan_batch("monte_carlo", jobs, deduplicate=False)
        assert plan.warm_wave == []
        assert [j.index for j in plan.main_wave] == [0, 1, 2]
        assert plan.n_shapes == 3
        assert not plan.deduplicated

    def test_none_signatures_never_alias_even_when_deduplicating(self):
        jobs = [job(0, None), job(1, None)]
        plan = plan_batch("exact", jobs, deduplicate=True)
        assert len(plan.warm_wave) == 2
        assert plan.main_wave == []
        assert plan.n_shapes == 2

    def test_empty_batch(self):
        plan = plan_batch("exact", [], deduplicate=True)
        assert plan.jobs == plan.warm_wave == plan.main_wave == []
        assert plan.n_shapes == 0


class TestAssignShards:
    def test_same_key_always_shares_a_shard(self):
        jobs = [job(i, "AB"[i % 2]) for i in range(10)]
        shards = assign_shards(jobs, 2, key=Job.affinity)
        for shard in shards:
            assert len({j.signature for j in shard}) <= 1

    def test_group_order_is_preserved_inside_a_shard(self):
        jobs = [job(0, "A"), job(1, "A"), job(2, "A")]
        [shard] = [s for s in assign_shards(jobs, 3, key=Job.affinity) if s]
        assert [j.index for j in shard] == [0, 1, 2]

    def test_balances_by_group_size(self):
        # groups of sizes 4, 3, 2, 1 over 2 shards -> loads 5 and 5
        jobs = (
            [job(i, "A") for i in range(4)]
            + [job(10 + i, "B") for i in range(3)]
            + [job(20 + i, "C") for i in range(2)]
            + [job(30, "D")]
        )
        shards = assign_shards(jobs, 2, key=Job.affinity)
        assert sorted(len(s) for s in shards) == [5, 5]

    def test_deterministic(self):
        jobs = [job(i, f"sig{i % 3}") for i in range(12)]
        first = assign_shards(jobs, 4, key=Job.affinity)
        second = assign_shards(jobs, 4, key=Job.affinity)
        assert [[j.index for j in s] for s in first] == [
            [j.index for j in s] for s in second
        ]

    def test_more_shards_than_groups_leaves_empties(self):
        shards = assign_shards([job(0, "A")], 4, key=Job.affinity)
        assert sum(bool(s) for s in shards) == 1
        assert len(shards) == 4

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            assign_shards([], 0, key=Job.affinity)


class TestJobPortability:
    def test_portable_strips_cache_and_digests_signature(self):
        cache = ArtifactCache()
        circuit = chained_dnf(3)
        handle = cache.open(circuit)
        rich = Job(
            index=0,
            answer=("a",),
            circuit=circuit,
            players=sorted(handle.labels),
            options=EngineOptions(cache=cache, artifacts=handle),
            signature=handle.signature,
        )
        portable = rich.portable()
        assert portable.options.cache is None
        assert portable.options.artifacts is None
        assert portable.signature == signature_digest(handle.signature)
        # affinity agrees between the rich and portable forms
        assert rich.affinity() == portable.affinity()
        # original untouched
        assert rich.options.cache is cache

    def test_portable_roundtrips_through_pickle(self):
        import pickle

        cache = ArtifactCache()
        circuit = chained_dnf(2)
        handle = cache.open(circuit)
        rich = Job(0, ("a",), circuit, sorted(handle.labels),
                   EngineOptions(cache=cache, artifacts=handle),
                   handle.signature)
        clone = pickle.loads(pickle.dumps(rich.portable()))
        assert clone.signature == rich.portable().signature
        assert clone.players == rich.players

    def test_affinity_of_unshaped_job_is_unique(self):
        assert job(0, None).affinity() != job(1, None).affinity()
