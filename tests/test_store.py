"""Tests for the persistent artifact store and process-parallel
execution: serialization round trips, two-tier cache layering,
cross-process parity, corruption handling, and the engine-layer
regression fixes that ride along (single canonicalization pass,
stable per-answer seeds, disabled-storage eviction accounting)."""

import os
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

import pytest

from repro.circuits import Circuit, circuit_from_nested
from repro.circuits.circuit import CircuitError
from repro.circuits.cnf import Cnf, CnfError
from repro.core import run_exact
from repro.core.attribution import attribute
from repro.db import Database, RelationSchema, Schema, cq
from repro.engine import (
    ArtifactCache,
    EngineOptions,
    ExplainSession,
    PersistentArtifactStore,
    derive_answer_seed,
    get_engine,
)
from repro.engine.store import FORMAT_VERSION, signature_digest
from repro.workloads.synthetic import bipartite_join_dnf, chained_dnf

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def join_database(n_answers: int = 6, fanout: int = 2) -> Database:
    """Pairwise-isomorphic lineages: a=x_i joins R(x_i, y_i) with
    ``fanout`` S(y_i, *) rows (mirrors tests/test_engine.py)."""
    schema = Schema.of(
        RelationSchema.of("R", "a", "b"), RelationSchema.of("S", "b", "c")
    )
    db = Database(schema)
    for i in range(n_answers):
        db.add("R", f"x{i}", f"y{i}")
        for j in range(fanout):
            db.add("S", f"y{i}", f"z{i}_{j}")
    return db


JOIN_QUERY = cq(["a"], "R(a, b)", "S(b, c)")


class TestPayloadSerialization:
    def test_circuit_payload_round_trip_preserves_structure(self):
        circuit = chained_dnf(4).condition({}).flatten()
        sig, labels = circuit.structural_signature()
        canonical = circuit.rename(
            {label: i for i, label in enumerate(labels)}
        )
        back = Circuit.from_payload(canonical.to_payload())
        assert back.to_nested() == canonical.to_nested()
        assert back.structural_signature() == canonical.structural_signature()

    def test_circuit_payload_survives_json(self):
        import json

        circuit = circuit_from_nested(("or", ("and", 0, 1), ("and", 2, 3)))
        payload = json.loads(json.dumps(circuit.to_payload()))
        back = Circuit.from_payload(payload)
        assert back.to_nested() == circuit.to_nested()

    def test_circuit_payload_rejects_garbage(self):
        with pytest.raises(CircuitError):
            Circuit.from_payload({"kinds": [0]})
        with pytest.raises(CircuitError):
            Circuit.from_payload(
                {"kinds": [99], "children": [[]], "labels": [0], "output": 0}
            )
        with pytest.raises(CircuitError):
            # forward reference: child id >= its own gate id
            Circuit.from_payload(
                {"kinds": [3], "children": [[1]], "labels": [None], "output": 0}
            )

    def test_cnf_payload_round_trip(self):
        cnf = Cnf(4, [(1, -2), (3, 4), (-1,)], labels={1: 0, 3: 1})
        back = Cnf.from_payload(cnf.to_payload())
        assert back.num_vars == cnf.num_vars
        assert back.clauses == cnf.clauses
        assert back.labels == cnf.labels

    def test_cnf_payload_rejects_garbage(self):
        with pytest.raises(CnfError):
            Cnf.from_payload({"num_vars": 2})
        with pytest.raises(CnfError):
            Cnf.from_payload(
                {"num_vars": 1, "clauses": [[5]], "labels": []}
            )


class TestSignatureDigest:
    def test_digest_is_stable_across_label_sets(self):
        c1 = bipartite_join_dnf(3, 2)
        c2 = c1.rename({v: ("t", v) for v in c1.reachable_vars()})
        d1 = signature_digest(c1.structural_signature()[0])
        d2 = signature_digest(c2.structural_signature()[0])
        assert d1 == d2

    def test_digest_normalizes_gatekind_enums(self):
        # The same shape built natively (IntEnum kinds) and reloaded
        # from a payload (plain-int kinds) must hash identically, or
        # warm processes would never hit the store.
        circuit = chained_dnf(3).condition({}).flatten()
        sig, labels = circuit.structural_signature()
        canonical = circuit.rename({l: i for i, l in enumerate(labels)})
        reloaded = Circuit.from_payload(canonical.to_payload())
        assert signature_digest(sig) == signature_digest(
            reloaded.structural_signature()[0]
        )

    def test_different_shapes_get_different_files(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        sig_a = bipartite_join_dnf(3, 2).structural_signature()[0]
        sig_b = chained_dnf(4).structural_signature()[0]
        assert store.path_for(sig_a, "dnnf") != store.path_for(sig_b, "dnnf")


class TestPersistentStore:
    def test_directory_expands_user(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        store = PersistentArtifactStore("~/artifacts")
        assert store.directory == tmp_path / "artifacts"
        assert store.directory.is_dir()

    def test_cold_run_writes_warm_reload_skips_compilation(self, tmp_path):
        circuit = bipartite_join_dnf(3, 3)
        players = sorted(circuit.reachable_vars())
        cold_cache = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        cold = run_exact(circuit, players, cache=cold_cache)
        assert cold.ok and cold_cache.stats.compile_calls == 1
        # cnf + dnnf + tape, plus any memoized component circuits
        summary = cold_cache.store.kind_summary()
        assert [summary[k]["files"] for k in ("cnf", "dnnf", "tape")] == [1, 1, 1]
        assert cold_cache.store.stats.writes >= 3

        # A fresh cache + store over the same directory models a new
        # process: everything is served from disk, nothing compiles.
        warm_cache = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        warm = run_exact(circuit, players, cache=warm_cache)
        assert warm.ok
        assert warm_cache.stats.compile_calls == 0
        assert warm_cache.store.stats.hits >= 1
        assert warm.values == cold.values
        assert all(
            type(v) is Fraction and v == cold.values[f]
            for f, v in warm.values.items()
        )

    def test_isomorphic_shape_hits_store_under_rename(self, tmp_path):
        base = bipartite_join_dnf(3, 2)
        cache1 = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        cache1.ddnnf_for(base)

        renamed = base.rename({v: ("r", v) for v in base.reachable_vars()})
        cache2 = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        ddnnf = cache2.ddnnf_for(renamed)
        assert cache2.stats.compile_calls == 0
        assert ddnnf.reachable_vars() == renamed.reachable_vars()

    def test_truncated_artifact_counts_corruption_and_recompiles(self, tmp_path):
        circuit = bipartite_join_dnf(2, 2)
        players = sorted(circuit.reachable_vars())
        store = PersistentArtifactStore(tmp_path)
        run_exact(circuit, players, cache=ArtifactCache(store=store))

        for path in Path(tmp_path).iterdir():
            blob = path.read_bytes()
            path.write_bytes(blob[: len(blob) // 2])  # torn write

        fresh_store = PersistentArtifactStore(tmp_path)
        cache = ArtifactCache(store=fresh_store)
        outcome = run_exact(circuit, players, cache=cache)
        assert outcome.ok
        assert cache.stats.compile_calls == 1  # fell back to compiling
        assert fresh_store.stats.corruptions >= 1
        # the corrupt files were dropped and rewritten
        summary = fresh_store.kind_summary()
        assert [summary[k]["files"] for k in ("cnf", "dnnf", "tape")] == [1, 1, 1]
        assert fresh_store.stats.writes >= 3

        again = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        assert run_exact(circuit, players, cache=again).ok
        assert again.stats.compile_calls == 0

    def test_unknown_format_version_is_a_miss_not_corruption(self, tmp_path):
        circuit = bipartite_join_dnf(2, 2)
        store = PersistentArtifactStore(tmp_path)
        ArtifactCache(store=store).ddnnf_for(circuit)

        for path in Path(tmp_path).iterdir():
            head, _, tail = path.read_bytes().partition(b"\n")
            parts = head.split()
            parts[1] = str(FORMAT_VERSION + 1).encode()
            path.write_bytes(b" ".join(parts) + b"\n" + tail)

        fresh = PersistentArtifactStore(tmp_path)
        cache = ArtifactCache(store=fresh)
        cache.ddnnf_for(circuit)
        assert cache.stats.compile_calls == 1
        assert fresh.stats.corruptions == 0
        assert fresh.stats.misses >= 1

    def test_cross_process_parity(self, tmp_path):
        """Compile in a real child process; reload here with
        ``compile_calls == 0`` and byte-identical Fractions."""
        script = f"""
import sys
sys.path.insert(0, {SRC_DIR!r})
from repro.core import run_exact
from repro.engine import ArtifactCache, PersistentArtifactStore
from repro.workloads.synthetic import bipartite_join_dnf

circuit = bipartite_join_dnf(3, 2)
players = sorted(circuit.reachable_vars())
cache = ArtifactCache(store=PersistentArtifactStore({str(tmp_path)!r}))
outcome = run_exact(circuit, players, cache=cache)
assert outcome.ok and cache.stats.compile_calls == 1
print(repr(sorted((str(f), str(v)) for f, v in outcome.values.items())))
"""
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONHASHSEED": "random"},
        )
        circuit = bipartite_join_dnf(3, 2)
        players = sorted(circuit.reachable_vars())
        cache = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        outcome = run_exact(circuit, players, cache=cache)
        assert outcome.ok
        assert cache.stats.compile_calls == 0
        assert cache.store.stats.hits >= 1
        ours = repr(sorted((str(f), str(v)) for f, v in outcome.values.items()))
        assert ours == child.stdout.strip()

    def test_store_survives_memory_eviction(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        cache = ArtifactCache(max_entries=1, store=store)
        a, b = chained_dnf(3), chained_dnf(4)
        cache.ddnnf_for(a)
        cache.ddnnf_for(b)  # evicts a's memory entry
        cache.ddnnf_for(a)  # ... but the store still has it
        assert cache.stats.compile_calls == 2
        assert store.stats.hits >= 1

    def test_write_failure_is_counted_not_raised(self, tmp_path):
        store = PersistentArtifactStore(tmp_path / "gone")
        import shutil

        shutil.rmtree(store.directory)
        cache = ArtifactCache(store=store)
        assert cache.ddnnf_for(chained_dnf(3)) is not None
        assert store.stats.write_failures >= 1


class TestProcessExecutor:
    def test_process_results_match_thread_results(self, tmp_path):
        db = join_database(n_answers=6)
        thread = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        store = PersistentArtifactStore(tmp_path)
        session = ExplainSession(
            db, method="exact", cache=ArtifactCache(store=store),
            max_workers=2, executor="process",
        )
        proc = session.explain_many(JOIN_QUERY)
        assert {a: r.values for a, r in proc.items()} == {
            a: r.values for a, r in thread.items()
        }
        # the warm-up wave compiled the single shape once, in-parent
        assert session.stats["compile_calls"] == 1
        assert session.stats["store_writes"] == 3

    def test_process_executor_without_store_still_correct(self):
        db = join_database(n_answers=4)
        thread = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        proc = ExplainSession(
            db, method="exact", max_workers=2, executor="process"
        ).explain_many(JOIN_QUERY)
        assert {a: r.values for a, r in proc.items()} == {
            a: r.values for a, r in thread.items()
        }

    def test_per_call_executor_override(self, tmp_path):
        db = join_database(n_answers=4)
        session = ExplainSession(
            db, method="exact",
            cache=ArtifactCache(store=PersistentArtifactStore(tmp_path)),
        )
        thread = session.explain_many(JOIN_QUERY)
        proc = session.explain_many(JOIN_QUERY, executor="process")
        assert {a: r.values for a, r in proc.items()} == {
            a: r.values for a, r in thread.items()
        }

    def test_unknown_executor_rejected(self):
        db = join_database(n_answers=2)
        with pytest.raises(ValueError, match="unknown executor"):
            ExplainSession(db, executor="gpu")
        with pytest.raises(ValueError, match="unknown executor"):
            ExplainSession(db).explain_many(JOIN_QUERY, executor="gpu")

    def test_sampling_engine_in_process_mode(self):
        db = join_database(n_answers=4)
        kwargs = dict(
            method="monte_carlo",
            options=EngineOptions(samples_per_fact=5, seed=3),
        )
        thread = ExplainSession(db, **kwargs).explain_many(JOIN_QUERY)
        proc = ExplainSession(
            db, max_workers=2, executor="process", **kwargs
        ).explain_many(JOIN_QUERY)
        assert {a: r.values for a, r in proc.items()} == {
            a: r.values for a, r in thread.items()
        }


class TestSingleCanonicalizationPass:
    def test_explain_many_signs_each_answer_once(self, monkeypatch):
        calls = {"n": 0}
        original = Circuit.structural_signature

        def counting(self, root=None):
            calls["n"] += 1
            return original(self, root)

        monkeypatch.setattr(Circuit, "structural_signature", counting)
        db = join_database(n_answers=5)
        session = ExplainSession(db, method="exact")
        results = session.explain_many(JOIN_QUERY)
        assert len(results) == 5
        # one canonicalization per answer — the session's handle rides
        # into the engine, which must not re-sign the circuit
        assert calls["n"] == 5

    def test_prebuilt_artifacts_match_cacheless_run(self):
        circuit = bipartite_join_dnf(3, 2)
        players = sorted(circuit.reachable_vars())
        cache = ArtifactCache()
        handle = cache.open(circuit)
        with_handle = run_exact(
            circuit, players, cache=cache, artifacts=handle
        )
        plain = run_exact(circuit, players)
        assert with_handle.ok and plain.ok
        assert with_handle.values == plain.values
        assert with_handle.stats.n_facts == plain.stats.n_facts
        assert with_handle.stats.circuit_size == plain.stats.circuit_size

    def test_proxy_and_hybrid_accept_prebuilt_artifacts(self):
        circuit = bipartite_join_dnf(2, 2)
        players = sorted(circuit.reachable_vars())
        cache = ArtifactCache()
        options = EngineOptions(cache=cache, artifacts=cache.open(circuit))
        proxy = get_engine("proxy").explain_circuit(circuit, players, options)
        hybrid = get_engine("hybrid").explain_circuit(circuit, players, options)
        bare = EngineOptions()
        assert proxy.values == get_engine("proxy").explain_circuit(
            circuit, players, bare
        ).values
        assert hybrid.values == get_engine("hybrid").explain_circuit(
            circuit, players, bare
        ).values


class TestStableSeeds:
    def test_batched_sampling_invariant_to_answer_order(self):
        db = join_database(n_answers=5)
        options = EngineOptions(samples_per_fact=5, seed=11)
        session = ExplainSession(db, method="monte_carlo", options=options)
        answers = list(session.explain_many(JOIN_QUERY))
        forward = session.explain_many(JOIN_QUERY, answers=answers)
        backward = session.explain_many(JOIN_QUERY, answers=answers[::-1])
        assert {a: r.values for a, r in forward.items()} == {
            a: r.values for a, r in backward.items()
        }

    def test_batched_subset_matches_full_batch(self):
        db = join_database(n_answers=6)
        options = EngineOptions(samples_per_fact=5, seed=11)
        session = ExplainSession(db, method="monte_carlo", options=options)
        full = session.explain_many(JOIN_QUERY)
        subset_answers = list(full)[1:4]
        subset = session.explain_many(JOIN_QUERY, answers=subset_answers)
        for answer in subset_answers:
            assert subset[answer].values == full[answer].values

    def test_batched_matches_single_answer_attribute(self):
        db = join_database(n_answers=4)
        options = EngineOptions(samples_per_fact=5, seed=11)
        session = ExplainSession(db, method="monte_carlo", options=options)
        batched = session.explain_many(JOIN_QUERY)
        for answer, result in batched.items():
            single = attribute(
                db, JOIN_QUERY, answer=answer, method="monte_carlo",
                samples_per_fact=5, seed=11,
            )
            assert single.values == result.values, answer

    def test_derive_answer_seed_is_stable_and_spread(self):
        a = derive_answer_seed(11, ("x0",))
        assert a == derive_answer_seed(11, ("x0",))
        assert a != derive_answer_seed(11, ("x1",))
        assert a != derive_answer_seed(12, ("x0",))


class TestDisabledStorageEvictions:
    def test_disabled_cache_counts_no_evictions(self):
        cache = ArtifactCache(max_entries=0)
        circuit = bipartite_join_dnf(2, 2)
        players = sorted(circuit.reachable_vars())
        for _ in range(3):
            run_exact(circuit, players, cache=cache)
        assert cache.stats.compile_calls == 3  # storage really disabled
        assert len(cache) == 0
        # the satellite fix: no insert-then-evict churn per open()
        assert cache.stats.evictions == 0

    def test_disabled_memory_tier_still_uses_store(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        cache = ArtifactCache(max_entries=0, store=store)
        circuit = bipartite_join_dnf(2, 2)
        players = sorted(circuit.reachable_vars())
        run_exact(circuit, players, cache=cache)
        run_exact(circuit, players, cache=cache)
        assert cache.stats.compile_calls == 1  # second run hit the disk
        assert cache.stats.evictions == 0
        assert len(cache) == 0
