"""Test package marker.

Several test modules share fixtures through relative imports
(``from .test_circuit import nested_exprs``); making ``tests/`` a
package lets pytest import them consistently under rootdir-based
collection.
"""
