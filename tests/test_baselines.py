"""Tests for the sampling baselines: Monte Carlo and Kernel SHAP."""

import random
from fractions import Fraction

import pytest

from repro.circuits import circuit_from_nested
from repro.core import (
    exact_shapley_of_circuit,
    kernel_shap_values,
    monte_carlo_shapley,
    ndcg,
)
from repro.core.monte_carlo import _prefix_gains
from repro.db import lineage
from repro.workloads.flights import fact, flights_database, flights_query


def flights_circuit():
    db = flights_database()
    plan = flights_query().to_algebra(db.schema)
    circuit = lineage(plan, db, endogenous_only=True).lineage_of(())
    return db, circuit


class TestMonteCarlo:
    def test_budget_argument_validation(self):
        _, circuit = flights_circuit()
        with pytest.raises(ValueError):
            monte_carlo_shapley(circuit, ["a"], permutations=5, samples_per_fact=5)
        with pytest.raises(ValueError):
            monte_carlo_shapley(circuit, ["a"])
        with pytest.raises(ValueError):
            monte_carlo_shapley(circuit, ["a"], permutations=0)

    def test_no_players(self):
        _, circuit = flights_circuit()
        assert monte_carlo_shapley(circuit, [], permutations=3) == {}

    def test_seeded_determinism(self):
        db, circuit = flights_circuit()
        endo = db.endogenous_facts()
        a = monte_carlo_shapley(circuit, endo, permutations=20, rng=random.Random(5))
        b = monte_carlo_shapley(circuit, endo, permutations=20, rng=random.Random(5))
        assert a == b

    def test_prefix_gains_match_direct_evaluation(self):
        db, circuit = flights_circuit()
        order = db.endogenous_facts()
        gains = _prefix_gains(circuit, order, len(order) + 1)
        for position in range(len(order)):
            before = set(order[:position])
            after = set(order[: position + 1])
            direct = int(circuit.evaluate(after)) - int(circuit.evaluate(before))
            assert gains[position] == direct

    def test_estimates_sum_to_efficiency(self):
        """Each permutation's marginals telescope, so the estimate
        always satisfies efficiency exactly."""
        db, circuit = flights_circuit()
        endo = db.endogenous_facts()
        values = monte_carlo_shapley(
            circuit, endo, permutations=7, rng=random.Random(1)
        )
        assert sum(values.values()) == pytest.approx(1.0)

    def test_convergence_on_running_example(self):
        db, circuit = flights_circuit()
        endo = db.endogenous_facts()
        exact = exact_shapley_of_circuit(circuit, endo)
        estimate = monte_carlo_shapley(
            circuit, endo, permutations=3000, rng=random.Random(0)
        )
        for f in endo:
            assert estimate[f] == pytest.approx(float(exact[f]), abs=0.03)


class TestKernelShap:
    def test_budget_argument_validation(self):
        _, circuit = flights_circuit()
        with pytest.raises(ValueError):
            kernel_shap_values(circuit, ["a", "b"], samples=10, samples_per_fact=5)
        with pytest.raises(ValueError):
            kernel_shap_values(circuit, ["a", "b"])
        with pytest.raises(ValueError):
            kernel_shap_values(circuit, ["a", "b"], samples=0)

    def test_no_players(self):
        _, circuit = flights_circuit()
        assert kernel_shap_values(circuit, [], samples=4) == {}

    def test_single_player_is_exact(self):
        circuit = circuit_from_nested("x")
        values = kernel_shap_values(circuit, ["x"], samples=1)
        assert values == {"x": 1.0}

    def test_two_players_exact_by_constraints(self):
        # With n=2 the constrained regression has a single coalition
        # size, so the result is exact for the AND game: 1/2 each.
        circuit = circuit_from_nested(("and", "x", "y"))
        values = kernel_shap_values(
            circuit, ["x", "y"], samples=20, rng=random.Random(0)
        )
        assert values["x"] == pytest.approx(0.5)
        assert values["y"] == pytest.approx(0.5)

    def test_efficiency_constraint_holds(self):
        db, circuit = flights_circuit()
        endo = db.endogenous_facts()
        values = kernel_shap_values(
            circuit, endo, samples_per_fact=10, rng=random.Random(3)
        )
        assert sum(values.values()) == pytest.approx(1.0)

    def test_seeded_determinism(self):
        db, circuit = flights_circuit()
        endo = db.endogenous_facts()
        a = kernel_shap_values(circuit, endo, samples=100, rng=random.Random(9))
        b = kernel_shap_values(circuit, endo, samples=100, rng=random.Random(9))
        assert a == b

    def test_quality_on_running_example(self):
        db, circuit = flights_circuit()
        endo = db.endogenous_facts()
        exact = exact_shapley_of_circuit(circuit, endo)
        estimate = kernel_shap_values(
            circuit, endo, samples_per_fact=200, rng=random.Random(2)
        )
        truth = {f: float(v) for f, v in exact.items()}
        assert ndcg(truth, estimate) > 0.97
        # the top fact is identified
        top = max(estimate, key=estimate.get)
        assert top == fact("a1")
