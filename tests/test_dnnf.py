"""Tests for d-DNNF algorithms: counting, WMC, smoothing, Lemma 4.6,
and the .nnf format."""

from fractions import Fraction
from math import comb

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    check_decision_form,
    check_decomposable,
    check_deterministic_exhaustive,
    circuit_from_nested,
    complete_counts,
    count_models_by_size,
    eliminate_auxiliary,
    enumerate_models,
    from_nnf_text,
    model_count,
    probability,
    smooth,
    to_nnf_text,
    tseytin_transform,
    weighted_model_count,
)
from repro.compiler import compile_cnf

from .test_circuit import nested_exprs

VARS = ["a", "b", "c", "d"]


def compiled(expr):
    """Compile a nested expression into a clean d-DNNF over its vars."""
    circuit = circuit_from_nested(expr)
    cnf = tseytin_transform(circuit)
    result = compile_cnf(cnf)
    return circuit, eliminate_auxiliary(result.circuit, set(cnf.labels.values()))


def brute_counts(circuit, over):
    counts = [0] * (len(over) + 1)
    for model in enumerate_models(circuit, over=over):
        counts[len(model)] += 1
    return counts


def example_ddnnf():
    """A hand-built decision-DNNF: (x & y) | (!x & z)."""
    c = Circuit()
    x, y, z = c.var("x"), c.var("y"), c.var("z")
    c.output = c.or_((c.and_((x, y)), c.and_((c.not_(x), z))))
    return c


class TestChecks:
    def test_decomposable_positive(self):
        assert check_decomposable(example_ddnnf())

    def test_decomposable_negative(self):
        c = Circuit()
        x, y = c.var("x"), c.var("y")
        c.output = c.and_((c.or_((x, y)), c.or_((x, c.not_(y)))))
        assert not check_decomposable(c)

    def test_deterministic_exhaustive_positive(self):
        assert check_deterministic_exhaustive(example_ddnnf())

    def test_deterministic_exhaustive_negative(self):
        c = Circuit()
        c.output = c.raw_or((c.var("x"), c.var("y")))
        assert not check_deterministic_exhaustive(c)

    def test_deterministic_limit(self):
        c = Circuit()
        c.output = c.raw_or(
            (
                c.and_([c.var(f"v{i}") for i in range(12)]),
                c.and_([c.not_(c.var(f"v{i}")) for i in range(12)]),
            )
        )
        with pytest.raises(ValueError):
            check_deterministic_exhaustive(c, limit=5)

    def test_decision_form(self):
        assert check_decision_form(example_ddnnf())
        c = Circuit()
        c.output = c.raw_or((c.var("x"), c.var("y")))
        assert not check_decision_form(c)


class TestCounting:
    def test_example_counts(self):
        c = example_ddnnf()
        counts, nvars = count_models_by_size(c)
        assert nvars == 3
        # Models: {x,y}, {x,y,z}, {z}, {y,z}
        assert counts == [0, 1, 2, 1]

    def test_constant_true_gate(self):
        c = Circuit()
        c.output = c.true()
        counts, nvars = count_models_by_size(c)
        assert (counts, nvars) == ([1], 0)

    def test_complete_counts_binomial(self):
        # TRUE over 0 vars completed to 3 free vars: C(3, k)
        assert complete_counts([1], 3) == [1, 3, 3, 1]

    def test_complete_counts_zero_extra(self):
        assert complete_counts([0, 2, 1], 0) == [0, 2, 1]

    def test_complete_counts_negative(self):
        with pytest.raises(ValueError):
            complete_counts([1], -1)

    def test_complete_counts_matches_literal_completion(self):
        """Binomial completion == conjoining (v | !v) gates (Alg. 1
        line 1 done literally)."""
        c = example_ddnnf()
        counts, _ = count_models_by_size(c)
        extra = 2
        literal = Circuit()
        x, y, z = literal.var("x"), literal.var("y"), literal.var("z")
        base = literal.or_(
            (literal.and_((x, y)), literal.and_((literal.not_(x), z)))
        )
        pads = []
        for name in ("p1", "p2"):
            v = literal.var(name)
            pads.append(literal.raw_or((v, literal.not_(v))))
        literal.output = literal.raw_and((base, *pads))
        literal_counts, _ = count_models_by_size(literal)
        assert complete_counts(counts, extra) == literal_counts

    def test_model_count(self):
        assert model_count(example_ddnnf()) == 4

    @given(nested_exprs())
    @settings(max_examples=60, deadline=None)
    def test_counts_match_brute_force(self, expr):
        source, ddnnf = compiled(expr)
        over = sorted(ddnnf.reachable_vars())
        root_kind = ddnnf.kind(ddnnf.output_gate())
        if root_kind.name in ("TRUE", "FALSE"):
            return
        counts, nvars = count_models_by_size(ddnnf)
        assert nvars == len(over)
        assert counts == brute_counts(source, over)


class TestWeightedCounting:
    def test_uniform_weights_give_model_count(self):
        c = example_ddnnf()
        weights = {v: (1, 1) for v in "xyz"}
        assert weighted_model_count(c, weights) == 4

    def test_probability_example(self):
        c = example_ddnnf()
        p = {v: Fraction(1, 2) for v in "xyz"}
        assert probability(c, p) == Fraction(4, 8)

    def test_biased_probability(self):
        c = example_ddnnf()
        p = {"x": Fraction(1), "y": Fraction(1, 3), "z": Fraction(1, 7)}
        # With x certain: answer = P(y) = 1/3.
        assert probability(c, p) == Fraction(1, 3)

    @given(
        nested_exprs(),
        st.tuples(*[st.integers(0, 4) for _ in range(4)]),
    )
    @settings(max_examples=60, deadline=None)
    def test_wmc_matches_enumeration(self, expr, numerators):
        source, ddnnf = compiled(expr)
        over = sorted(ddnnf.reachable_vars())
        if not over:
            return
        probs = {
            v: Fraction(numerators[i % 4], 4) for i, v in enumerate(over)
        }
        expected = Fraction(0)
        for mask in range(1 << len(over)):
            chosen = {over[i] for i in range(len(over)) if mask >> i & 1}
            if source.evaluate(chosen):
                weight = Fraction(1)
                for v in over:
                    weight *= probs[v] if v in chosen else 1 - probs[v]
                expected += weight
        assert probability(ddnnf, probs) == expected


class TestSmoothing:
    def test_smooth_preserves_counts(self):
        c = Circuit()
        x, y = c.var("x"), c.var("y")
        # OR with a gap: x | (x? no) -- use x | (y & !x) variant w/ gap:
        c.output = c.or_((c.and_((x, y)), c.not_(x)))
        smoothed = smooth(c)
        assert count_models_by_size(smoothed) == count_models_by_size(c)

    def test_smooth_or_children_cover_gate_vars(self):
        c = Circuit()
        x, y = c.var("x"), c.var("y")
        c.output = c.or_((c.and_((x, y)), c.not_(x)))
        smoothed = smooth(c)
        sets = smoothed.gate_var_sets()
        for gate in sets:
            if smoothed.kind(gate).name == "OR":
                for child in smoothed.children(gate):
                    assert sets[child] == sets[gate]

    def test_smooth_extends_to_target_vars(self):
        c = Circuit()
        c.output = c.var("x")
        smoothed = smooth(c, target_vars=["x", "extra1", "extra2"])
        counts, nvars = count_models_by_size(smoothed)
        assert nvars == 3
        assert sum(counts) == 4  # x * 2^2

    @given(nested_exprs(), st.sets(st.sampled_from(VARS)))
    @settings(max_examples=60, deadline=None)
    def test_smooth_equivalence(self, expr, assignment):
        _, ddnnf = compiled(expr)
        if ddnnf.kind(ddnnf.output_gate()).name in ("TRUE", "FALSE"):
            return
        smoothed = smooth(ddnnf)
        assert smoothed.evaluate(assignment) == ddnnf.evaluate(assignment)


class TestEliminateAuxiliary:
    @given(nested_exprs(), st.sets(st.sampled_from(VARS)))
    @settings(max_examples=80, deadline=None)
    def test_projection_correct(self, expr, assignment):
        circuit = circuit_from_nested(expr)
        cnf = tseytin_transform(circuit)
        compiled_result = compile_cnf(cnf)
        cleaned = eliminate_auxiliary(
            compiled_result.circuit, set(cnf.labels.values())
        )
        assert cleaned.evaluate(assignment) == circuit.evaluate(assignment)

    @given(nested_exprs())
    @settings(max_examples=60, deadline=None)
    def test_result_stays_deterministic_and_decomposable(self, expr):
        circuit = circuit_from_nested(expr)
        cnf = tseytin_transform(circuit)
        cleaned = eliminate_auxiliary(
            compile_cnf(cnf).circuit, set(cnf.labels.values())
        )
        assert check_decomposable(cleaned)
        if len(cleaned.reachable_vars()) <= 8:
            assert check_deterministic_exhaustive(cleaned, limit=8)


class TestNnfFormat:
    def test_roundtrip_counts(self):
        _, ddnnf = compiled(("or", ("and", "a", "b"), ("and", "c", "d")))
        text, labels = to_nnf_text(ddnnf)
        back = from_nnf_text(text, labels)
        assert model_count(back) == model_count(ddnnf)

    def test_header(self):
        _, ddnnf = compiled(("and", "a", "b"))
        text, _ = to_nnf_text(ddnnf)
        assert text.startswith("nnf ")

    def test_parse_constants(self):
        text = "nnf 2 0 0\nA 0\nO 0 0\n"
        circuit = from_nnf_text(text)
        assert circuit.kind(circuit.output_gate()).name == "FALSE"

    def test_default_labels(self):
        text = "nnf 1 0 1\nL 1\n"
        circuit = from_nnf_text(text)
        assert circuit.reachable_vars() == {("v", 1)}

    def test_bad_header(self):
        with pytest.raises(Exception):
            from_nnf_text("dnf 1 0 1\nL 1\n")


class TestEnumerateModels:
    def test_limit(self):
        c = Circuit()
        c.output = c.and_([c.var(f"x{i}") for i in range(30)])
        with pytest.raises(ValueError):
            list(enumerate_models(c))

    def test_known_models(self):
        c = example_ddnnf()
        models = set(enumerate_models(c))
        assert frozenset({"z"}) in models
        assert len(models) == 4
