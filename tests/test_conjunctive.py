"""Tests for conjunctive queries: parsing, hierarchy test, algebra
translation."""

import pytest

from repro.db import (
    Atom,
    BooleanSemiring,
    ConjunctiveQuery,
    Database,
    RelationSchema,
    Schema,
    UnionOfConjunctiveQueries,
    Var,
    cq,
    evaluate,
    parse_atom,
)


def schema_rst():
    return Schema.of(
        RelationSchema.of("R", "a"),
        RelationSchema.of("S", "a", "b"),
        RelationSchema.of("T", "b"),
    )


class TestParsing:
    def test_parse_atom_variables(self):
        atom = parse_atom("S(x, y)")
        assert atom.relation == "S"
        assert atom.terms == (Var("x"), Var("y"))

    def test_parse_atom_constants(self):
        atom = parse_atom("S('paris', 3)")
        assert atom.terms == ("paris", 3)

    def test_parse_atom_float(self):
        atom = parse_atom("R(1.5)")
        assert atom.terms == (1.5,)

    def test_parse_atom_malformed(self):
        with pytest.raises(ValueError):
            parse_atom("S(x")

    def test_cq_builder(self):
        q = cq(["x"], "R(x)", "S(x, y)")
        assert q.head == (Var("x"),)
        assert len(q.atoms) == 2

    def test_cq_boolean(self):
        q = cq(None, "R(x)")
        assert q.is_boolean


class TestStructure:
    def test_variables(self):
        q = cq(None, "R(x)", "S(x, y)")
        assert q.variables() == {Var("x"), Var("y")}
        assert q.existential_variables() == {Var("x"), Var("y")}

    def test_head_not_existential(self):
        q = cq(["x"], "S(x, y)")
        assert q.existential_variables() == {Var("y")}

    def test_self_join_free(self):
        assert cq(None, "R(x)", "S(x, y)").is_self_join_free()
        assert not cq(None, "S(x, y)", "S(y, z)").is_self_join_free()

    def test_hierarchical_positive(self):
        # at(x) = {R, S} contains at(y) = {S}
        assert cq(None, "R(x)", "S(x, y)").is_hierarchical()

    def test_hierarchical_negative_classic(self):
        # The canonical non-hierarchical query R(x), S(x,y), T(y).
        assert not cq(None, "R(x)", "S(x, y)", "T(y)").is_hierarchical()

    def test_hierarchical_depends_on_head(self):
        # The hierarchy condition only constrains existential variables,
        # so freeing either variable of the hard pattern makes it
        # hierarchical (the standard definition for non-Boolean CQs).
        assert cq(["x"], "R(x)", "S(x, y)", "T(y)").is_hierarchical()
        assert cq(["y"], "R(x)", "S(x, y)", "T(y)").is_hierarchical()
        assert cq(["x", "y"], "R(x)", "S(x, y)", "T(y)").is_hierarchical()


class TestToAlgebra:
    def db(self):
        db = Database(schema_rst())
        db.add("R", 1)
        db.add("R", 2)
        db.add("S", 1, 10)
        db.add("S", 2, 20)
        db.add("S", 3, 30)
        db.add("T", 10)
        return db

    def test_boolean_query_true(self):
        q = cq(None, "R(x)", "S(x, y)", "T(y)")
        plan = q.to_algebra(schema_rst())
        rel = evaluate(plan, self.db(), BooleanSemiring())
        assert list(rel.rows) == [()]

    def test_head_projection(self):
        q = cq(["x"], "R(x)", "S(x, y)")
        rel = evaluate(q.to_algebra(schema_rst()), self.db(), BooleanSemiring())
        assert sorted(rel.tuples()) == [(1,), (2,)]

    def test_constant_selection(self):
        q = cq(["y"], "S(1, y)")
        rel = evaluate(q.to_algebra(schema_rst()), self.db(), BooleanSemiring())
        assert rel.tuples() == [(10,)]

    def test_repeated_variable_in_atom(self):
        schema = Schema.of(RelationSchema.of("E", "u", "v"))
        db = Database(schema)
        db.add("E", 1, 1)
        db.add("E", 1, 2)
        q = cq(["x"], "E(x, x)")
        rel = evaluate(q.to_algebra(schema), db, BooleanSemiring())
        assert rel.tuples() == [(1,)]

    def test_self_join(self):
        schema = Schema.of(RelationSchema.of("E", "u", "v"))
        db = Database(schema)
        db.add("E", 1, 2)
        db.add("E", 2, 3)
        q = cq(["x", "z"], "E(x, y)", "E(y, z)")
        rel = evaluate(q.to_algebra(schema), db, BooleanSemiring())
        assert rel.tuples() == [(1, 3)]

    def test_cross_product_when_disconnected(self):
        q = cq(None, "R(x)", "T(y)")
        rel = evaluate(q.to_algebra(schema_rst()), self.db(), BooleanSemiring())
        assert list(rel.rows) == [()]

    def test_unbound_head_variable(self):
        q = ConjunctiveQuery((Var("zzz"),), (Atom("R", (Var("x"),)),))
        with pytest.raises(ValueError):
            q.to_algebra(schema_rst())

    def test_arity_mismatch(self):
        q = cq(None, "R(x, y)")
        with pytest.raises(ValueError):
            q.to_algebra(schema_rst())

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((), ()).to_algebra(schema_rst())


class TestUcq:
    def test_union_evaluation(self):
        q = UnionOfConjunctiveQueries.of(cq(["x"], "R(x)"), cq(["a"], "S(a, b)"))
        db = Database(schema_rst())
        db.add("R", 1)
        db.add("S", 7, 70)
        rel = evaluate(q.to_algebra(schema_rst()), db, BooleanSemiring())
        assert sorted(rel.tuples()) == [(1,), (7,)]

    def test_arity_check(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries.of(cq(["x"], "R(x)"), cq(None, "R(x)"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries.of()

    def test_single_disjunct_no_union_node(self):
        q = UnionOfConjunctiveQueries.of(cq(["x"], "R(x)"))
        plan = q.to_algebra(schema_rst())
        assert "Union" not in repr(plan)

    def test_repr(self):
        q = UnionOfConjunctiveQueries.of(cq(None, "R(x)"), cq(None, "T(y)"))
        assert "∨" in repr(q)
