"""Tests for the cross-shape sub-circuit memoization layer (the PR 6
cold-path tier): rename-invariant canonical component signatures, their
stability under hash randomization and parallel compilation, cross-shape
memo hits with identical Shapley values, and robustness of the ``.comp``
store tier (corruption fallback, scheme bumps, concurrent writers +
per-kind GC)."""

import json
import os
import subprocess
import sys
import threading
import time
from fractions import Fraction
from pathlib import Path

import pytest

from repro.circuits import eliminate_auxiliary, tseytin_transform
from repro.circuits.circuit import Circuit
from repro.circuits.cnf import Cnf
from repro.compiler.knowledge import (
    COMPONENT_SCHEME,
    MEMO_MIN_COMPONENT_VARS,
    _canonical,
    _connected_components,
    _propagate,
    canonical_component,
    compile_cnf,
)
from repro.core import shapley_all_facts
from repro.engine import ArtifactCache, PersistentArtifactStore
from repro.engine.store import signature_digest
from repro.workloads.synthetic import shared_block_circuits

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def shared_pair(**overrides):
    """Two circuits sharing all but one isomorphic block (distinct
    whole shapes)."""
    kwargs = dict(
        n_blocks=3, block_vars=10, block_terms=5, term_width=3, seed=0
    )
    kwargs.update(overrides)
    return shared_block_circuits(2, **kwargs)


def compile_shape(circuit, **kwargs):
    """``(ddnnf, players, stats)`` of one lineage circuit through the
    full Figure 3 path (Tseytin, CNF compile, auxiliary elimination)."""
    cnf = tseytin_transform(circuit)
    result = compile_cnf(cnf, **kwargs)
    ddnnf = eliminate_auxiliary(result.circuit, set(cnf.labels.values()))
    return ddnnf, sorted(ddnnf.reachable_vars(), key=repr), result.stats


def top_level_component_keys(circuit):
    """Canonical digests of the memo-eligible top-level components of a
    circuit's Tseytin CNF — the keys the cross-run memo would use."""
    cnf = tseytin_transform(circuit)
    _, residual, conflict = _propagate(tuple(cnf.clauses), {})
    assert not conflict
    keys = set()
    for comp in _connected_components(residual):
        variables = {abs(lit) for clause in comp for lit in clause}
        if len(variables) >= MEMO_MIN_COMPONENT_VARS:
            keys.add(signature_digest(canonical_component(comp)[0]))
    return keys


class TestCanonicalComponent:
    def test_rename_invariance(self):
        clauses = ((1, 2, 3), (-1, 4), (2, -4, 5), (-5, 6), (3, 6, 7), (1, -7, 8))
        perm = {1: 8, 2: 3, 3: 5, 4: 1, 5: 7, 6: 2, 7: 6, 8: 4}
        renamed = tuple(
            tuple(perm[abs(lit)] * (1 if lit > 0 else -1) for lit in clause)
            for clause in clauses
        )
        canon_a, order_a = canonical_component(clauses)
        canon_b, order_b = canonical_component(renamed)
        assert canon_a == canon_b
        # ``order[i]`` names the original variable renamed to ``i + 1``
        assert sorted(order_a) == sorted(
            {abs(lit) for clause in clauses for lit in clause}
        )
        assert sorted(order_b) == sorted(
            {abs(lit) for clause in renamed for lit in clause}
        )
        # the two orders express one literal isomorphism: mapping the
        # original clauses through order_a[i] -> order_b[i] reproduces
        # the renamed clause set
        mapping = dict(zip(order_a, order_b))
        mapped = tuple(
            tuple(mapping[abs(lit)] * (1 if lit > 0 else -1) for lit in clause)
            for clause in clauses
        )
        assert _canonical(mapped) == _canonical(renamed)

    def test_different_structures_get_different_forms(self):
        path = ((1, 2), (2, 3), (3, 4))
        triangle = ((1, 2), (2, 3), (1, 3))
        assert canonical_component(path)[0] != canonical_component(triangle)[0]

    def test_consecutive_shared_circuits_share_block_keys(self):
        a, b = shared_pair()
        keys_a = top_level_component_keys(a)
        keys_b = top_level_component_keys(b)
        # variable labels are disjoint across circuits, so any overlap
        # is purely structural: all but one of the 3 blocks is shared
        assert len(keys_a) == len(keys_b) == 3
        assert len(keys_a & keys_b) == 2


_SEED_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.circuits import tseytin_transform
from repro.compiler.knowledge import (
    _connected_components, _propagate, canonical_component, compile_cnf,
)
from repro.engine.store import signature_digest
from repro.workloads.synthetic import shared_block_circuits

circuit = shared_block_circuits(
    1, n_blocks=3, block_vars=9, block_terms=4, term_width=3, seed=7
)[0]
cnf = tseytin_transform(circuit)
serial = compile_cnf(cnf)
parallel = compile_cnf(cnf, jobs=4)
_, residual, _ = _propagate(tuple(cnf.clauses), {{}})
keys = sorted(
    signature_digest(canonical_component(comp)[0])
    for comp in _connected_components(residual)
)
print(json.dumps({{
    "serial": signature_digest(serial.circuit.structural_signature()[0]),
    "parallel": signature_digest(parallel.circuit.structural_signature()[0]),
    "component_keys": keys,
}}))
"""


class TestSelectionStability:
    """Satellite (c): variable-selection tie-breaking must not depend on
    Python's randomized hashing or on the thread pool."""

    def test_signatures_stable_across_hash_seeds_and_jobs(self):
        outputs = []
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            proc = subprocess.run(
                [sys.executable, "-c", _SEED_SCRIPT.format(src=SRC_DIR)],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(json.loads(proc.stdout.strip().splitlines()[-1]))
        for payload in outputs:
            # parallel compile is byte-identical to serial
            assert payload["serial"] == payload["parallel"]
        # every hash seed produced the same circuit and the same
        # canonical component keys
        assert outputs[0] == outputs[1] == outputs[2]

    def test_parallel_compile_matches_serial_counters_and_signature(self):
        circuit = shared_block_circuits(
            1, n_blocks=4, block_vars=10, block_terms=5, term_width=3, seed=3
        )[0]
        cnf = tseytin_transform(circuit)
        serial = compile_cnf(cnf)
        parallel = compile_cnf(cnf, jobs=4)
        assert (
            serial.circuit.structural_signature()
            == parallel.circuit.structural_signature()
        )
        for field in (
            "component_hits", "component_misses", "component_compilations"
        ):
            assert getattr(serial.stats, field) == getattr(
                parallel.stats, field
            ), field


class TestCrossShapeMemo:
    def test_second_shape_stitches_from_the_first(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        cache = ArtifactCache(store=store)
        a, b = shared_pair()
        cache.open(a).ddnnf()
        assert cache.stats.component_compilations == 3
        assert cache.stats.component_hits == 0
        cache.open(b).ddnnf()
        # the two shared blocks hit; only the fresh block compiles
        assert cache.stats.component_hits == 2
        assert cache.stats.component_compilations == 4
        assert store.kind_summary()["comp"]["files"] == 4

    def test_memoized_values_identical_to_inline_baseline(self, tmp_path):
        a, b = shared_pair(n_blocks=2, block_vars=8, block_terms=4)
        cache = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        memo = cache.component_memo()
        cnf_b = tseytin_transform(b)
        keep = set(cnf_b.labels.values())

        baseline = compile_cnf(cnf_b, memoize_components=False)
        cold = compile_cnf(cnf_b)  # run-local memo
        compile_cnf(tseytin_transform(a), memo=memo)  # warm the store
        warm = compile_cnf(cnf_b, memo=memo)
        assert warm.stats.component_hits > 0

        # warm and cold memoized compiles are byte-identical
        assert (
            cold.circuit.structural_signature()
            == warm.circuit.structural_signature()
        )
        # and every path yields the same exact Shapley values
        values = []
        for result in (baseline, cold, warm):
            ddnnf = eliminate_auxiliary(result.circuit, keep)
            players = sorted(ddnnf.reachable_vars(), key=repr)
            values.append(shapley_all_facts(ddnnf, players))
        assert values[0] == values[1] == values[2]
        assert all(
            isinstance(v, Fraction) for v in values[0].values()
        )

    def test_small_components_bypass_the_memo(self, tmp_path):
        cache = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        cnf = Cnf(4, [(1, 2), (3, 4)], labels={i: f"x{i}" for i in (1, 2, 3, 4)})
        compile_cnf(cnf, memo=cache.component_memo())
        stats = cache.stats
        assert (
            stats.component_hits
            + stats.component_misses
            + stats.component_compilations
        ) == 0
        assert cache.stats_dict()["store_writes"] == 0

    def test_component_min_vars_knob_lowers_the_bar(self, tmp_path):
        cache = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        cnf = Cnf(4, [(1, 2), (3, 4)], labels={i: f"x{i}" for i in (1, 2, 3, 4)})
        compile_cnf(cnf, memo=cache.component_memo(), component_min_vars=2)
        assert cache.stats.component_compilations == 1  # one per template
        assert cache.stats.component_hits == 1  # isomorphic twin stitched


def small_component(extra_vars: int = 0) -> Circuit:
    """A tiny canonical component circuit (labels are canonical ints)."""
    circuit = Circuit()
    gates = [circuit.var(i + 1) for i in range(2 + extra_vars)]
    circuit.output = circuit.and_(gates)
    return circuit


class TestComponentStoreRobustness:
    """Satellite (d): the ``.comp`` tier must degrade to recompilation,
    never to wrong answers."""

    def comp_paths(self, directory):
        return sorted(Path(directory).glob("*.comp"))

    def test_truncated_comp_falls_back_to_recompile(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        cache = ArtifactCache(store=store)
        circuit = shared_pair()[0]
        baseline = cache.open(circuit).ddnnf()
        comp_files = self.comp_paths(tmp_path)
        assert len(comp_files) == 3
        # wipe the whole-shape artifacts, truncate every component
        for path in Path(tmp_path).iterdir():
            if path.suffix in (".cnf", ".dnnf", ".tape"):
                path.unlink()
        for path in comp_files:
            path.write_bytes(path.read_bytes()[:25])

        fresh = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        again = fresh.open(circuit).ddnnf()
        assert again.structural_signature() == baseline.structural_signature()
        merged = fresh.stats_dict()
        assert merged["store_corruptions"] == 3
        assert merged["component_hits"] == 0
        assert merged["component_compilations"] == 3
        # corrupt files were dropped, fresh ones written back
        for path in self.comp_paths(tmp_path):
            assert path.stat().st_size > 25

    def test_garbage_payload_is_a_corruption_not_a_crash(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        key = ((1, 2), (-1,))
        store.store_component(key, small_component())
        path = store.path_for(key, "comp")
        blob = path.read_bytes()
        header, _, _ = blob.partition(b"\n")
        path.write_bytes(header + b"\n" + b'{"not": "a circuit"}')
        assert store.load_component(key) is None
        assert store.stats.corruptions == 1
        assert not path.exists()

    def test_scheme_bump_is_a_clean_miss(self, tmp_path, monkeypatch):
        store = PersistentArtifactStore(tmp_path)
        key = ((1, 2), (-1,))
        store.store_component(key, small_component())
        assert store.load_component(key) is not None
        monkeypatch.setattr(
            "repro.engine.store.COMPONENT_SCHEME", COMPONENT_SCHEME + 1
        )
        misses = store.stats.misses
        assert store.load_component(key) is None
        assert store.stats.misses == misses + 1
        assert store.stats.corruptions == 0
        # the artifact survives: it is valid for the scheme that wrote it
        assert store.path_for(key, "comp").exists()

    def test_kind_budget_and_ttl_gc_the_comp_tier(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        for i in range(4):
            store.store_component(((100 + i, i),), small_component())
        store.store_cnf(((1, 2),), Cnf(2, [(1, 2)], labels={1: "a"}))
        for i in range(4):
            path = store.path_for(((100 + i, i),), "comp")
            os.utime(path, (1000 + i, 1000 + i))
        size = store.path_for(((100, 0),), "comp").stat().st_size
        report = store.gc(kind_budgets={"comp": 2 * size})
        assert report.evicted == 2
        summary = store.kind_summary()
        assert summary["comp"]["files"] == 2
        assert summary["cnf"]["files"] == 1  # other kinds untouched
        # the survivors are the most recently used components
        assert store.load_component(((103, 3),)) is not None
        assert store.load_component(((100, 0),)) is None
        # an age pass clears everything, comp and cnf alike
        store.gc(max_age_seconds=0.0)
        assert len(store) == 0


_COMP_WRITER_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.circuits.circuit import Circuit
from repro.engine import PersistentArtifactStore

directory, budget, ident, count = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
)
store = PersistentArtifactStore(
    directory, kind_budgets={{"comp": budget}}
)


def component(i):
    circuit = Circuit()
    gates = [circuit.var(v + 1) for v in range(2 + i % 3)]
    circuit.output = circuit.and_(gates)
    return circuit


torn = 0
for i in range(count):
    key = ((ident, i),)
    circuit = component(i)
    store.store_component(key, circuit)
    loaded = store.load_component(key)  # may be evicted, never torn
    if loaded is not None and loaded.to_payload() != circuit.to_payload():
        torn += 1
print(json.dumps({{
    "writes": store.stats.writes,
    "write_failures": store.stats.write_failures,
    "corruptions": store.stats.corruptions,
    "evictions": store.stats.evictions,
    "torn": torn,
}}))
"""


class TestComponentStoreStress:
    def test_concurrent_comp_writers_survive_kind_budget_gc(self, tmp_path):
        """Three processes hammer the ``comp`` tier of one store whose
        per-kind budget forces eviction on write, while this process
        reads a hot component and runs explicit GC passes: no torn or
        corrupt reads anywhere, the hot component survives, and the
        tier ends under budget."""
        directory = tmp_path / "shared"
        hot = PersistentArtifactStore(directory)
        hot_key = ((9999, 0),)
        hot_circuit = small_component(extra_vars=1)
        hot.store_component(hot_key, hot_circuit)
        probe_size = hot.path_for(hot_key, "comp").stat().st_size
        budget = 60 * probe_size

        script = _COMP_WRITER_SCRIPT.format(src=SRC_DIR)
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", script,
                 str(directory), str(budget), str(ident), "25"],
                stdout=subprocess.PIPE, text=True,
            )
            for ident in range(3)
        ]
        bad_hot = 0
        while any(writer.poll() is None for writer in writers):
            loaded = hot.load_component(hot_key)  # refreshes its mtime
            if (
                loaded is None
                or loaded.to_payload() != hot_circuit.to_payload()
            ):
                bad_hot += 1
            hot.gc(kind_budgets={"comp": budget})
            time.sleep(0.002)
        reports = []
        for writer in writers:
            out, _ = writer.communicate(timeout=60)
            assert writer.returncode == 0, out
            reports.append(json.loads(out.strip().splitlines()[-1]))

        assert all(r["corruptions"] == 0 for r in reports), reports
        assert all(r["torn"] == 0 for r in reports), reports
        assert all(r["write_failures"] == 0 for r in reports), reports
        assert hot.stats.corruptions == 0
        assert sum(r["evictions"] for r in reports) + hot.stats.evictions > 0
        assert bad_hot == 0
        final = hot.load_component(hot_key)
        assert final is not None
        assert final.to_payload() == hot_circuit.to_payload()
        report = hot.gc(kind_budgets={"comp": budget})
        assert report.remaining_bytes <= budget
