"""Tests for schemas, facts, and databases."""

import pytest

from repro.db import Database, Fact, RelationSchema, Schema, SchemaError
from repro.db.schema import Attribute


def simple_schema():
    return Schema.of(
        RelationSchema.of("R", ("a", int), ("b", str)),
        RelationSchema.of("S", "x"),
    )


class TestSchema:
    def test_relation_lookup(self):
        schema = simple_schema()
        assert schema.relation("R").arity == 2
        assert "S" in schema
        assert "T" not in schema

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            simple_schema().relation("T")

    def test_duplicate_relation(self):
        schema = simple_schema()
        with pytest.raises(SchemaError):
            schema.add(RelationSchema.of("R", "z"))

    def test_attribute_type_validation(self):
        attr = Attribute("a", int)
        attr.validate(3)
        with pytest.raises(SchemaError):
            attr.validate("x")

    def test_untyped_attribute_accepts_anything(self):
        Attribute("a").validate(object())

    def test_arity_validation(self):
        schema = simple_schema()
        with pytest.raises(SchemaError):
            schema.relation("R").validate((1,))

    def test_position(self):
        rel = simple_schema().relation("R")
        assert rel.position("b") == 1
        with pytest.raises(SchemaError):
            rel.position("zzz")

    def test_attribute_names(self):
        assert simple_schema().relation("R").attribute_names == ("a", "b")


class TestFact:
    def test_equality_and_hash(self):
        f1 = Fact("R", (1, "x"))
        f2 = Fact("R", (1, "x"))
        f3 = Fact("R", (2, "x"))
        assert f1 == f2 and hash(f1) == hash(f2)
        assert f1 != f3

    def test_repr(self):
        assert repr(Fact("R", (1, "x"))) == "R(1, 'x')"

    def test_ordering_is_stable(self):
        facts = [Fact("R", (2,)), Fact("R", (1,)), Fact("Q", (9,))]
        ordered = sorted(facts)
        assert ordered[0].relation == "Q"

    def test_mixed_type_ordering(self):
        # must not raise even with incomparable value types
        sorted([Fact("R", (1,)), Fact("R", ("a",))])


class TestDatabase:
    def test_add_and_contains(self):
        db = Database(simple_schema())
        fact = db.add("R", 1, "x")
        assert fact in db
        assert len(db) == 1

    def test_add_validates(self):
        db = Database(simple_schema())
        with pytest.raises(SchemaError):
            db.add("R", "not-int", "x")

    def test_set_semantics(self):
        db = Database(simple_schema())
        db.add("R", 1, "x")
        db.add("R", 1, "x")
        assert len(db) == 1

    def test_reinsert_updates_endogenous_status(self):
        db = Database(simple_schema())
        fact = db.add("R", 1, "x", endogenous=True)
        db.add("R", 1, "x", endogenous=False)
        assert not db.is_endogenous(fact)

    def test_endo_exo_partition(self):
        db = Database(simple_schema())
        e = db.add("R", 1, "x", endogenous=True)
        x = db.add("R", 2, "y", endogenous=False)
        assert db.endogenous_facts() == [e]
        assert db.exogenous_facts() == [x]

    def test_mark_relation(self):
        db = Database(simple_schema())
        db.add("R", 1, "x")
        db.add("R", 2, "y")
        db.mark_relation("R", endogenous=False)
        assert db.endogenous_facts() == []

    def test_set_endogenous_unknown_fact(self):
        db = Database(simple_schema())
        with pytest.raises(SchemaError):
            db.set_endogenous(Fact("R", (1, "x")), True)

    def test_remove(self):
        db = Database(simple_schema())
        fact = db.add("R", 1, "x")
        db.remove(fact)
        assert fact not in db
        with pytest.raises(SchemaError):
            db.remove(fact)

    def test_restrict_endogenous(self):
        db = Database(simple_schema())
        e1 = db.add("R", 1, "a", endogenous=True)
        e2 = db.add("R", 2, "b", endogenous=True)
        x = db.add("S", "keep", endogenous=False)
        world = db.restrict_endogenous({e1})
        assert e1 in world and x in world and e2 not in world
        # original untouched
        assert e2 in db

    def test_copy_independent(self):
        db = Database(simple_schema())
        fact = db.add("R", 1, "x")
        clone = db.copy()
        clone.remove(fact)
        assert fact in db and fact not in clone

    def test_relation_listing(self):
        db = Database(simple_schema())
        db.add("R", 1, "x")
        db.add("S", "v")
        assert len(db.relation("R")) == 1
        assert [f.relation for f in db.facts()] == ["R", "S"]

    def test_add_many(self):
        db = Database(simple_schema())
        facts = db.add_many("S", [("a",), ("b",)])
        assert len(facts) == 2 and len(db) == 2

    def test_repr(self):
        db = Database(simple_schema())
        assert "Database(" in repr(db)
