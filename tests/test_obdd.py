"""Tests for the OBDD backend (alternative d-D compilation target)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    check_decomposable,
    check_deterministic_exhaustive,
    circuit_from_nested,
    model_count,
)
from repro.compiler import (
    BudgetExceeded,
    CompilationBudget,
    Obdd,
    compile_circuit_obdd,
    default_order,
)

from .test_circuit import nested_exprs

VARS = ["a", "b", "c", "d"]


class TestManager:
    def test_terminals(self):
        bdd = Obdd(["x"])
        assert bdd.true == 1 and bdd.false == 0

    def test_var_node(self):
        bdd = Obdd(["x"])
        node = bdd.var("x")
        assert node not in (bdd.true, bdd.false)

    def test_reduction_merges_equal_children(self):
        bdd = Obdd(["x", "y"])
        x = bdd.var("x")
        # x | !x == true
        assert bdd.apply("or", x, bdd.neg(x)) == bdd.true

    def test_apply_and(self):
        bdd = Obdd(["x", "y"])
        node = bdd.apply("and", bdd.var("x"), bdd.var("y"))
        circuit = bdd.to_circuit(node)
        assert circuit.evaluate({"x", "y"})
        assert not circuit.evaluate({"x"})

    def test_apply_unknown_op(self):
        bdd = Obdd(["x"])
        with pytest.raises(ValueError):
            bdd.apply("xor", bdd.true, bdd.false)

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            Obdd(["x", "x"])


class TestCompile:
    @given(nested_exprs(), st.sets(st.sampled_from(VARS)))
    @settings(max_examples=100, deadline=None)
    def test_semantics(self, expr, assignment):
        circuit = circuit_from_nested(expr)
        compiled, _ = compile_circuit_obdd(circuit)
        assert compiled.evaluate(assignment) == circuit.evaluate(assignment)

    @given(nested_exprs())
    @settings(max_examples=60, deadline=None)
    def test_result_is_d_and_d(self, expr):
        circuit = circuit_from_nested(expr)
        compiled, _ = compile_circuit_obdd(circuit)
        assert check_decomposable(compiled)
        if len(compiled.reachable_vars()) <= 6:
            assert check_deterministic_exhaustive(compiled, limit=6)

    def test_explicit_order(self):
        circuit = circuit_from_nested(("or", ("and", "a", "b"), "c"))
        compiled, stats = compile_circuit_obdd(circuit, order=["c", "b", "a"])
        assert model_count(compiled) == model_count(
            compile_circuit_obdd(circuit)[0]
        )
        assert stats.nodes >= 3

    def test_default_order_covers_vars(self):
        circuit = circuit_from_nested(("or", ("and", "a", "b"), ("not", "c")))
        order = default_order(circuit)
        assert set(order) == {"a", "b", "c"}

    def test_budget(self):
        # A function with exponential OBDD under an adversarial order:
        # the hidden-weighted-bit-ish inner product of 2n vars.
        circuit = circuit_from_nested(
            (
                "or",
                *[("and", f"x{i}", f"y{i}") for i in range(12)],
            )
        )
        # interleaving-hostile order: all x first, then all y
        order = [f"x{i}" for i in range(12)] + [f"y{i}" for i in range(12)]
        with pytest.raises(BudgetExceeded):
            compile_circuit_obdd(
                circuit, order=order, budget=CompilationBudget(max_nodes=40)
            )

    def test_stats(self):
        circuit = circuit_from_nested(("and", "a", ("or", "b", "c")))
        _, stats = compile_circuit_obdd(circuit)
        assert stats.nodes >= 3
        assert stats.seconds >= 0
