"""Tests for the numeric-kernel subsystem (PR 4).

Covers the kernel registry and its optional-dependency fallback, the
primitive-level parity of every backend against the big-int reference,
the compiled gate tape (lowering, execution, serialization, the tape
artifact kind of the persistent store), the incremental
``shapley_coefficients`` recurrence, the unified Equation-3
combination's bounds handling, and the headline randomized parity
suite: on seeded small monotone CNFs, conditioning mode == derivative
(smoothing-free) mode == smoothed mode == naive permutation
enumeration, with byte-identical Fractions across both kernels and all
three transports.
"""

import random
import threading
from fractions import Fraction
from math import comb, factorial

import pytest

from repro.circuits import (
    Circuit,
    NotDecomposableError,
    circuit_from_nested,
    complete_counts,
    count_models_by_size,
    eliminate_auxiliary,
    enumerate_models,
    tseytin_transform,
)
from repro.compiler import compile_cnf
from repro.core import game_from_circuit, shapley_all_facts, shapley_naive
from repro.core.numerics import (
    HAS_NUMPY,
    GateTape,
    NumpyKernel,
    PythonKernel,
    TapeError,
    available_kernels,
    binomial_row,
    compile_tape,
    get_kernel,
    shapley_coefficients,
)
from repro.core.shapley import shapley_from_counts
from repro.engine import (
    ArtifactCache,
    Coordinator,
    EngineOptions,
    ExplainSession,
    PersistentArtifactStore,
    run_worker,
)
from repro.workloads.synthetic import random_monotone_cnf, random_monotone_dnf

from .test_store import JOIN_QUERY, join_database

PYTHON = get_kernel("python")
NUMPY = get_kernel("numpy")  # falls back to PYTHON when NumPy is absent

#: (n_vars, n_clauses, width, seed) grid of the randomized parity suite.
PARITY_CASES = [
    (n_vars, n_clauses, width, seed)
    for seed in (0, 1, 2)
    for (n_vars, n_clauses, width) in ((4, 3, 2), (5, 4, 3), (6, 5, 2))
]


def _compile(circuit: Circuit) -> Circuit:
    cnf = tseytin_transform(circuit)
    result = compile_cnf(cnf)
    return eliminate_auxiliary(result.circuit, set(cnf.labels.values()))


def _counts_by_enumeration(circuit: Circuit) -> list[int]:
    labels = sorted(circuit.reachable_vars(), key=repr)
    counts = [0] * (len(labels) + 1)
    for model in enumerate_models(circuit, over=labels):
        counts[len(model)] += 1
    return counts


class TestRegistry:
    def test_available_kernels(self):
        names = available_kernels()
        assert names[0] == "python"
        assert "numpy" in names

    def test_aliases_resolve_to_the_reference(self):
        assert get_kernel("exact") is PYTHON
        assert get_kernel("bigint") is PYTHON

    def test_none_is_the_reference(self):
        assert get_kernel(None) is PYTHON

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown numeric kernel"):
            get_kernel("cuda")

    def test_numpy_falls_back_gracefully_when_missing(self, monkeypatch):
        import repro.core.numerics.vector as vector

        monkeypatch.setattr(vector, "HAS_NUMPY", False)
        assert get_kernel("numpy") is PYTHON
        assert get_kernel("auto") is PYTHON
        with pytest.raises(ValueError, match="unavailable"):
            get_kernel("numpy", strict=True)

    def test_auto_prefers_numpy_when_available(self):
        if HAS_NUMPY:
            assert isinstance(get_kernel("auto"), NumpyKernel)
        else:
            assert get_kernel("auto") is PYTHON

    def test_instances_are_shared(self):
        assert get_kernel("python") is get_kernel("python")


class TestCoefficients:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 13, 40])
    def test_recurrence_matches_factorial_formula(self, n):
        n_fact = factorial(n)
        expected = [
            Fraction(factorial(k) * factorial(n - k - 1), n_fact)
            for k in range(n)
        ]
        assert shapley_coefficients(n) == expected

    def test_empty_and_negative(self):
        assert shapley_coefficients(0) == []
        assert shapley_coefficients(-3) == []

    def test_returns_a_fresh_list(self):
        first = shapley_coefficients(5)
        first[0] = None  # a caller mutating its copy ...
        assert shapley_coefficients(5)[0] == Fraction(1, 5)  # ... is isolated

    def test_binomial_row(self):
        assert binomial_row(0) == (1,)
        assert binomial_row(4) == (1, 4, 6, 4, 1)
        with pytest.raises(ValueError):
            binomial_row(-1)


class TestKernelPrimitiveParity:
    """Every backend must agree with the reference, element for element,
    on big-int inputs (beyond float precision by construction)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_poly_mul(self, seed):
        rng = random.Random(seed)
        for la, lb in ((1, 1), (3, 40), (40, 3), (25, 30)):
            a = [rng.randrange(10**25) for _ in range(la)]
            b = [rng.randrange(10**25) for _ in range(lb)]
            expected = PYTHON.poly_mul(a, b)
            assert NUMPY.poly_mul(a, b) == expected
            assert all(isinstance(x, int) for x in NUMPY.poly_mul(a, b))

    def test_complete(self):
        rng = random.Random(7)
        counts = [rng.randrange(10**30) for _ in range(20)]
        for extra in (0, 1, 5, 40):
            assert NUMPY.complete(counts, extra) == PYTHON.complete(
                counts, extra
            )
        with pytest.raises(ValueError):
            NUMPY.complete(counts, -1)

    def test_poly_add(self):
        rng = random.Random(9)
        acc_a = [rng.randrange(10**25) for _ in range(8)]
        acc_b = list(acc_a)
        poly = [rng.randrange(10**25) for _ in range(30)]
        assert PYTHON.poly_add(acc_a, poly) == NUMPY.poly_add(acc_b, poly)
        assert PYTHON.poly_add(None, poly) == list(poly)

    def test_or_accumulate(self):
        rng = random.Random(11)
        children = [
            [rng.randrange(10**20) for _ in range(width)]
            for width in (3, 17, 25)
        ]
        gaps = [22, 8, 0]
        assert NUMPY.or_accumulate(24, children, gaps) == \
            PYTHON.or_accumulate(24, children, gaps)

    def test_equation3(self):
        rng = random.Random(13)
        pos = [rng.randrange(10**20) for _ in range(12)]
        neg = [rng.randrange(10**20) for _ in range(12)]
        assert NUMPY.equation3(pos, neg, 12) == PYTHON.equation3(pos, neg, 12)


class TestEquation3Bounds:
    """Regression for the once-duplicated Equation-3 combination:
    shapley_from_counts and the derivative tail now share one kernel
    implementation, exercised here with count vectors shorter and
    longer than ``n`` on both kernels."""

    @staticmethod
    def _reference(pos, neg, n):
        n_fact = factorial(n)
        total = Fraction(0)
        for k in range(n):
            p = pos[k] if k < len(pos) else 0
            m = neg[k] if k < len(neg) else 0
            total += Fraction(
                factorial(k) * factorial(n - k - 1), n_fact
            ) * (p - m)
        return total

    @pytest.mark.parametrize("kernel", [PYTHON, NUMPY])
    def test_shorter_than_n_zero_pads(self, kernel):
        pos, neg, n = [1], [0], 3
        expected = self._reference(pos, neg, n)
        assert shapley_from_counts(pos, neg, n, kernel=kernel) == expected
        assert expected == Fraction(2, 6)

    @pytest.mark.parametrize("kernel", [PYTHON, NUMPY])
    def test_mismatched_lengths(self, kernel):
        pos, neg, n = [2, 5, 1], [1], 4
        assert shapley_from_counts(pos, neg, n, kernel=kernel) == \
            self._reference(pos, neg, n)

    @pytest.mark.parametrize("kernel", [PYTHON, NUMPY])
    def test_longer_than_n_ignores_tail(self, kernel):
        # An over-completed vector must not index coefficients past n-1
        # (the legacy derivative tail would have raised IndexError or,
        # worse, silently weighted them).
        pos, neg, n = [1, 2, 3, 4, 5], [0, 1, 0, 9, 9], 3
        assert shapley_from_counts(pos, neg, n, kernel=kernel) == \
            self._reference(pos, neg, n)

    @pytest.mark.parametrize("kernel", [PYTHON, NUMPY])
    def test_difference_form_agrees(self, kernel):
        pos, neg, n = [3, 7, 2], [1, 2, 8], 3
        diff = [p - m for p, m in zip(pos, neg)]
        assert kernel.equation3(diff, None, n) == \
            kernel.equation3(pos, neg, n)


class TestGateTape:
    def test_lowering_shares_structure_across_labels(self):
        circuit = circuit_from_nested(("or", "a", ("and", ("not", "a"), "b")))
        tape = compile_tape(circuit)
        renamed = tape.with_labels({"a": "x", "b": "y"})
        assert renamed.ops is tape.ops and renamed.args is tape.args
        assert renamed.var_labels == ["x", "y"]
        assert tape.var_labels == ["a", "b"]

    def test_forward_matches_enumeration(self):
        for seed in range(6):
            ddnnf = _compile(random_monotone_dnf(5, 4, 2, seed))
            counts, nvars = count_models_by_size(ddnnf)
            assert counts == _counts_by_enumeration(ddnnf)
            assert nvars == len(ddnnf.reachable_vars())

    def test_forward_on_both_kernels(self):
        ddnnf = _compile(random_monotone_cnf(6, 5, 3, seed=42))
        assert count_models_by_size(ddnnf, kernel=PYTHON) == \
            count_models_by_size(ddnnf, kernel=NUMPY)

    def test_general_negation_forward(self):
        # NOT above a non-variable gate: complement counting still works
        # in the forward pass (the backward pass requires NNF).
        circuit = Circuit()
        p, q = circuit.var("p"), circuit.var("q")
        circuit.output = circuit.not_(circuit.raw_and((p, q)))
        counts, nvars = count_models_by_size(circuit)
        assert (counts, nvars) == ([1, 2, 0], 2)
        tape = compile_tape(circuit)
        vals = tape.forward(PYTHON)
        with pytest.raises(TapeError, match="NNF"):
            tape.backward_diffs(PYTHON, vals)

    def test_non_decomposable_and_detected(self):
        circuit = Circuit()
        x, y = circuit.var("x"), circuit.var("y")
        circuit.output = circuit.raw_and((x, circuit.raw_and((x, y))))
        with pytest.raises(NotDecomposableError):
            count_models_by_size(circuit)

    def test_complete_counts_delegates_to_kernel(self):
        assert complete_counts([1], 3) == [1, 3, 3, 1]
        assert complete_counts([0, 2, 1], 0) == [0, 2, 1]
        assert complete_counts([1, 1], 2, kernel=NUMPY) == [1, 3, 3, 1]

    def test_payload_round_trip(self):
        tape = compile_tape(
            _compile(random_monotone_dnf(5, 4, 3, seed=3)).rename(
                {f"x{i}": i for i in range(5)}
            )
        )
        clone = GateTape.from_payload(tape.to_payload())
        assert clone.ops == tape.ops
        assert clone.args == tape.args
        assert clone.gaps == tape.gaps
        assert clone.nvars == tape.nvars
        assert clone.var_labels == tape.var_labels
        assert clone.source_gates == tape.source_gates
        assert clone.forward(PYTHON)[-1] == tape.forward(PYTHON)[-1]

    @pytest.mark.parametrize("mutate", [
        lambda p: p.pop("ops"),
        lambda p: p["ops"].append(99),
        lambda p: p.__setitem__("ops", p["ops"][:-1]),
        lambda p: p["args"][-1].append(10**6),
        lambda p: p.__setitem__("var_labels", []),
        lambda p: p.__setitem__("source_gates", -1),
        lambda p: p["gaps"].__setitem__(0, [1]),
        # schema-invalid entries (a foreign writer at the same format
        # version) must read as corruption, not crash the store load
        lambda p: p.__setitem__("args", 5),
        lambda p: p.__setitem__("args", [7] * len(p["ops"])),
        lambda p: p.__setitem__("gaps", [3] * len(p["ops"])),
        lambda p: p.__setitem__("nvars", ["a"] * len(p["ops"])),
        lambda p: p.__setitem__("ops", [[1]] * len(p["ops"])),
    ])
    def test_malformed_payloads_raise(self, mutate):
        tape = compile_tape(circuit_from_nested(("or", "a", "b")))
        payload = tape.to_payload()
        mutate(payload)
        with pytest.raises(TapeError):
            GateTape.from_payload(payload)

    def test_empty_payload_rejected(self):
        with pytest.raises(TapeError):
            GateTape.from_payload({
                "ops": [], "args": [], "gaps": [], "nvars": [],
                "var_labels": [], "source_gates": 0,
            })


class TestParitySuite:
    """The headline acceptance check: on seeded small monotone CNFs,
    all three all-facts modes and the naive permutation definition
    return byte-identical Fractions, on both kernels."""

    @pytest.mark.parametrize("n_vars,n_clauses,width,seed", PARITY_CASES)
    def test_modes_kernels_and_naive_agree(
        self, n_vars, n_clauses, width, seed
    ):
        circuit = random_monotone_cnf(n_vars, n_clauses, width, seed)
        players = [f"x{i}" for i in range(n_vars)]
        ddnnf = _compile(circuit)
        naive = shapley_naive(game_from_circuit(circuit), players)
        results = {}
        for kernel in (PYTHON, NUMPY):
            for mode in ("conditioning", "derivative", "smoothed"):
                results[(kernel.name, mode)] = shapley_all_facts(
                    ddnnf, players, method=mode, kernel=kernel
                )
        for key, values in results.items():
            assert values == naive, key
            for fact in players:
                # byte-identical: same type, numerator, denominator
                assert isinstance(values[fact], Fraction), key
                assert values[fact].numerator == naive[fact].numerator
                assert values[fact].denominator == naive[fact].denominator

    def test_negated_lineage_agrees_across_modes(self):
        # Non-monotone NNF: derivative paths must handle NVAR leaves.
        circuit = circuit_from_nested(
            ("or", ("and", "a", ("not", "b")), ("and", ("not", "a"), "b"))
        )
        players = ["a", "b", "c"]
        ddnnf = _compile(circuit)
        naive = shapley_naive(game_from_circuit(circuit), players)
        for mode in ("conditioning", "derivative", "smoothed"):
            assert shapley_all_facts(ddnnf, players, method=mode) == naive

    def test_prebuilt_tape_path_matches(self):
        ddnnf = _compile(random_monotone_cnf(5, 4, 2, seed=8))
        players = [f"x{i}" for i in range(5)]
        tape = compile_tape(ddnnf.condition({}))
        direct = shapley_all_facts(ddnnf, players, method="derivative")
        via_tape = shapley_all_facts(
            None, players, method="derivative", tape=tape
        )
        assert direct == via_tape

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            shapley_all_facts(circuit_from_nested("x"), ["x"], method="magic")


class TestTapeArtifacts:
    def test_warm_store_skips_tape_compilation(self, tmp_path):
        from repro.core.pipeline import run_exact

        circuit = random_monotone_dnf(5, 4, 2, seed=5)
        players = sorted(circuit.reachable_vars())
        store = PersistentArtifactStore(tmp_path)
        cold_cache = ArtifactCache(store=store)
        cold = run_exact(circuit, players, cache=cold_cache)
        assert cold.ok
        assert cold_cache.stats.tape_compilations == 1
        assert (len([e for e in store.entries() if e.kind == "tape"])) == 1

        warm_cache = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        warm = run_exact(circuit, players, cache=warm_cache)
        assert warm.ok
        assert warm_cache.stats.tape_compilations == 0
        assert warm_cache.stats.compile_calls == 0
        assert warm.values == cold.values
        # provenance stats survive the tape-only warm path
        assert warm.stats.ddnnf_size == cold.stats.ddnnf_size

    def test_in_memory_hits_share_one_tape(self):
        from repro.core.pipeline import run_exact

        cache = ArtifactCache()
        circuit = random_monotone_dnf(5, 4, 2, seed=6)
        players = sorted(circuit.reachable_vars())
        first = run_exact(circuit, players, cache=cache)
        renamed = circuit.rename(
            {label: f"y{label}" for label in players}
        )
        second = run_exact(
            renamed, sorted(renamed.reachable_vars()), cache=cache
        )
        assert cache.stats.tape_compilations == 1
        assert cache.stats.tape_hits == 1
        assert first.ok and second.ok
        assert {f"y{k}": v for k, v in first.values.items()} == second.values

    def test_corrupt_tape_artifact_recovers(self, tmp_path):
        from repro.core.pipeline import run_exact

        circuit = random_monotone_dnf(4, 3, 2, seed=7)
        players = sorted(circuit.reachable_vars())
        store = PersistentArtifactStore(tmp_path)
        cold = run_exact(circuit, players, cache=ArtifactCache(store=store))
        tape_files = [e.path for e in store.entries() if e.kind == "tape"]
        assert len(tape_files) == 1
        blob = tape_files[0].read_bytes()
        tape_files[0].write_bytes(blob[: len(blob) - 12])  # torn write

        fresh_store = PersistentArtifactStore(tmp_path)
        cache = ArtifactCache(store=fresh_store)
        warm = run_exact(circuit, players, cache=cache)
        assert warm.ok and warm.values == cold.values
        assert fresh_store.stats.corruptions == 1
        assert cache.stats.tape_compilations == 1  # re-lowered from d-DNNF
        assert cache.stats.compile_calls == 0  # ... without recompiling

    def test_mode_without_tape_still_uses_ddnnf(self):
        cache = ArtifactCache()
        with ExplainSession(
            join_database(2, 2), method="exact",
            options=EngineOptions(mode="conditioning"), cache=cache,
        ) as session:
            results = session.explain_many(JOIN_QUERY)
        assert all(r.ok for r in results.values())
        assert cache.stats.tape_compilations == 0


@pytest.fixture
def fleet(tmp_path):
    """A live coordinator with two in-thread workers sharing a store."""
    coordinator = Coordinator().start()
    store_dir = str(tmp_path / "fleet-store")
    ready = threading.Barrier(3, timeout=10)
    threads = [
        threading.Thread(
            target=run_worker,
            args=(coordinator.address,),
            kwargs={"cache_dir": store_dir, "on_ready": ready.wait},
            daemon=True,
        )
        for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    ready.wait()
    coordinator.wait_for_workers(2, timeout=10)
    yield coordinator
    coordinator.shutdown()
    for thread in threads:
        thread.join(timeout=10)


class TestTransportKernelParity:
    def test_identical_fractions_across_transports_and_kernels(
        self, fleet
    ):
        db = join_database(6, 2)
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        expected = {a: r.values for a, r in baseline.items()}
        for backend in ("python", "numpy"):
            with ExplainSession(
                db, method="exact", max_workers=2,
                options=EngineOptions(numeric_backend=backend),
                coordinator=fleet.address, min_workers=2,
            ) as session:
                for executor in ("thread", "process", "socket"):
                    results = session.explain_many(
                        JOIN_QUERY, executor=executor
                    )
                    got = {a: r.values for a, r in results.items()}
                    assert got == expected, (backend, executor)
                    for values in got.values():
                        assert all(
                            type(v) is Fraction for v in values.values()
                        ), (backend, executor)
