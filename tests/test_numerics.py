"""Tests for the numeric-kernel subsystem (PR 4).

Covers the kernel registry and its optional-dependency fallback, the
primitive-level parity of every backend against the big-int reference,
the compiled gate tape (lowering, execution, serialization, the tape
artifact kind of the persistent store), the incremental
``shapley_coefficients`` recurrence, the unified Equation-3
combination's bounds handling, and the headline randomized parity
suite: on seeded small monotone CNFs, conditioning mode == derivative
(smoothing-free) mode == smoothed mode == naive permutation
enumeration, with byte-identical Fractions across both kernels and all
three transports.
"""

import random
import threading
from fractions import Fraction
from math import comb, factorial

import pytest

from repro.circuits import (
    Circuit,
    NotDecomposableError,
    circuit_from_nested,
    complete_counts,
    count_models_by_size,
    eliminate_auxiliary,
    enumerate_models,
    tseytin_transform,
)
from repro.compiler import compile_cnf
from repro.core import game_from_circuit, shapley_all_facts, shapley_naive
from repro.core.numerics import (
    HAS_NUMPY,
    FastpathStats,
    GateTape,
    Int64Kernel,
    NumpyKernel,
    PythonKernel,
    TapeError,
    available_kernels,
    binomial_row,
    coefficients_cache_info,
    compile_tape,
    fastpath_diffs,
    get_kernel,
    plan_for,
    shapley_coefficients,
)
from repro.core.shapley import shapley_from_counts
from repro.engine import (
    ArtifactCache,
    Coordinator,
    EngineOptions,
    ExplainSession,
    PersistentArtifactStore,
    run_worker,
)
from repro.workloads.synthetic import random_monotone_cnf, random_monotone_dnf

from .test_store import JOIN_QUERY, join_database

PYTHON = get_kernel("python")
NUMPY = get_kernel("numpy")  # falls back to PYTHON when NumPy is absent
INT64 = get_kernel("int64")  # falls back to PYTHON when NumPy is absent

#: (n_vars, n_clauses, width, seed) grid of the randomized parity suite.
PARITY_CASES = [
    (n_vars, n_clauses, width, seed)
    for seed in (0, 1, 2)
    for (n_vars, n_clauses, width) in ((4, 3, 2), (5, 4, 3), (6, 5, 2))
]


def _compile(circuit: Circuit) -> Circuit:
    cnf = tseytin_transform(circuit)
    result = compile_cnf(cnf)
    return eliminate_auxiliary(result.circuit, set(cnf.labels.values()))


def _counts_by_enumeration(circuit: Circuit) -> list[int]:
    labels = sorted(circuit.reachable_vars(), key=repr)
    counts = [0] * (len(labels) + 1)
    for model in enumerate_models(circuit, over=labels):
        counts[len(model)] += 1
    return counts


class TestRegistry:
    def test_available_kernels(self):
        names = available_kernels()
        assert names[0] == "python"
        assert "numpy" in names
        assert "int64" in names

    def test_aliases_resolve_to_the_reference(self):
        assert get_kernel("exact") is PYTHON
        assert get_kernel("bigint") is PYTHON

    def test_none_is_the_reference(self):
        assert get_kernel(None) is PYTHON

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown numeric kernel"):
            get_kernel("cuda")

    def test_numpy_falls_back_gracefully_when_missing(self, monkeypatch):
        import repro.core.numerics.vector as vector

        monkeypatch.setattr(vector, "HAS_NUMPY", False)
        assert get_kernel("numpy") is PYTHON
        assert get_kernel("int64") is PYTHON
        assert get_kernel("fixed") is PYTHON
        assert get_kernel("auto") is PYTHON
        with pytest.raises(ValueError, match="unavailable"):
            get_kernel("numpy", strict=True)
        with pytest.raises(ValueError, match="unavailable"):
            get_kernel("int64", strict=True)

    def test_auto_walks_the_machine_width_ladder(self):
        if HAS_NUMPY:
            assert isinstance(get_kernel("auto"), Int64Kernel)
        else:
            assert get_kernel("auto") is PYTHON

    def test_instances_are_shared(self):
        assert get_kernel("python") is get_kernel("python")


class TestCoefficients:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 13, 40])
    def test_recurrence_matches_factorial_formula(self, n):
        n_fact = factorial(n)
        expected = [
            Fraction(factorial(k) * factorial(n - k - 1), n_fact)
            for k in range(n)
        ]
        assert shapley_coefficients(n) == expected

    def test_empty_and_negative(self):
        assert shapley_coefficients(0) == []
        assert shapley_coefficients(-3) == []

    def test_returns_a_fresh_list(self):
        first = shapley_coefficients(5)
        first[0] = None  # a caller mutating its copy ...
        assert shapley_coefficients(5)[0] == Fraction(1, 5)  # ... is isolated

    def test_binomial_row(self):
        assert binomial_row(0) == (1,)
        assert binomial_row(4) == (1, 4, 6, 4, 1)
        with pytest.raises(ValueError):
            binomial_row(-1)


class TestKernelPrimitiveParity:
    """Every backend must agree with the reference, element for element,
    on big-int inputs (beyond float precision by construction)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_poly_mul(self, seed):
        rng = random.Random(seed)
        for la, lb in ((1, 1), (3, 40), (40, 3), (25, 30)):
            a = [rng.randrange(10**25) for _ in range(la)]
            b = [rng.randrange(10**25) for _ in range(lb)]
            expected = PYTHON.poly_mul(a, b)
            assert NUMPY.poly_mul(a, b) == expected
            assert all(isinstance(x, int) for x in NUMPY.poly_mul(a, b))

    def test_complete(self):
        rng = random.Random(7)
        counts = [rng.randrange(10**30) for _ in range(20)]
        for extra in (0, 1, 5, 40):
            assert NUMPY.complete(counts, extra) == PYTHON.complete(
                counts, extra
            )
        with pytest.raises(ValueError):
            NUMPY.complete(counts, -1)

    def test_poly_add(self):
        rng = random.Random(9)
        acc_a = [rng.randrange(10**25) for _ in range(8)]
        acc_b = list(acc_a)
        poly = [rng.randrange(10**25) for _ in range(30)]
        assert PYTHON.poly_add(acc_a, poly) == NUMPY.poly_add(acc_b, poly)
        assert PYTHON.poly_add(None, poly) == list(poly)

    def test_or_accumulate(self):
        rng = random.Random(11)
        children = [
            [rng.randrange(10**20) for _ in range(width)]
            for width in (3, 17, 25)
        ]
        gaps = [22, 8, 0]
        assert NUMPY.or_accumulate(24, children, gaps) == \
            PYTHON.or_accumulate(24, children, gaps)

    def test_equation3(self):
        rng = random.Random(13)
        pos = [rng.randrange(10**20) for _ in range(12)]
        neg = [rng.randrange(10**20) for _ in range(12)]
        assert NUMPY.equation3(pos, neg, 12) == PYTHON.equation3(pos, neg, 12)


class TestEquation3Bounds:
    """Regression for the once-duplicated Equation-3 combination:
    shapley_from_counts and the derivative tail now share one kernel
    implementation, exercised here with count vectors shorter and
    longer than ``n`` on both kernels."""

    @staticmethod
    def _reference(pos, neg, n):
        n_fact = factorial(n)
        total = Fraction(0)
        for k in range(n):
            p = pos[k] if k < len(pos) else 0
            m = neg[k] if k < len(neg) else 0
            total += Fraction(
                factorial(k) * factorial(n - k - 1), n_fact
            ) * (p - m)
        return total

    @pytest.mark.parametrize("kernel", [PYTHON, NUMPY, INT64])
    def test_shorter_than_n_zero_pads(self, kernel):
        pos, neg, n = [1], [0], 3
        expected = self._reference(pos, neg, n)
        assert shapley_from_counts(pos, neg, n, kernel=kernel) == expected
        assert expected == Fraction(2, 6)

    @pytest.mark.parametrize("kernel", [PYTHON, NUMPY, INT64])
    def test_mismatched_lengths(self, kernel):
        pos, neg, n = [2, 5, 1], [1], 4
        assert shapley_from_counts(pos, neg, n, kernel=kernel) == \
            self._reference(pos, neg, n)

    @pytest.mark.parametrize("kernel", [PYTHON, NUMPY, INT64])
    def test_longer_than_n_ignores_tail(self, kernel):
        # An over-completed vector must not index coefficients past n-1
        # (the legacy derivative tail would have raised IndexError or,
        # worse, silently weighted them).
        pos, neg, n = [1, 2, 3, 4, 5], [0, 1, 0, 9, 9], 3
        assert shapley_from_counts(pos, neg, n, kernel=kernel) == \
            self._reference(pos, neg, n)

    @pytest.mark.parametrize("kernel", [PYTHON, NUMPY, INT64])
    def test_difference_form_agrees(self, kernel):
        pos, neg, n = [3, 7, 2], [1, 2, 8], 3
        diff = [p - m for p, m in zip(pos, neg)]
        assert kernel.equation3(diff, None, n) == \
            kernel.equation3(pos, neg, n)


class TestGateTape:
    def test_lowering_shares_structure_across_labels(self):
        circuit = circuit_from_nested(("or", "a", ("and", ("not", "a"), "b")))
        tape = compile_tape(circuit)
        renamed = tape.with_labels({"a": "x", "b": "y"})
        assert renamed.ops is tape.ops and renamed.args is tape.args
        assert renamed.var_labels == ["x", "y"]
        assert tape.var_labels == ["a", "b"]

    def test_forward_matches_enumeration(self):
        for seed in range(6):
            ddnnf = _compile(random_monotone_dnf(5, 4, 2, seed))
            counts, nvars = count_models_by_size(ddnnf)
            assert counts == _counts_by_enumeration(ddnnf)
            assert nvars == len(ddnnf.reachable_vars())

    def test_forward_on_both_kernels(self):
        ddnnf = _compile(random_monotone_cnf(6, 5, 3, seed=42))
        assert count_models_by_size(ddnnf, kernel=PYTHON) == \
            count_models_by_size(ddnnf, kernel=NUMPY)

    def test_general_negation_forward(self):
        # NOT above a non-variable gate: complement counting still works
        # in the forward pass (the backward pass requires NNF).
        circuit = Circuit()
        p, q = circuit.var("p"), circuit.var("q")
        circuit.output = circuit.not_(circuit.raw_and((p, q)))
        counts, nvars = count_models_by_size(circuit)
        assert (counts, nvars) == ([1, 2, 0], 2)
        tape = compile_tape(circuit)
        vals = tape.forward(PYTHON)
        with pytest.raises(TapeError, match="NNF"):
            tape.backward_diffs(PYTHON, vals)

    def test_non_decomposable_and_detected(self):
        circuit = Circuit()
        x, y = circuit.var("x"), circuit.var("y")
        circuit.output = circuit.raw_and((x, circuit.raw_and((x, y))))
        with pytest.raises(NotDecomposableError):
            count_models_by_size(circuit)

    def test_complete_counts_delegates_to_kernel(self):
        assert complete_counts([1], 3) == [1, 3, 3, 1]
        assert complete_counts([0, 2, 1], 0) == [0, 2, 1]
        assert complete_counts([1, 1], 2, kernel=NUMPY) == [1, 3, 3, 1]

    def test_payload_round_trip(self):
        tape = compile_tape(
            _compile(random_monotone_dnf(5, 4, 3, seed=3)).rename(
                {f"x{i}": i for i in range(5)}
            )
        )
        clone = GateTape.from_payload(tape.to_payload())
        assert clone.ops == tape.ops
        assert clone.args == tape.args
        assert clone.gaps == tape.gaps
        assert clone.nvars == tape.nvars
        assert clone.var_labels == tape.var_labels
        assert clone.source_gates == tape.source_gates
        assert clone.forward(PYTHON)[-1] == tape.forward(PYTHON)[-1]

    @pytest.mark.parametrize("mutate", [
        lambda p: p.pop("ops"),
        lambda p: p["ops"].append(99),
        lambda p: p.__setitem__("ops", p["ops"][:-1]),
        lambda p: p["args"][-1].append(10**6),
        lambda p: p.__setitem__("var_labels", []),
        lambda p: p.__setitem__("source_gates", -1),
        lambda p: p["gaps"].__setitem__(0, [1]),
        # schema-invalid entries (a foreign writer at the same format
        # version) must read as corruption, not crash the store load
        lambda p: p.__setitem__("args", 5),
        lambda p: p.__setitem__("args", [7] * len(p["ops"])),
        lambda p: p.__setitem__("gaps", [3] * len(p["ops"])),
        lambda p: p.__setitem__("nvars", ["a"] * len(p["ops"])),
        lambda p: p.__setitem__("ops", [[1]] * len(p["ops"])),
    ])
    def test_malformed_payloads_raise(self, mutate):
        tape = compile_tape(circuit_from_nested(("or", "a", "b")))
        payload = tape.to_payload()
        mutate(payload)
        with pytest.raises(TapeError):
            GateTape.from_payload(payload)

    def test_empty_payload_rejected(self):
        with pytest.raises(TapeError):
            GateTape.from_payload({
                "ops": [], "args": [], "gaps": [], "nvars": [],
                "var_labels": [], "source_gates": 0,
            })


class TestParitySuite:
    """The headline acceptance check: on seeded small monotone CNFs,
    all three all-facts modes and the naive permutation definition
    return byte-identical Fractions, on both kernels."""

    @pytest.mark.parametrize("n_vars,n_clauses,width,seed", PARITY_CASES)
    def test_modes_kernels_and_naive_agree(
        self, n_vars, n_clauses, width, seed
    ):
        circuit = random_monotone_cnf(n_vars, n_clauses, width, seed)
        players = [f"x{i}" for i in range(n_vars)]
        ddnnf = _compile(circuit)
        naive = shapley_naive(game_from_circuit(circuit), players)
        results = {}
        for kernel in (PYTHON, NUMPY, INT64):
            for mode in ("conditioning", "derivative", "smoothed"):
                results[(kernel.name, mode)] = shapley_all_facts(
                    ddnnf, players, method=mode, kernel=kernel
                )
        for key, values in results.items():
            assert values == naive, key
            for fact in players:
                # byte-identical: same type, numerator, denominator
                assert isinstance(values[fact], Fraction), key
                assert values[fact].numerator == naive[fact].numerator
                assert values[fact].denominator == naive[fact].denominator

    def test_negated_lineage_agrees_across_modes(self):
        # Non-monotone NNF: derivative paths must handle NVAR leaves.
        circuit = circuit_from_nested(
            ("or", ("and", "a", ("not", "b")), ("and", ("not", "a"), "b"))
        )
        players = ["a", "b", "c"]
        ddnnf = _compile(circuit)
        naive = shapley_naive(game_from_circuit(circuit), players)
        for mode in ("conditioning", "derivative", "smoothed"):
            assert shapley_all_facts(ddnnf, players, method=mode) == naive

    def test_prebuilt_tape_path_matches(self):
        ddnnf = _compile(random_monotone_cnf(5, 4, 2, seed=8))
        players = [f"x{i}" for i in range(5)]
        tape = compile_tape(ddnnf.condition({}))
        direct = shapley_all_facts(ddnnf, players, method="derivative")
        via_tape = shapley_all_facts(
            None, players, method="derivative", tape=tape
        )
        assert direct == via_tape

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            shapley_all_facts(circuit_from_nested("x"), ["x"], method="magic")


class TestTapeArtifacts:
    def test_warm_store_skips_tape_compilation(self, tmp_path):
        from repro.core.pipeline import run_exact

        circuit = random_monotone_dnf(5, 4, 2, seed=5)
        players = sorted(circuit.reachable_vars())
        store = PersistentArtifactStore(tmp_path)
        cold_cache = ArtifactCache(store=store)
        cold = run_exact(circuit, players, cache=cold_cache)
        assert cold.ok
        assert cold_cache.stats.tape_compilations == 1
        assert (len([e for e in store.entries() if e.kind == "tape"])) == 1

        warm_cache = ArtifactCache(store=PersistentArtifactStore(tmp_path))
        warm = run_exact(circuit, players, cache=warm_cache)
        assert warm.ok
        assert warm_cache.stats.tape_compilations == 0
        assert warm_cache.stats.compile_calls == 0
        assert warm.values == cold.values
        # provenance stats survive the tape-only warm path
        assert warm.stats.ddnnf_size == cold.stats.ddnnf_size

    def test_in_memory_hits_share_one_tape(self):
        from repro.core.pipeline import run_exact

        cache = ArtifactCache()
        circuit = random_monotone_dnf(5, 4, 2, seed=6)
        players = sorted(circuit.reachable_vars())
        first = run_exact(circuit, players, cache=cache)
        renamed = circuit.rename(
            {label: f"y{label}" for label in players}
        )
        second = run_exact(
            renamed, sorted(renamed.reachable_vars()), cache=cache
        )
        assert cache.stats.tape_compilations == 1
        assert cache.stats.tape_hits == 1
        assert first.ok and second.ok
        assert {f"y{k}": v for k, v in first.values.items()} == second.values

    def test_corrupt_tape_artifact_recovers(self, tmp_path):
        from repro.core.pipeline import run_exact

        circuit = random_monotone_dnf(4, 3, 2, seed=7)
        players = sorted(circuit.reachable_vars())
        store = PersistentArtifactStore(tmp_path)
        cold = run_exact(circuit, players, cache=ArtifactCache(store=store))
        tape_files = [e.path for e in store.entries() if e.kind == "tape"]
        assert len(tape_files) == 1
        blob = tape_files[0].read_bytes()
        tape_files[0].write_bytes(blob[: len(blob) - 12])  # torn write

        fresh_store = PersistentArtifactStore(tmp_path)
        cache = ArtifactCache(store=fresh_store)
        warm = run_exact(circuit, players, cache=cache)
        assert warm.ok and warm.values == cold.values
        assert fresh_store.stats.corruptions == 1
        assert cache.stats.tape_compilations == 1  # re-lowered from d-DNNF
        assert cache.stats.compile_calls == 0  # ... without recompiling

    def test_mode_without_tape_still_uses_ddnnf(self):
        cache = ArtifactCache()
        with ExplainSession(
            join_database(2, 2), method="exact",
            options=EngineOptions(mode="conditioning"), cache=cache,
        ) as session:
            results = session.explain_many(JOIN_QUERY)
        assert all(r.ok for r in results.values())
        assert cache.stats.tape_compilations == 0


@pytest.fixture
def fleet(tmp_path):
    """A live coordinator with two in-thread workers sharing a store."""
    coordinator = Coordinator().start()
    store_dir = str(tmp_path / "fleet-store")
    ready = threading.Barrier(3, timeout=10)
    threads = [
        threading.Thread(
            target=run_worker,
            args=(coordinator.address,),
            kwargs={"cache_dir": store_dir, "on_ready": ready.wait},
            daemon=True,
        )
        for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    ready.wait()
    coordinator.wait_for_workers(2, timeout=10)
    yield coordinator
    coordinator.shutdown()
    for thread in threads:
        thread.join(timeout=10)


class TestTransportKernelParity:
    def test_identical_fractions_across_transports_and_kernels(
        self, fleet
    ):
        db = join_database(6, 2)
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        expected = {a: r.values for a, r in baseline.items()}
        for backend in ("python", "numpy", "int64"):
            with ExplainSession(
                db, method="exact", max_workers=2,
                options=EngineOptions(numeric_backend=backend),
                coordinator=fleet.address, min_workers=2,
            ) as session:
                for executor in ("thread", "process", "socket"):
                    results = session.explain_many(
                        JOIN_QUERY, executor=executor
                    )
                    got = {a: r.values for a, r in results.items()}
                    assert got == expected, (backend, executor)
                    for values in got.values():
                        assert all(
                            type(v) is Fraction for v in values.values()
                        ), (backend, executor)


def _disjoint_monotone_cnf(n_clauses: int, width: int, seed: int) -> Circuit:
    """A randomized monotone CNF whose clauses partition a shuffled
    variable set: the model count is exactly ``(2^width - 1)^n_clauses``
    while compilation stays trivial, which lets the tests engineer
    counts that straddle any machine-width boundary."""
    rng = random.Random(seed)
    labels = [f"v{i}" for i in range(n_clauses * width)]
    rng.shuffle(labels)
    circuit = Circuit()
    clauses = []
    for index in range(n_clauses):
        block = labels[index * width:(index + 1) * width]
        clauses.append(circuit.or_([circuit.var(label) for label in block]))
    circuit.output = circuit.and_(clauses)
    return circuit


needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="NumPy required")


class TestTapePayloadV2:
    """The leveled tape payload format: v2 carries levels + bounds,
    v1 payloads re-lower transparently, malformed analyses read as
    corruption."""

    def _tape(self, seed: int = 3) -> GateTape:
        return compile_tape(_compile(random_monotone_cnf(5, 4, 2, seed)))

    def test_v2_payload_carries_levels_and_bounds(self):
        tape = self._tape()
        payload = tape.to_payload()
        assert payload["format"] == GateTape.PAYLOAD_FORMAT == 2
        assert payload["levels"] == tape.level_schedule()
        forward_bits, backward_bits, diff_bits = tape.bound_bits()
        assert payload["bounds"] == {
            "forward_bits": forward_bits,
            "backward_bits": backward_bits,
            "diff_bits": diff_bits,
        }
        clone = GateTape.from_payload(payload)
        assert clone.level_schedule() == tape.level_schedule()
        assert clone.bound_bits() == tape.bound_bits()

    def test_level_schedule_is_topological(self):
        tape = self._tape(seed=5)
        levels = tape.level_schedule()
        for i, op in enumerate(tape.ops):
            if op not in (0, 1, 2, 3):  # non-leaf opcodes
                for child in tape.args[i]:
                    assert levels[child] < levels[i]

    def test_v1_payload_relowers_on_load(self):
        tape = self._tape(seed=7)
        v1 = {
            key: value for key, value in tape.to_payload().items()
            if key not in ("format", "levels", "bounds")
        }
        clone = GateTape.from_payload(v1)
        # re-lowered: the analysis is recomputed, not lost
        assert clone.level_schedule() == tape.level_schedule()
        assert clone.bound_bits() == tape.bound_bits()
        # and a re-serialization upgrades the artifact to v2
        assert clone.to_payload()["format"] == 2
        assert clone.forward(PYTHON) == tape.forward(PYTHON)

    @pytest.mark.parametrize("mutate", [
        lambda p: p.__setitem__("levels", p["levels"][:-1]),
        lambda p: p["levels"].__setitem__(-1, 0),  # root below children
        lambda p: p.__setitem__("levels", ["x"] * len(p["levels"])),
        lambda p: p.__setitem__("levels", [-1] * len(p["levels"])),
        lambda p: p["bounds"].pop("forward_bits"),
        lambda p: p["bounds"].__setitem__("diff_bits", -2),
        lambda p: p["bounds"].__setitem__("backward_bits", "big"),
        lambda p: p.__setitem__("bounds", 7),
    ])
    def test_malformed_analysis_reads_as_corruption(self, mutate):
        payload = compile_tape(
            circuit_from_nested(("or", "a", ("and", "b", "c")))
        ).to_payload()
        mutate(payload)
        with pytest.raises(TapeError):
            GateTape.from_payload(payload)

    def test_store_roundtrip_preserves_the_analysis(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        tape = compile_tape(
            _compile(random_monotone_dnf(5, 4, 3, seed=3)).rename(
                {f"x{i}": i for i in range(5)}
            )
        )
        signature = ((0, 1), (1, 2))
        store.store_tape(signature, tape)
        loaded = store.load_tape(signature)
        assert loaded is not None
        assert loaded.level_schedule() == tape.level_schedule()
        assert loaded.bound_bits() == tape.bound_bits()

    def test_with_labels_shares_the_analysis_box(self):
        tape = self._tape(seed=9)
        levels = tape.level_schedule()
        renamed = tape.with_labels({label: (label, "renamed")
                                    for label in tape.var_labels})
        assert renamed.level_schedule() is levels
        assert renamed.bound_bits() == tape.bound_bits()


class TestInt64KernelGuards:
    """The per-call overflow guards of the generic int64 kernel: calls
    that fit run native, calls that straddle 2^63 (or carry Fractions)
    delegate — byte-identical to the reference either way."""

    @pytest.mark.parametrize("magnitude", [10**3, 10**17, 10**25, 10**40])
    def test_poly_mul_across_the_boundary(self, magnitude):
        rng = random.Random(magnitude)
        a = [rng.randrange(magnitude) for _ in range(20)]
        b = [rng.randrange(magnitude) for _ in range(15)]
        result = INT64.poly_mul(a, b)
        assert result == PYTHON.poly_mul(a, b)
        assert all(type(value) is int for value in result)

    def test_negative_values(self):
        a = [-(10**8), 10**8, -7]
        b = [3, -(10**9), 11]
        assert INT64.poly_mul(a, b) == PYTHON.poly_mul(a, b)

    def test_fraction_elements_delegate(self):
        a = [Fraction(1, 3), Fraction(2, 7)]
        b = [Fraction(5, 11), Fraction(1, 2), Fraction(3)]
        assert INT64.poly_mul(a, b) == PYTHON.poly_mul(a, b)
        assert INT64.or_accumulate(3, [a, [Fraction(1)]], [1, 3]) == \
            PYTHON.or_accumulate(3, [a, [Fraction(1)]], [1, 3])

    def test_poly_add_and_or_accumulate_across_the_boundary(self):
        rng = random.Random(5)
        for magnitude in (10**6, 10**18, 10**30):
            acc_a = [rng.randrange(magnitude) for _ in range(25)]
            acc_b = list(acc_a)
            poly = [rng.randrange(magnitude) for _ in range(30)]
            assert INT64.poly_add(acc_a, poly) == \
                PYTHON.poly_add(acc_b, poly)
            children = [
                [rng.randrange(magnitude) for _ in range(width)]
                for width in (3, 9, 14)
            ]
            gaps = [11, 5, 0]
            assert INT64.or_accumulate(14, children, gaps) == \
                PYTHON.or_accumulate(14, children, gaps)

    def test_counting_a_straddling_circuit_matches(self):
        # Intermediate model counts cross 2^63: the per-call guards must
        # route the big convolutions to the exact delegate.
        ddnnf = _compile(_disjoint_monotone_cnf(23, 3, seed=2))
        assert count_models_by_size(ddnnf, kernel=INT64) == \
            count_models_by_size(ddnnf, kernel=PYTHON)


class TestMachineWidthFastpath:
    """The level-scheduled tape execution tier: arithmetic selection by
    a-priori bounds (float64 / int64 / CRT residue planes), per-shape
    fallback beyond capacity, and byte-identical Fractions throughout."""

    @staticmethod
    def _reference_diffs(tape):
        diffs = tape.backward_diffs(PYTHON, tape.forward(PYTHON))
        return {slot: [int(v) for v in row] for slot, row in diffs.items()
                if any(row)}

    @staticmethod
    def _assert_same_diffs(fast, reference):
        assert fast is not None
        assert set(fast) == set(reference)
        for slot, row in reference.items():
            got = fast[slot]
            assert got[:len(row)] == row
            assert not any(got[len(row):])

    @needs_numpy
    def test_tier_selection_by_bounds(self):
        import numpy as np

        small = plan_for(compile_tape(
            _compile(_disjoint_monotone_cnf(12, 3, seed=0))))
        assert small is not None and small.moduli is None
        assert small.dtype == np.float64

        mid = plan_for(compile_tape(
            _compile(_disjoint_monotone_cnf(20, 3, seed=0))))
        assert mid is not None and mid.moduli is None
        assert mid.dtype == np.int64
        assert 52 < mid.bound_bits <= 62

        wide = plan_for(compile_tape(
            _compile(_disjoint_monotone_cnf(23, 3, seed=0))))
        assert wide is not None and wide.moduli is not None
        assert wide.bound_bits > 63
        product = 1
        for prime in wide.moduli:
            product *= prime
        assert product > (1 << (wide.bound_bits + 1))

    @needs_numpy
    @pytest.mark.parametrize("n_clauses,width,seed", [
        (12, 3, 0), (12, 3, 1),   # float64 tier
        (20, 3, 0), (21, 3, 1),   # int64 tier
        (23, 3, 0), (23, 3, 1), (17, 4, 2),  # CRT tier (straddles 2^63)
    ])
    def test_fastpath_matches_reference_across_tiers(
        self, n_clauses, width, seed
    ):
        tape = compile_tape(
            _compile(_disjoint_monotone_cnf(n_clauses, width, seed)))
        stats = FastpathStats()
        fast = fastpath_diffs(tape, stats)
        assert stats.hits == 1 and stats.fallbacks == 0
        self._assert_same_diffs(fast, self._reference_diffs(tape))

    @needs_numpy
    def test_negated_lineage_on_the_fastpath(self):
        circuit = circuit_from_nested(
            ("or", ("and", "a", ("not", "b")), ("and", ("not", "a"), "b"))
        )
        tape = compile_tape(_compile(circuit))
        self._assert_same_diffs(
            fastpath_diffs(tape), self._reference_diffs(tape))

    @needs_numpy
    def test_beyond_crt_capacity_falls_back_exactly(self):
        # ~141 bits of magnitude: no prime set can certify it, so the
        # shape must decline the fast path and the interpreted pass
        # must produce the same exact Fractions.
        circuit = _disjoint_monotone_cnf(50, 3, seed=4)
        ddnnf = _compile(circuit)
        players = sorted(ddnnf.reachable_vars(), key=repr)
        tape = compile_tape(ddnnf)
        assert plan_for(tape) is None
        stats = FastpathStats()
        fast = shapley_all_facts(
            ddnnf, players, method="derivative", kernel="int64",
            tape=tape, fastpath_stats=stats,
        )
        assert stats.fallbacks == 1 and stats.hits == 0
        reference = shapley_all_facts(
            ddnnf, players, method="derivative", kernel="python", tape=tape,
        )
        assert fast == reference
        for value in fast.values():
            assert type(value) is Fraction

    @needs_numpy
    @pytest.mark.parametrize("n_clauses,seed", [(23, 0), (23, 5), (24, 1)])
    def test_straddling_2_63_stays_byte_identical(self, n_clauses, seed):
        circuit = _disjoint_monotone_cnf(n_clauses, 3, seed)
        ddnnf = _compile(circuit)
        players = sorted(ddnnf.reachable_vars(), key=repr)
        tape = compile_tape(ddnnf)
        forward_bits, _, _ = tape.bound_bits()
        assert forward_bits > 63  # engineered to straddle int64
        stats = FastpathStats()
        fast = shapley_all_facts(
            ddnnf, players, method="derivative", kernel="int64",
            tape=tape, fastpath_stats=stats,
        )
        assert stats.hits == 1
        reference = shapley_all_facts(
            ddnnf, players, method="derivative", kernel="python", tape=tape,
        )
        for fact in players:
            assert fast[fact].numerator == reference[fact].numerator
            assert fast[fact].denominator == reference[fact].denominator

    def test_general_negation_is_ineligible(self):
        circuit = Circuit()
        p, q = circuit.var("p"), circuit.var("q")
        circuit.output = circuit.not_(circuit.raw_and((p, q)))
        tape = compile_tape(circuit)
        assert plan_for(tape) is None

    def test_unavailable_without_numpy(self, monkeypatch):
        import repro.core.numerics.fixed as fixed

        monkeypatch.setattr(fixed, "HAS_NUMPY", False)
        tape = compile_tape(_compile(random_monotone_cnf(5, 4, 2, seed=1)))
        stats = FastpathStats()
        assert fastpath_diffs(tape, stats) is None
        assert stats.fallbacks == 1

    @needs_numpy
    def test_plan_is_cached_across_retargets(self):
        tape = compile_tape(_compile(random_monotone_cnf(6, 5, 3, seed=2)))
        plan = plan_for(tape)
        renamed = tape.with_labels({label: (label, 2)
                                    for label in tape.var_labels})
        assert plan_for(renamed) is plan

    @needs_numpy
    def test_session_reports_fastpath_counters(self):
        db = join_database(4, 2)
        with ExplainSession(
            db, method="exact",
            options=EngineOptions(numeric_backend="int64"),
        ) as session:
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert stats["fastpath_hits"] > 0
        assert stats["fastpath_hits"] + stats["fastpath_fallbacks"] == \
            len(results)
        with ExplainSession(db, method="exact") as baseline_session:
            baseline = baseline_session.explain_many(JOIN_QUERY)
            assert baseline_session.stats["fastpath_hits"] == 0
        assert {a: r.values for a, r in results.items()} == \
            {a: r.values for a, r in baseline.items()}


class TestCoefficientsCacheInfo:
    def test_bounded_cache_reports_hits_and_size(self):
        before = coefficients_cache_info()
        assert before["shapley_coefficients_cache_maxsize"] == 256
        shapley_coefficients(33)
        shapley_coefficients(33)
        PYTHON.equation3([1, 2, 3], None, 33)
        after = coefficients_cache_info()
        assert after["shapley_coefficients_cache_hits"] > \
            before["shapley_coefficients_cache_hits"]
        assert 0 < after["shapley_coefficients_cache_size"] <= 256


class TestFastpathRobustness:
    """Review regressions: stored-payload metadata must never weaken
    the machine-width tier's soundness, and odd-but-valid tapes must
    fall through gracefully instead of crashing."""

    @needs_numpy
    def test_understated_payload_bounds_cannot_arm_unsound_arithmetic(self):
        # A (buggy or foreign) writer understating `bounds` must not be
        # able to select a tier the shape overflows: the plan re-derives
        # its certificate from the instruction arrays.
        ddnnf = _compile(_disjoint_monotone_cnf(23, 3, seed=3))
        players = sorted(ddnnf.reachable_vars(), key=repr)
        honest_tape = compile_tape(ddnnf)
        payload = honest_tape.to_payload()
        payload["bounds"] = {
            "forward_bits": 8, "backward_bits": 8, "diff_bits": 8,
        }
        lying_tape = GateTape.from_payload(payload)
        plan = plan_for(lying_tape)
        assert plan is not None
        assert plan.bound_bits == max(honest_tape.bound_bits())
        assert plan.bound_bits > 63  # not fooled into a native tier
        fast = shapley_all_facts(
            ddnnf, players, method="derivative", kernel="int64",
            tape=lying_tape.with_labels({}),
        )
        reference = shapley_all_facts(
            ddnnf, players, method="derivative", kernel="python",
            tape=honest_tape,
        )
        assert fast == reference

    @needs_numpy
    def test_loaded_v2_schedule_is_consumed_and_exact(self):
        ddnnf = _compile(random_monotone_cnf(6, 5, 3, seed=4))
        fresh = compile_tape(ddnnf)
        loaded = GateTape.from_payload(fresh.to_payload())
        assert loaded._analysis["levels"] == fresh.level_schedule()
        fast = fastpath_diffs(loaded)
        reference = fastpath_diffs(fresh)
        assert fast == reference
        assert fast is not None

    @needs_numpy
    def test_empty_and_instruction_takes_the_fast_path(self):
        # ops=[AND] with no children is schema-valid and evaluates to
        # the constant polynomial [1] on the interpreted pass; the plan
        # must treat it the same way instead of crashing.
        tape = GateTape.from_payload({
            "ops": [4], "args": [[]], "gaps": [None], "nvars": [0],
            "var_labels": [], "source_gates": 1,
        })
        assert tape.forward(PYTHON) == [[1]]
        plan = plan_for(tape)
        assert plan is not None
        assert plan.execute() == {}

    @needs_numpy
    def test_oversized_buffers_decline_the_fast_path(self, monkeypatch):
        import repro.core.numerics.fixed as fixed

        monkeypatch.setattr(fixed, "MAX_BUFFER_ELEMENTS", 16)
        tape = compile_tape(_compile(random_monotone_cnf(6, 5, 3, seed=6)))
        stats = FastpathStats()
        assert fastpath_diffs(tape, stats) is None
        assert stats.fallbacks == 1
