"""Tests for the TPC-H / IMDB generators and query suites."""

import pytest

from repro.db import boolean_answer, lineage
from repro.workloads import (
    IMDB_ALL_QUERIES,
    IMDB_EXTRA_QUERIES,
    IMDB_QUERIES,
    TPCH_QUERIES,
    ImdbConfig,
    TpchConfig,
    describe,
    generate_imdb,
    generate_tpch,
    imdb_query,
    tpch_query,
)

TPCH_SMALL = TpchConfig(scale_factor=0.0003)
IMDB_SMALL = ImdbConfig(movies=120, people=150, companies=20)


@pytest.fixture(scope="module")
def tpch_db():
    return generate_tpch(TPCH_SMALL)


@pytest.fixture(scope="module")
def imdb_db():
    return generate_imdb(IMDB_SMALL)


class TestTpchGenerator:
    def test_deterministic(self):
        a = generate_tpch(TPCH_SMALL)
        b = generate_tpch(TPCH_SMALL)
        assert sorted(map(repr, a.facts())) == sorted(map(repr, b.facts()))

    def test_seed_changes_data(self):
        a = generate_tpch(TpchConfig(scale_factor=0.0003, seed=1))
        b = generate_tpch(TpchConfig(scale_factor=0.0003, seed=2))
        assert sorted(map(repr, a.facts())) != sorted(map(repr, b.facts()))

    def test_fixed_dimension_tables(self, tpch_db):
        assert len(tpch_db.relation("region")) == 5
        assert len(tpch_db.relation("nation")) == 25

    def test_cardinality_ratios(self, tpch_db):
        parts = len(tpch_db.relation("part"))
        assert len(tpch_db.relation("partsupp")) == 4 * parts
        orders = len(tpch_db.relation("orders"))
        lineitems = len(tpch_db.relation("lineitem"))
        assert orders < lineitems <= 7 * orders

    def test_scaling(self):
        small = generate_tpch(TpchConfig(scale_factor=0.0003))
        large = generate_tpch(TpchConfig(scale_factor=0.0006))
        assert len(large) > len(small)

    def test_endogenous_partition(self, tpch_db):
        endo_relations = {f.relation for f in tpch_db.endogenous_facts()}
        exo_relations = {f.relation for f in tpch_db.exogenous_facts()}
        assert "lineitem" in endo_relations
        assert exo_relations == {"region", "nation"}

    def test_dates_are_iso(self, tpch_db):
        order = tpch_db.relation("orders")[0]
        date = order.values[4]
        assert len(date) == 10 and date[4] == "-" and date[7] == "-"


class TestTpchQueries:
    def test_lookup(self):
        assert tpch_query("Q3").name == "Q3"
        with pytest.raises(KeyError):
            tpch_query("Q99")

    def test_suite_size(self):
        assert len(TPCH_QUERIES) == 8

    @pytest.mark.parametrize("spec", TPCH_QUERIES, ids=lambda s: s.name)
    def test_every_query_has_answers(self, tpch_db, spec):
        assert boolean_answer(spec.plan(tpch_db), tpch_db)

    def test_shapes_match_paper_style(self, tpch_db):
        shape = describe(tpch_query("Q3"), tpch_db)
        assert shape.joined_tables == 3
        assert shape.filter_conditions == 5
        shape5 = describe(tpch_query("Q5"), tpch_db)
        assert shape5.joined_tables == 6
        assert shape5.filter_conditions == 9

    def test_q19_filter_heavy(self, tpch_db):
        shape = describe(tpch_query("Q19"), tpch_db)
        assert shape.joined_tables == 2
        assert shape.filter_conditions >= 20

    def test_lineage_is_endogenous_only(self, tpch_db):
        spec = tpch_query("Q5")
        result = lineage(spec.plan(tpch_db), tpch_db, endogenous_only=True)
        for answer in result.tuples():
            for fact in result.facts_of(answer):
                assert tpch_db.is_endogenous(fact)


class TestImdbGenerator:
    def test_deterministic(self):
        a = generate_imdb(IMDB_SMALL)
        b = generate_imdb(IMDB_SMALL)
        assert sorted(map(repr, a.facts())) == sorted(map(repr, b.facts()))

    def test_dimension_tables_seeded_with_query_constants(self, imdb_db):
        keywords = {f.values[1] for f in imdb_db.relation("keyword")}
        assert {"superhero", "sequel", "character-name-in-title"} <= keywords
        infos = {f.values[1] for f in imdb_db.relation("info_type")}
        assert {"top 250 rank", "mini biography", "rating"} <= infos

    def test_skewed_fanout(self, imdb_db):
        """Zipf skew: the most popular movie has several times the cast
        of the median movie."""
        from collections import Counter

        casts = Counter(f.values[1] for f in imdb_db.relation("cast_info"))
        counts = sorted(casts.values())
        assert counts[-1] >= 4 * counts[len(counts) // 2]

    def test_endogenous_partition(self, imdb_db):
        exo = {f.relation for f in imdb_db.exogenous_facts()}
        assert "keyword" in exo and "company_name" in exo
        endo = {f.relation for f in imdb_db.endogenous_facts()}
        assert "cast_info" in endo and "title" in endo


class TestImdbQueries:
    def test_lookup(self):
        assert imdb_query("8d").name == "8d"
        with pytest.raises(KeyError):
            imdb_query("zz")

    def test_suite_size(self):
        assert len(IMDB_QUERIES) == 9
        assert len(IMDB_ALL_QUERIES) == 19

    @pytest.mark.parametrize("spec", IMDB_EXTRA_QUERIES, ids=lambda s: s.name)
    def test_extra_queries_have_answers(self, spec):
        db = generate_imdb()
        assert boolean_answer(spec.plan(db), db)

    def test_extra_query_lookup(self):
        assert imdb_query("14a").name == "14a"

    @pytest.mark.parametrize("spec", IMDB_QUERIES, ids=lambda s: s.name)
    def test_every_query_has_answers(self, spec):
        db = generate_imdb()  # default config, as used by benches
        assert boolean_answer(spec.plan(db), db)

    def test_table_counts_match_paper(self):
        db = generate_imdb(IMDB_SMALL)
        expected = {
            "1a": 5, "6b": 5, "7c": 8, "8d": 7, "11a": 8, "11d": 8,
            "13c": 9, "15d": 9, "16a": 8,
        }
        for name, tables in expected.items():
            assert describe(imdb_query(name), db).joined_tables == tables
