"""Tests for Algorithm 1 (exact Shapley from d-DNNF) and its two modes,
anchored on the paper's Example 2.1 and cross-checked against the naive
definition on random lineage."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, circuit_from_nested
from repro.core import (
    ShapleyTimeout,
    efficiency_gap,
    exact_shapley_of_circuit,
    game_from_circuit,
    shapley_all_facts,
    shapley_coefficients,
    shapley_naive,
    shapley_of_fact,
)
from repro.core.shapley import shapley_from_counts
from repro.db import lineage
from repro.workloads.flights import (
    EXPECTED_SHAPLEY,
    EXPECTED_SHAPLEY_Q2,
    fact,
    flights_database,
    flights_query,
    one_stop_query,
)
from repro.workloads.synthetic import random_monotone_dnf


def compiled_flights(query=None):
    db = flights_database()
    q = query or flights_query()
    plan = q.to_algebra(db.schema)
    result = lineage(plan, db, endogenous_only=True)
    return db, result.lineage_of(())


class TestCoefficients:
    def test_empty(self):
        assert shapley_coefficients(0) == []

    def test_n_two(self):
        assert shapley_coefficients(2) == [Fraction(1, 2), Fraction(1, 2)]

    @pytest.mark.parametrize("n", [1, 3, 5, 8])
    def test_weighted_sum_is_one(self, n):
        """sum_k C(n-1, k) * k!(n-k-1)!/n! == 1/n * n == 1 over all
        positions — the weights integrate to one over coalition sizes."""
        from math import comb

        weights = shapley_coefficients(n)
        assert sum(comb(n - 1, k) * w for k, w in enumerate(weights)) == 1


class TestRunningExample:
    def test_example_21_values(self):
        """The flagship check: all eight values of Example 2.1."""
        db, circuit = compiled_flights()
        values = exact_shapley_of_circuit(circuit, db.endogenous_facts())
        for name, expected in EXPECTED_SHAPLEY.items():
            assert values[fact(name)] == expected, name

    def test_example_53_q2_values(self):
        db, circuit = compiled_flights(one_stop_query())
        values = exact_shapley_of_circuit(circuit, db.endogenous_facts())
        for name, expected in EXPECTED_SHAPLEY_Q2.items():
            assert values[fact(name)] == expected, name

    def test_single_fact_mode(self):
        db, circuit = compiled_flights()
        ddnnf = _compile(circuit)
        value = shapley_of_fact(ddnnf, db.endogenous_facts(), fact("a1"))
        assert value == Fraction(43, 105)

    def test_unknown_fact_rejected(self):
        db, circuit = compiled_flights()
        with pytest.raises(ValueError):
            shapley_of_fact(_compile(circuit), db.endogenous_facts(), "not-a-fact")

    def test_null_player_gets_zero(self):
        db, circuit = compiled_flights()
        ddnnf = _compile(circuit)
        assert (
            shapley_of_fact(ddnnf, db.endogenous_facts(), fact("a8")) == 0
        )

    def test_null_player_out_invariance(self):
        """Shapley values are invariant to dropping null players, so
        computing over the lineage facts only must give the same values
        (this is what ShapleyExplainer.restrict_to_lineage relies on)."""
        db, circuit = compiled_flights()
        full = exact_shapley_of_circuit(circuit, db.endogenous_facts())
        restricted = exact_shapley_of_circuit(
            circuit, sorted(circuit.reachable_vars())
        )
        for key, value in restricted.items():
            assert full[key] == value


class TestModesAgree:
    @given(
        st.integers(4, 9),
        st.integers(2, 10),
        st.integers(1, 3),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_conditioning_vs_derivative(self, n_vars, n_terms, width, seed):
        circuit = random_monotone_dnf(n_vars, n_terms, width, seed)
        players = [f"x{i}" for i in range(n_vars)]
        ddnnf = _compile(circuit)
        a = shapley_all_facts(ddnnf, players, method="conditioning")
        b = shapley_all_facts(ddnnf, players, method="derivative")
        assert a == b

    @given(
        st.integers(3, 6),
        st.integers(1, 6),
        st.integers(1, 3),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_naive_definition(self, n_vars, n_terms, width, seed):
        circuit = random_monotone_dnf(n_vars, n_terms, width, seed)
        players = [f"x{i}" for i in range(n_vars)]
        ddnnf = _compile(circuit)
        exact = shapley_all_facts(ddnnf, players)
        naive = shapley_naive(game_from_circuit(circuit), players)
        assert exact == naive

    def test_unknown_method(self):
        db, circuit = compiled_flights()
        with pytest.raises(ValueError):
            shapley_all_facts(circuit, db.endogenous_facts(), method="magic")


class TestAxioms:
    @given(st.integers(4, 8), st.integers(1, 8), st.integers(1, 3),
           st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_efficiency(self, n_vars, n_terms, width, seed):
        circuit = random_monotone_dnf(n_vars, n_terms, width, seed)
        players = [f"x{i}" for i in range(n_vars)]
        ddnnf = _compile(circuit)
        values = shapley_all_facts(ddnnf, players)
        assert efficiency_gap(values, circuit, players) == 0

    def test_symmetry_in_running_example(self):
        db, circuit = compiled_flights()
        values = exact_shapley_of_circuit(circuit, db.endogenous_facts())
        assert values[fact("a2")] == values[fact("a3")]
        assert values[fact("a4")] == values[fact("a5")]
        assert values[fact("a6")] == values[fact("a7")]

    def test_monotone_lineage_values_nonnegative(self):
        db, circuit = compiled_flights()
        values = exact_shapley_of_circuit(circuit, db.endogenous_facts())
        assert all(v >= 0 for v in values.values())


class TestEdgeCases:
    def test_constant_true_circuit(self):
        circuit = circuit_from_nested(True)
        values = shapley_all_facts(circuit, ["p", "q"])
        assert values == {"p": 0, "q": 0}

    def test_constant_false_circuit(self):
        circuit = circuit_from_nested(False)
        values = shapley_all_facts(circuit, ["p"])
        assert values == {"p": 0}

    def test_no_players(self):
        circuit = circuit_from_nested(True)
        assert shapley_all_facts(circuit, []) == {}

    def test_single_variable(self):
        circuit = circuit_from_nested("x")
        assert shapley_all_facts(circuit, ["x"]) == {"x": Fraction(1)}

    def test_single_variable_among_many(self):
        circuit = circuit_from_nested("x")
        values = shapley_all_facts(circuit, ["x", "y", "z"])
        assert values["x"] == 1
        assert values["y"] == values["z"] == 0

    def test_negated_variable(self):
        # h(E) = 1 iff x not in E: Shapley(x) = -1 (x destroys the answer).
        circuit = circuit_from_nested(("not", "x"))
        values = shapley_all_facts(circuit, ["x"])
        assert values["x"] == Fraction(-1)

    def test_circuit_with_foreign_vars_rejected(self):
        circuit = circuit_from_nested(("or", "x", "intruder"))
        with pytest.raises(Exception):
            shapley_all_facts(circuit, ["x"])

    def test_deadline_exceeded(self):
        db, circuit = compiled_flights()
        with pytest.raises(ShapleyTimeout):
            shapley_all_facts(
                circuit, db.endogenous_facts(), deadline=0.0
            )

    def test_shapley_from_counts_padding(self):
        # Short count vectors are padded with zeros.
        value = shapley_from_counts([1], [0], 3)
        assert value == Fraction(2, 6)


def _compile(circuit: Circuit) -> Circuit:
    from repro.circuits import eliminate_auxiliary, tseytin_transform
    from repro.compiler import compile_cnf

    cnf = tseytin_transform(circuit)
    result = compile_cnf(cnf)
    return eliminate_auxiliary(result.circuit, set(cnf.labels.values()))
