"""Tests for CNF Proxy (Algorithm 2), anchored on the paper's worked
Examples 5.1, 5.3 and 5.4 and on Lemma 5.2 as a property."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Cnf, circuit_from_nested
from repro.core import (
    cnf_proxy_from_circuit,
    cnf_proxy_values,
    proxy_game,
    ranking,
    shapley_naive,
)
from repro.core.cnf_proxy import clause_weight
from repro.db import lineage
from repro.workloads.flights import (
    fact,
    flights_database,
    flights_query,
    one_stop_query,
)


def labelled(num_vars, clauses):
    return Cnf(
        num_vars, clauses, labels={v: f"x{v}" for v in range(1, num_vars + 1)}
    )


class TestClauseWeight:
    def test_positive_literal_no_negatives(self):
        # clause (x | y): weight 1/(2 * C(1,0)) = 1/2
        assert clause_weight(2, 0) == Fraction(1, 2)

    def test_width_three(self):
        assert clause_weight(3, 0) == Fraction(1, 3)

    def test_mixed_polarity(self):
        # (x | !z): positive literal weight 1/(2 * C(1,1)) = 1/2
        assert clause_weight(2, 1) == Fraction(1, 2)
        # (z | !x | !y): negative literal x: 1/(3 * C(2,1)) = 1/6
        assert clause_weight(3, 1) == Fraction(1, 6)


class TestExample51:
    """phi = (x1 | x2) & (x1 | x3 | x4)."""

    CNF = labelled(4, [(1, 2), (1, 3, 4)])
    PLAYERS = ["x1", "x2", "x3", "x4"]

    def test_true_shapley_values_of_phi(self):
        # The paper: 7/12, 3/12, 1/12, 1/12.
        def game(coalition):
            truth = {int(p[1:]) for p in coalition}
            return 1 if self.CNF.evaluate(truth) else 0

        values = shapley_naive(game, self.PLAYERS)
        assert values["x1"] == Fraction(7, 12)
        assert values["x2"] == Fraction(3, 12)
        assert values["x3"] == Fraction(1, 12)
        assert values["x4"] == Fraction(1, 12)

    def test_unnormalized_proxy_matches_paper(self):
        # The paper's Example 5.1 values 5/6, 1/2, 1/3, 1/3 correspond
        # to the proxy without the 1/n clause normalization.
        values = cnf_proxy_values(self.CNF, self.PLAYERS, normalize=False)
        assert values["x1"] == Fraction(5, 6)
        assert values["x2"] == Fraction(1, 2)
        assert values["x3"] == Fraction(1, 3)
        assert values["x4"] == Fraction(1, 3)

    def test_algorithm_2_normalizes_by_clause_count(self):
        normalized = cnf_proxy_values(self.CNF, self.PLAYERS)
        unnormalized = cnf_proxy_values(self.CNF, self.PLAYERS, normalize=False)
        assert all(normalized[p] * 2 == unnormalized[p] for p in self.PLAYERS)

    def test_order_preserved(self):
        proxy = cnf_proxy_values(self.CNF, self.PLAYERS)
        assert ranking(proxy)[0] == "x1"
        assert ranking(proxy)[1] == "x2"


class TestExample53:
    """CNF Proxy on the Tseytin CNF of the q2 lineage."""

    def setup_method(self):
        db = flights_database()
        plan = one_stop_query().to_algebra(db.schema)
        self.db = db
        self.circuit = lineage(plan, db, endogenous_only=True).lineage_of(())
        self.values = cnf_proxy_from_circuit(
            self.circuit, db.endogenous_facts()
        )

    def test_a6_value_matches_paper(self):
        # 1/44 - 1/132 = 1/66, printed in the paper.
        assert self.values[fact("a6")] == Fraction(1, 66)

    def test_a2_value(self):
        """a2 appears positively in two first-form clauses and
        negatively in *two* second-form clauses of the printed CNF, so
        Algorithm 2 yields 2/44 - 2/132 = 1/33.  (The paper's prose
        says 5/132 by counting only one second-form occurrence — that
        is inconsistent with its own CNF; the ranking conclusion is
        unaffected.)"""
        assert self.values[fact("a2")] == Fraction(1, 33)

    def test_middle_facts_rank_above_a6_a7(self):
        for name in ("a2", "a3", "a4", "a5"):
            assert self.values[fact(name)] > self.values[fact("a6")]
        assert self.values[fact("a6")] == self.values[fact("a7")]


class TestExample54:
    def test_proxy_misranks_a1(self):
        """Example 5.4: on the full query q, the proxy fails to rank a1
        (the most influential fact) at the top — the documented failure
        mode of the heuristic."""
        db = flights_database()
        plan = flights_query().to_algebra(db.schema)
        circuit = lineage(plan, db, endogenous_only=True).lineage_of(())
        values = cnf_proxy_from_circuit(circuit, db.endogenous_facts())
        top = ranking(values)[0]
        assert top != fact("a1")
        # ...but a2..a5 still dominate a6, a7 as in the exact order.
        assert values[fact("a2")] > values[fact("a6")]


class TestEdgeCases:
    def test_empty_cnf(self):
        values = cnf_proxy_values(Cnf(0), ["p"])
        assert values == {"p": Fraction(0)}

    def test_empty_clause_skipped(self):
        cnf = labelled(1, [(1,)])
        cnf.clauses.append(())
        values = cnf_proxy_values(cnf, ["x1"])
        assert values["x1"] == Fraction(1, 2)

    def test_non_endogenous_labels_ignored(self):
        cnf = labelled(2, [(1, 2)])
        values = cnf_proxy_values(cnf, ["x1"])
        assert set(values) == {"x1"}

    def test_all_negative_clause(self):
        cnf = labelled(2, [(-1, -2)])
        values = cnf_proxy_values(cnf, ["x1", "x2"])
        assert values["x1"] == -Fraction(1, 2)


clause_strategy = st.lists(
    st.lists(
        st.integers(1, 5).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=4,
    ).map(lambda lits: tuple(dict.fromkeys(lits)))
    .filter(lambda c: len({abs(l) for l in c}) == len(c)),
    min_size=1,
    max_size=6,
)


@given(clause_strategy)
@settings(max_examples=60, deadline=None)
def test_lemma_52_against_naive_shapley(clauses):
    """Lemma 5.2: Algorithm 2's closed form equals the Shapley values of
    the proxy game (sum of clauses / n), computed naively."""
    cnf = labelled(5, clauses)
    players = [f"x{v}" for v in range(1, 6)]
    closed_form = cnf_proxy_values(cnf, players)
    naive = shapley_naive(proxy_game(cnf), players)
    assert closed_form == naive
