"""Tests for pipelined cold-batch execution (PR 9).

Covers the scheduler's dependency-DAG mode (fleet-wide component
dedupe, critical-path-first ordering), the calibrating compile cost
model, the union-interval overlap measure behind
``pipeline_overlap_seconds``, the streaming compile/execute harness on
the thread and process transports (byte-identical Fractions vs the
warm-wave-barrier schedule), the session-level knobs
(``pipeline_execution``, ``pipeline_cost_scale``), and the one-pass
component phase of ``warm_ahead``.
"""

from fractions import Fraction

import pytest

from repro.engine import (
    ArtifactCache,
    EngineOptions,
    ExplainSession,
    PersistentArtifactStore,
)
from repro.engine.scheduler import (
    CompileCostModel,
    Job,
    artifact_component_planner,
    estimate_compile_cost,
    plan_batch,
    plan_pipeline,
)
from repro.engine.service.local import InProcessTransport, ProcessPoolTransport
from repro.engine.service.pipeline import interval_overlap, merge_intervals
from repro.workloads.synthetic import shared_block_circuits

from .test_store import JOIN_QUERY, join_database

#: Canonical-component-shaped keys (tuples of literal tuples) with
#: strictly decreasing structural cost: BIG > MID > SMALL.
BIG = ((1, 2, 3), (-1, 4), (2, 5), (-3, 6))
MID = ((1, 2), (-2, 3), (3, 4))
SMALL = ((7, 8),)


def _jobs_with_planner(spec):
    """Fake warm-wave jobs (one per affinity) plus a planner that
    returns each shape's component keys from ``spec``."""
    options = EngineOptions()
    jobs = [
        Job(index, (index,), None, [], options, affinity)
        for index, affinity in enumerate(spec)
    ]
    return jobs, lambda job: spec[job.signature]


def values_of(results):
    return {key: result.values for key, result in results.items()}


def build_jobs(circuits, cache, options=None):
    """Hand-built session jobs: one answer per circuit, opened against
    ``cache`` (mirrors ExplainSession._build_jobs)."""
    base = (options if options is not None else EngineOptions()).with_(
        cache=cache
    )
    jobs = []
    for index, circuit in enumerate(circuits):
        handle = cache.open(circuit)
        jobs.append(Job(
            index, (index,), circuit, sorted(handle.labels),
            base.with_(artifacts=handle), handle.signature,
        ))
    return jobs


class TestPlanPipeline:
    def test_components_dedupe_across_shapes(self):
        jobs, planner = _jobs_with_planner({
            "s1": [BIG, SMALL], "s2": [SMALL, MID],
        })
        pipeline = plan_pipeline(jobs, planner)
        keys = [component.key for component in pipeline.components]
        assert sorted(map(str, keys)) == sorted(map(str, [BIG, MID, SMALL]))
        # the shared component carries both owning shapes
        shared = next(c for c in pipeline.components if c.key == SMALL)
        assert set(shared.shapes) == {"s1", "s2"}

    def test_critical_path_first_ordering(self):
        # s1 owns the costliest total (BIG + MID); its components go
        # first, largest first; the cheap shape's component comes last.
        jobs, planner = _jobs_with_planner({
            "s2": [SMALL], "s1": [BIG, MID],
        })
        pipeline = plan_pipeline(jobs, planner)
        assert [c.key for c in pipeline.components] == [BIG, MID, SMALL]
        assert pipeline.needs["s1"] == (0, 1)
        assert pipeline.needs["s2"] == (2,)

    def test_shared_component_takes_the_max_owner_cost(self):
        # SMALL is owned by the expensive shape too, so it ranks with
        # that shape's critical path, ahead of the lone MID shape.
        jobs, planner = _jobs_with_planner({
            "s1": [BIG, SMALL], "s2": [MID], "s3": [SMALL],
        })
        pipeline = plan_pipeline(jobs, planner)
        assert [c.key for c in pipeline.components] == [BIG, SMALL, MID]

    def test_no_components_means_no_pipeline(self):
        jobs, planner = _jobs_with_planner({"s1": [], "s2": None})
        assert plan_pipeline(jobs, planner) is None

    def test_needs_are_sorted_index_tuples(self):
        jobs, planner = _jobs_with_planner({"s1": [SMALL, BIG, MID]})
        pipeline = plan_pipeline(jobs, planner)
        assert pipeline.needs["s1"] == (0, 1, 2)

    def test_estimates_rank_by_size(self):
        assert estimate_compile_cost(BIG) > estimate_compile_cost(MID) \
            > estimate_compile_cost(SMALL) > 0

    def test_plan_batch_threads_the_pipeline_through(self):
        jobs, planner = _jobs_with_planner({"s1": [BIG]})
        with_pipeline = plan_batch(
            "exact", jobs, True, component_planner=planner
        )
        assert with_pipeline.pipeline is not None
        assert plan_batch("exact", jobs, True).pipeline is None


class TestCompileCostModel:
    def test_uncalibrated_estimate_is_the_raw_score(self):
        model = CompileCostModel()
        assert model.estimate(BIG) == estimate_compile_cost(BIG)

    def test_first_observation_replaces_the_scale(self):
        model = CompileCostModel()
        raw = estimate_compile_cost(BIG)
        model.observe(BIG, 2.0 * raw)
        assert model.scale == pytest.approx(2.0)
        assert model.estimate(MID) == pytest.approx(
            2.0 * estimate_compile_cost(MID)
        )

    def test_later_observations_are_ewma_blended(self):
        model = CompileCostModel()
        raw = estimate_compile_cost(BIG)
        model.observe(BIG, 1.0 * raw)
        model.observe(BIG, 2.0 * raw)
        expected = 1.0 + CompileCostModel.ALPHA * (2.0 - 1.0)
        assert model.scale == pytest.approx(expected)

    def test_explicit_scale_starts_calibrated(self):
        model = CompileCostModel(scale=5.0)
        assert model.scale == 5.0
        raw = estimate_compile_cost(SMALL)
        model.observe(SMALL, 1.0 * raw)
        assert model.scale == pytest.approx(
            5.0 + CompileCostModel.ALPHA * (1.0 - 5.0)
        )

    def test_degenerate_observations_are_ignored(self):
        model = CompileCostModel()
        model.observe((), 1.0)       # zero raw score
        model.observe(BIG, -1.0)     # negative timing
        assert model.scale == 1.0


class TestIntervalOverlap:
    def test_merge_unions_and_drops_empty_spans(self):
        assert merge_intervals([(1.0, 3.0), (0.0, 2.0), (4.0, 4.0),
                                (5.0, 6.0)]) == [(0.0, 3.0), (5.0, 6.0)]

    def test_overlap_is_the_union_intersection(self):
        assert interval_overlap([(0.0, 10.0)],
                                [(2.0, 3.0), (4.0, 6.0)]) == 3.0
        # overlapping spans on one side must not double count
        assert interval_overlap([(0.0, 2.0), (1.0, 4.0)],
                                [(3.0, 5.0)]) == 1.0

    def test_disjoint_sides_overlap_zero(self):
        assert interval_overlap([(0.0, 1.0)], [(2.0, 3.0)]) == 0.0
        assert interval_overlap([], [(0.0, 1.0)]) == 0.0


class TestThreadPipelinedExecution:
    def test_shared_block_family_matches_the_barrier_schedule(self):
        # The headline parity: the fig7-style shared-block family under
        # the compile/execute pipeline returns Fractions byte-identical
        # to the classic warm-wave barrier, while compiling each of the
        # family's distinct components exactly once fleet-wide.
        circuits = shared_block_circuits(4)

        barrier_cache = ArtifactCache()
        barrier_plan = plan_batch(
            "exact", build_jobs(circuits, barrier_cache), True, batch=True,
        )
        assert barrier_plan.pipeline is None
        transport = InProcessTransport(4)
        try:
            baseline = transport.run_batch(barrier_plan)
        finally:
            transport.close()

        cache = ArtifactCache()
        plan = plan_batch(
            "exact", build_jobs(circuits, cache), True, batch=True,
            component_planner=artifact_component_planner("tape"),
        )
        pipeline = plan.pipeline
        assert pipeline is not None
        owned = sum(len(indexes) for indexes in pipeline.needs.values())
        distinct = len(pipeline.components)
        assert distinct < owned  # the fleet-wide dedupe bought something
        transport = InProcessTransport(4)
        try:
            results = transport.run_batch(plan)
        finally:
            transport.close()

        assert values_of(results) == values_of(baseline)
        for result in results.values():
            assert result.ok
            assert all(type(v) is Fraction for v in result.values.values())
        stats = cache.stats
        assert stats.component_pass_compiles == distinct
        assert stats.component_compilations == distinct
        assert stats.stitch_jobs == len(circuits)
        assert stats.pipeline_overlap_seconds >= 0.0
        assert stats.compile_calls == len(circuits)

    def test_ungated_shapes_run_alongside_gated_ones(self):
        # A mixed batch: one shape too small to plan components rides
        # the same pipelined batch as a gated shared-block shape.
        small_db_jobs = None  # built below from a tiny join
        circuits = shared_block_circuits(2, n_blocks=2)
        cache = ArtifactCache()
        jobs = build_jobs(circuits, cache)
        with ExplainSession(join_database(1, 2), method="exact",
                            cache=cache) as session:
            small_db_jobs = session._build_jobs(JOIN_QUERY, None)
        for offset, job in enumerate(small_db_jobs):
            job.index = len(jobs) + offset
            jobs.append(job)
        plan = plan_batch(
            "exact", jobs, True, batch=True,
            component_planner=artifact_component_planner("tape"),
        )
        assert plan.pipeline is not None
        # the tiny join shape plans no components: it is ungated
        gated = set(plan.pipeline.needs)
        assert len(gated) < plan.n_shapes
        transport = InProcessTransport(4)
        try:
            results = transport.run_batch(plan)
        finally:
            transport.close()
        assert len(results) == len(jobs)
        assert all(result.ok for result in results.values())


class TestProcessPipelinedExecution:
    def test_parity_over_a_shared_store(self, tmp_path):
        circuits = shared_block_circuits(3, n_blocks=3)

        barrier_cache = ArtifactCache()
        barrier_plan = plan_batch(
            "exact", build_jobs(circuits, barrier_cache), True, batch=True,
        )
        transport = InProcessTransport(3)
        try:
            baseline = transport.run_batch(barrier_plan)
        finally:
            transport.close()

        store = PersistentArtifactStore(str(tmp_path / "store"))
        cache = ArtifactCache(store=store)
        plan = plan_batch(
            "exact", build_jobs(circuits, cache), True, batch=True,
            component_planner=artifact_component_planner("tape"),
        )
        assert plan.pipeline is not None
        transport = ProcessPoolTransport(2, str(store.directory))
        try:
            results = transport.run_batch(plan)
        finally:
            transport.close()
        assert values_of(results) == values_of(baseline)
        for result in results.values():
            assert all(type(v) is Fraction for v in result.values.values())
        # pool workers did the compiles; the parent records the pass
        stats = cache.stats
        assert stats.component_pass_compiles == len(plan.pipeline.components)
        assert stats.stitch_jobs == len(circuits)


class TestSessionPipelineKnobs:
    def test_pipeline_off_matches_and_reports_no_pipeline_stats(self):
        db = join_database(6, 6)
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        with ExplainSession(
            db, method="exact",
            options=EngineOptions(pipeline_execution=False),
        ) as session:
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert values_of(results) == values_of(baseline)
        assert stats["component_pass_compiles"] == 0
        assert stats["stitch_jobs"] == 0
        assert stats["pipeline_overlap_seconds"] == 0.0

    def test_pipelined_session_reports_counters(self):
        db = join_database(6, 6)
        with ExplainSession(db, method="exact") as session:
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert all(result.ok for result in results.values())
        # one shape, one >=8-var component: one pass compile, one stitch
        assert stats["component_pass_compiles"] == 1
        assert stats["stitch_jobs"] == 1
        assert stats["compile_calls"] == 1

    def test_cost_scale_knob_seeds_the_model(self):
        with ExplainSession(
            join_database(2, 2), method="exact",
            options=EngineOptions(pipeline_cost_scale=4.0),
        ) as session:
            assert session.cost_model.scale == 4.0

    def test_process_executor_without_store_falls_back(self):
        # No shared store: pool workers could not see the parent's
        # components, so the session must not plan a pipeline.
        db = join_database(4, 6)
        with ExplainSession(db, method="exact", max_workers=2) as session:
            assert session._component_planner("process") is None
            assert session._component_planner("thread") is not None

    def test_second_batch_is_warm_and_unpipelined(self):
        db = join_database(6, 6)
        with ExplainSession(db, method="exact") as session:
            first = session.explain_many(JOIN_QUERY)
            second = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert values_of(first) == values_of(second)
        # the warm probe kept the second batch off the pipeline: no
        # extra pass compiles, no extra stitches, one compile total
        assert stats["component_pass_compiles"] == 1
        assert stats["stitch_jobs"] == 1
        assert stats["compile_calls"] == 1
        assert stats["tape_compilations"] == 1


class TestWarmAheadOnePass:
    def test_warm_ahead_reports_and_runs_the_component_pass(self):
        db = join_database(6, 6)
        with ExplainSession(db, method="exact") as session:
            status = session.warm_ahead(JOIN_QUERY)
            assert status["component_tasks"] == 1
            assert status["completed"] == 1 and status["failed"] == 0
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert all(result.ok for result in results.values())
        assert stats["component_pass_compiles"] == 1
        assert stats["compile_calls"] == 1  # the warm pass only

    def test_warm_ahead_dedupes_components_across_shapes(self):
        # Four shared-block shapes own 4 components each but only 5
        # distinct structures (pool_size = n_blocks + n_circuits - 1):
        # the one-pass phase compiles each distinct structure once.
        circuits = shared_block_circuits(2, n_blocks=4)
        cache = ArtifactCache()
        jobs = build_jobs(circuits, cache)
        plan = plan_batch(
            "exact", jobs, True,
            component_planner=artifact_component_planner("tape"),
        )
        pipeline = plan.pipeline
        owned = sum(len(indexes) for indexes in pipeline.needs.values())
        assert len(pipeline.components) < owned

    def test_parallel_component_phase_with_compile_jobs(self):
        db = join_database(4, 6)
        with ExplainSession(
            db, method="exact", options=EngineOptions(compile_jobs=2),
        ) as session:
            status = session.warm_ahead(JOIN_QUERY)
            assert status["component_tasks"] == 1
            assert status["completed"] == 1
            stats = session.stats
        assert stats["component_pass_compiles"] == 1
