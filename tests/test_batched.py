"""Tests for cross-answer batched LevelPlan execution (PR 8).

Covers the batch axis of the machine-width tier
(:func:`~repro.core.numerics.batched.batched_fastpath_diffs` and
:class:`~repro.core.numerics.batched.BatchLevelPlan`): parity with the
per-answer fast path across all three tiers, per-lane sentinel
fallback, mixed-shape and mixed-tier inputs, the configurable SoA
memory budget with its per-reason counters, the batched derivative
pipeline (:func:`~repro.core.shapley.shapley_all_facts_batched`,
:func:`~repro.core.pipeline.run_exact_batch`), shape-group scheduling,
the optional torch backend's graceful absence, and the headline
randomized property: batched and per-answer execution return
byte-identical Fractions across kernels and all three transports.
"""

import threading
from fractions import Fraction

import pytest

from repro.circuits import circuit_from_nested
from repro.core import shapley_all_facts
from repro.core.numerics import (
    HAS_NUMPY,
    HAS_TORCH,
    FastpathStats,
    Int64Kernel,
    available_kernels,
    batched_fastpath_diffs,
    compile_tape,
    fastpath_diffs,
    get_kernel,
    plan_with_reason,
)
from repro.core.numerics.fixed import budget_elements
from repro.core.pipeline import run_exact, run_exact_batch
from repro.core.shapley import shapley_all_facts_batched
from repro.engine import (
    ArtifactCache,
    Coordinator,
    EngineOptions,
    ExplainSession,
    run_worker,
)
from repro.engine.scheduler import Job, plan_batch

from .test_numerics import _compile, _disjoint_monotone_cnf
from .test_store import JOIN_QUERY, join_database

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="NumPy required")

#: (n_clauses, width, seed) per machine-width tier (see
#: test_numerics.TestMachineWidthFastpath for the boundary derivation).
FLOAT64_SHAPE = (12, 3, 0)
INT64_SHAPE = (20, 3, 0)
CRT_SHAPE = (23, 3, 0)
#: ~141 bits: beyond every tier, the whole shape declines the fast path.
FALLBACK_SHAPE = (50, 3, 4)


def _tape(shape):
    n_clauses, width, seed = shape
    return compile_tape(_compile(_disjoint_monotone_cnf(
        n_clauses, width, seed)))


def _group(tape, size):
    """``size`` re-targeted handles of one tape — the engine's shape
    group: they share the analysis box, labels differ per answer."""
    return [
        tape.with_labels({label: (label, i) for label in tape.var_labels})
        for i in range(size)
    ]


class TestBatchedFastpathParity:
    @needs_numpy
    @pytest.mark.parametrize(
        "shape", [FLOAT64_SHAPE, INT64_SHAPE, CRT_SHAPE],
        ids=["float64", "int64", "crt"])
    def test_batched_matches_per_answer_across_tiers(self, shape):
        tapes = _group(_tape(shape), 4)
        stats = FastpathStats()
        batched = batched_fastpath_diffs(tapes, stats)
        assert batched is not None
        assert stats.hits == 4 and stats.fallbacks == 0
        for tape, got in zip(tapes, batched):
            assert got == fastpath_diffs(tape)

    @needs_numpy
    def test_independently_compiled_isomorphic_tapes_batch(self):
        # No shared analysis box: shape identity falls back to the
        # instruction-array comparison and still batches as one group.
        a = _tape(FLOAT64_SHAPE)
        b = _tape(FLOAT64_SHAPE)
        assert a._analysis is not b._analysis
        batched = batched_fastpath_diffs([a, b])
        assert batched == [fastpath_diffs(a), fastpath_diffs(b)]

    @needs_numpy
    def test_mixed_shape_input_regroups_preserving_order(self):
        a = _group(_tape(FLOAT64_SHAPE), 2)
        b = _group(_tape(CRT_SHAPE), 2)
        tapes = [a[0], b[0], a[1], b[1]]
        stats = FastpathStats()
        batched = batched_fastpath_diffs(tapes, stats)
        assert stats.hits == 4
        for tape, got in zip(tapes, batched):
            assert got == fastpath_diffs(tape)

    @needs_numpy
    def test_mixed_tier_batch_with_an_ineligible_shape(self):
        # One batch spanning the float64 tier, the CRT tier, and a
        # shape beyond every tier: the eligible lanes keep their
        # machine-width results, the ineligible lanes come back None
        # (per-answer interpreted fallback) and are counted by reason.
        eligible = _group(_tape(FLOAT64_SHAPE), 2) + [_tape(CRT_SHAPE)]
        fallback = _tape(FALLBACK_SHAPE)
        assert plan_with_reason(fallback, budget_elements(None))[0] is None
        tapes = [eligible[0], fallback, eligible[1], eligible[2]]
        stats = FastpathStats()
        batched = batched_fastpath_diffs(tapes, stats)
        assert batched[1] is None
        assert stats.hits == 3
        assert stats.ineligible == 1 and stats.fallbacks == 1
        for slot in (0, 2, 3):
            assert batched[slot] == fastpath_diffs(tapes[slot])

    @needs_numpy
    def test_whole_group_ineligible_returns_none(self):
        tapes = _group(_tape(FALLBACK_SHAPE), 3)
        stats = FastpathStats()
        assert batched_fastpath_diffs(tapes, stats) is None
        assert stats.ineligible == 3 and stats.fallbacks == 3

    def test_empty_input(self):
        assert batched_fastpath_diffs([]) == []

    @needs_numpy
    def test_negated_lineage_batches(self):
        circuit = circuit_from_nested(
            ("or", ("and", "a", ("not", "b")), ("and", ("not", "a"), "b"))
        )
        tapes = _group(compile_tape(_compile(circuit)), 3)
        batched = batched_fastpath_diffs(tapes)
        assert batched == [fastpath_diffs(tape) for tape in tapes]


class TestFastpathBudget:
    @needs_numpy
    def test_budget_rejection_counted_per_lane(self):
        tapes = _group(_tape(FLOAT64_SHAPE), 3)
        stats = FastpathStats()
        assert batched_fastpath_diffs(tapes, stats, budget_bytes=64) is None
        assert stats.budget == 3 and stats.fallbacks == 3
        assert stats.hits == 0 and stats.overflow == 0

    @needs_numpy
    def test_chunked_execution_stays_exact(self):
        tape = _tape(CRT_SHAPE)
        plan, reason = plan_with_reason(tape, budget_elements(None))
        assert reason is None
        # Budget for exactly one lane: a 5-lane group runs in 5 chunks.
        budget = plan.lane_elements * 8
        tapes = _group(tape, 5)
        stats = FastpathStats()
        batched = batched_fastpath_diffs(tapes, stats, budget_bytes=budget)
        assert stats.hits == 5
        for lane_tape, got in zip(tapes, batched):
            assert got == fastpath_diffs(lane_tape)

    @needs_numpy
    def test_per_answer_budget_knob_matches_batched(self):
        tape = _tape(INT64_SHAPE)
        tiny = FastpathStats()
        assert fastpath_diffs(tape, tiny, budget_bytes=64) is None
        assert tiny.budget == 1
        roomy = FastpathStats()
        assert fastpath_diffs(tape, roomy, budget_bytes=1 << 26) is not None
        assert roomy.hits == 1

    @needs_numpy
    def test_session_budget_knob_counts_and_stays_exact(self):
        db = join_database(4, 2)
        baseline = {
            a: r.values
            for a, r in ExplainSession(db, method="exact")
            .explain_many(JOIN_QUERY).items()
        }
        with ExplainSession(
            db, method="exact",
            options=EngineOptions(numeric_backend="auto",
                                  fastpath_budget_bytes=64),
        ) as session:
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert stats["fastpath_budget_fallbacks"] == len(results)
        assert stats["fastpath_hits"] == 0
        assert {a: r.values for a, r in results.items()} == baseline


class TestShapleyAllFactsBatched:
    def _players(self, tape, i):
        return [(label, i) for label in tape.var_labels]

    @pytest.mark.parametrize("kernel", ["python", "auto", "torch"])
    def test_group_fractions_identical_to_per_answer(self, kernel):
        tape = _tape(FLOAT64_SHAPE)
        tapes = _group(tape, 3)
        endo = [self._players(tape, i) for i in range(3)]
        batched = shapley_all_facts_batched(tapes, endo, kernel=kernel)
        for lane_tape, players, values in zip(tapes, endo, batched):
            reference = shapley_all_facts(
                None, players, method="derivative", tape=lane_tape,
                kernel="python",
            )
            assert values == reference
            for fact in players:
                assert type(values[fact]) is Fraction
                assert values[fact].numerator == reference[fact].numerator
                assert (values[fact].denominator
                        == reference[fact].denominator)

    @needs_numpy
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("kernel", ["int64", "torch"])
    def test_randomized_mixed_tier_batch_parity(self, seed, kernel):
        # The property test of the PR: a batch mixing lanes from every
        # tier (float64 / CRT / beyond-capacity fallback) in a seeded
        # shuffled order returns byte-identical Fractions to the
        # interpreted per-answer pass, on every machine-width kernel.
        import random

        rng = random.Random(seed)
        shapes = [FLOAT64_SHAPE, CRT_SHAPE, FALLBACK_SHAPE]
        lanes = []
        for shape in shapes:
            lanes.extend([_tape(shape)] * rng.randint(1, 3))
        rng.shuffle(lanes)
        tapes, endo = [], []
        for i, base in enumerate(lanes):
            tapes.append(base.with_labels(
                {label: (label, i) for label in base.var_labels}))
            endo.append(self._players(base, i))
        stats = FastpathStats()
        batched = shapley_all_facts_batched(
            tapes, endo, kernel=kernel, fastpath_stats=stats)
        assert stats.hits + stats.fallbacks == len(tapes)
        assert stats.ineligible > 0  # the fallback shape was present
        for lane_tape, players, values in zip(tapes, endo, batched):
            reference = shapley_all_facts(
                None, players, method="derivative", tape=lane_tape,
                kernel="python",
            )
            assert values == reference
            for fact in players:
                assert type(values[fact]) is Fraction

    def test_length_mismatch_rejected(self):
        tape = _tape(FLOAT64_SHAPE)
        with pytest.raises(ValueError, match="equal length"):
            shapley_all_facts_batched([tape], [])

    def test_empty_endo_list_yields_empty_dict(self):
        tape = _tape(FLOAT64_SHAPE)
        players = self._players(tape, 1)
        out = shapley_all_facts_batched(
            _group(tape, 2), [[], players])
        assert out[0] == {}
        assert set(out[1]) == set(players)


class TestRunExactBatch:
    def _answers(self, size):
        circuit = _disjoint_monotone_cnf(4, 2, seed=1)
        circuits, endo = [], []
        for i in range(size):
            renamed = circuit.rename(
                {label: (label, i) for label in circuit.reachable_vars()})
            circuits.append(renamed)
            endo.append(sorted(renamed.reachable_vars(), key=repr))
        return circuits, endo

    def test_parity_with_the_per_answer_loop(self):
        circuits, endo = self._answers(5)
        cache = ArtifactCache()
        outcomes = run_exact_batch(circuits, endo, cache=cache,
                                   numeric_backend="auto")
        for circuit, players, outcome in zip(circuits, endo, outcomes):
            reference = run_exact(circuit, players)
            assert outcome.ok and outcome.values == reference.values
        assert cache.stats.batched_groups == 1
        assert cache.stats.batched_answers == 5

    def test_batched_timings_report_the_group_pass(self):
        circuits, endo = self._answers(3)
        outcomes = run_exact_batch(circuits, endo, cache=ArtifactCache(),
                                   numeric_backend="auto")
        for outcome in outcomes:
            if not HAS_NUMPY:
                break
            assert "batch_exec" in outcome.timings
            assert any(key.startswith("tier_") for key in outcome.timings)

    def test_singleton_delegates_to_run_exact(self):
        circuits, endo = self._answers(1)
        cache = ArtifactCache()
        outcomes = run_exact_batch(circuits, endo, cache=cache)
        assert len(outcomes) == 1 and outcomes[0].ok
        assert cache.stats.batched_groups == 0


class TestShapeGroupScheduling:
    def _jobs(self, signatures):
        options = EngineOptions()
        return [
            Job(index=i, answer=(i,), circuit=None, players=[],
                options=options, signature=signature)
            for i, signature in enumerate(signatures)
        ]

    def test_plan_batch_emits_shape_groups(self):
        jobs = self._jobs(["s1", "s1", "s1", "s2", "s2"])
        plan = plan_batch("exact", jobs, deduplicate=True, batch=True)
        assert plan.batched
        assert [job.index for job in plan.warm_wave] == [0, 3]
        assert [[job.index for job in group] for group in plan.groups] \
            == [[1, 2], [4]]

    def test_unbatched_plans_default_to_singleton_groups(self):
        jobs = self._jobs(["s1", "s1", "s2"])
        plan = plan_batch("exact", jobs, deduplicate=True)
        assert not plan.batched
        assert [[job.index for job in group] for group in plan.groups] \
            == [[job.index] for job in plan.main_wave]

    def test_unknown_signatures_never_group(self):
        jobs = self._jobs([None, None, None])
        plan = plan_batch("exact", jobs, deduplicate=True, batch=True)
        assert plan.batched and plan.groups == []
        assert len(plan.warm_wave) == 3


@pytest.fixture
def fleet(tmp_path):
    """A live coordinator with two in-thread workers sharing a store."""
    coordinator = Coordinator().start()
    store_dir = str(tmp_path / "fleet-store")
    ready = threading.Barrier(3, timeout=10)
    threads = [
        threading.Thread(
            target=run_worker,
            args=(coordinator.address,),
            kwargs={"cache_dir": store_dir, "on_ready": ready.wait},
            daemon=True,
        )
        for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    ready.wait()
    coordinator.wait_for_workers(2, timeout=10)
    yield coordinator
    coordinator.shutdown()
    for thread in threads:
        thread.join(timeout=10)


class TestBatchedTransportParity:
    def test_identical_fractions_across_kernels_and_transports(self, fleet):
        # The acceptance matrix: batched execution on three kernels x
        # three transports == the unbatched reference, byte for byte.
        db = join_database(6, 2)
        baseline = ExplainSession(
            db, method="exact",
            options=EngineOptions(batch_execution=False),
        ).explain_many(JOIN_QUERY)
        expected = {a: r.values for a, r in baseline.items()}
        for backend in ("python", "auto", "torch"):
            with ExplainSession(
                db, method="exact", max_workers=2,
                options=EngineOptions(numeric_backend=backend),
                coordinator=fleet.address, min_workers=2,
            ) as session:
                for executor in ("thread", "process", "socket"):
                    results = session.explain_many(
                        JOIN_QUERY, executor=executor)
                    got = {a: r.values for a, r in results.items()}
                    assert got == expected, (backend, executor)
                    for values in got.values():
                        assert all(type(v) is Fraction
                                   for v in values.values()), \
                            (backend, executor)

    def test_thread_session_reports_batched_counters(self):
        db = join_database(6, 2)
        with ExplainSession(
            db, method="exact",
            options=EngineOptions(numeric_backend="auto"),
        ) as session:
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert all(r.ok for r in results.values())
        # six isomorphic answers, one shape: the warm representative
        # runs alone, the other five execute as one batched group.
        assert stats["batched_groups"] == 1
        assert stats["batched_answers"] == 5

    def test_socket_workers_report_batched_counters(self, fleet):
        db = join_database(6, 2)
        with ExplainSession(
            db, method="exact", executor="socket",
            options=EngineOptions(numeric_backend="auto"),
            coordinator=fleet.address, min_workers=2,
        ) as session:
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert all(r.ok for r in results.values())
        assert stats["remote_batched_groups"] >= 1
        assert stats["remote_batched_answers"] >= 5

    def test_batch_execution_off_disables_grouping(self):
        db = join_database(5, 2)
        with ExplainSession(
            db, method="exact",
            options=EngineOptions(numeric_backend="auto",
                                  batch_execution=False),
        ) as session:
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert all(r.ok for r in results.values())
        assert stats["batched_groups"] == 0
        assert stats["batched_answers"] == 0

    def test_non_derivative_mode_skips_batching(self):
        db = join_database(4, 2)
        with ExplainSession(
            db, method="exact",
            options=EngineOptions(mode="conditioning"),
        ) as session:
            results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert all(r.ok for r in results.values())
        assert stats["batched_groups"] == 0


class TestTorchBackendGating:
    def test_torch_is_a_registered_kernel_name(self):
        assert "torch" in available_kernels()

    @pytest.mark.skipif(HAS_TORCH, reason="torch installed")
    def test_absent_torch_falls_back_to_the_ladder(self):
        kernel = get_kernel("torch")
        if HAS_NUMPY:
            assert isinstance(kernel, Int64Kernel)
            assert kernel.name == "int64"
        else:
            assert kernel is get_kernel("python")

    @pytest.mark.skipif(HAS_TORCH, reason="torch installed")
    def test_absent_torch_strict_raises(self):
        with pytest.raises(ValueError, match="unavailable"):
            get_kernel("torch", strict=True)

    @needs_numpy
    def test_torch_backend_request_stays_exact(self):
        # With torch installed this routes the sweeps through the torch
        # backend; without it the NumPy path serves the request — the
        # results must be identical either way.
        tapes = _group(_tape(CRT_SHAPE), 3)
        batched = batched_fastpath_diffs(tapes, backend="torch")
        assert batched == [fastpath_diffs(tape) for tape in tapes]

    @pytest.mark.skipif(not HAS_TORCH, reason="torch not installed")
    def test_torch_sweeps_match_numpy_across_tiers(self):
        for shape in (FLOAT64_SHAPE, INT64_SHAPE, CRT_SHAPE):
            tapes = _group(_tape(shape), 3)
            via_torch = batched_fastpath_diffs(tapes, backend="torch")
            via_numpy = batched_fastpath_diffs(tapes)
            assert via_torch == via_numpy
