"""Tests for Proposition 3.1: Shapley via a PQE oracle."""

from fractions import Fraction

import pytest

from repro.core import (
    count_slices,
    interpolate_coefficients,
    shapley_all_via_pqe,
    shapley_naive_query,
    shapley_via_pqe,
)
from repro.db import Database, RelationSchema, Schema, cq
from repro.probdb import pqe_lifted, pqe_naive
from repro.workloads.flights import (
    EXPECTED_SHAPLEY,
    fact,
    flights_database,
    flights_query,
)


class TestInterpolation:
    def test_linear(self):
        points = [(Fraction(0), Fraction(1)), (Fraction(1), Fraction(3))]
        assert interpolate_coefficients(points) == [Fraction(1), Fraction(2)]

    def test_quadratic(self):
        # p(z) = 2 + 0 z + 5 z^2
        poly = lambda z: 2 + 5 * z * z
        points = [(Fraction(z), Fraction(poly(z))) for z in (1, 2, 3)]
        assert interpolate_coefficients(points) == [
            Fraction(2), Fraction(0), Fraction(5),
        ]

    def test_degree_zero(self):
        assert interpolate_coefficients([(Fraction(7), Fraction(4))]) == [
            Fraction(4)
        ]


def small_db():
    schema = Schema.of(
        RelationSchema.of("R", "a"),
        RelationSchema.of("S", "a", "b"),
    )
    db = Database(schema)
    db.add("R", 1)
    db.add("R", 2)
    db.add("S", 1, 10)
    db.add("S", 2, 20, endogenous=False)
    return db


class TestCountSlices:
    def test_matches_direct_enumeration(self):
        db = small_db()
        q = cq(None, "R(x)", "S(x, y)")
        slices = count_slices(q, db)
        # Direct: endo facts are R(1), R(2), S(1,10); exo S(2,20).
        from itertools import combinations

        from repro.db import boolean_answer

        plan = q.to_algebra(db.schema)
        endo = db.endogenous_facts()
        expected = [0] * (len(endo) + 1)
        for k in range(len(endo) + 1):
            for subset in combinations(endo, k):
                world = db.restrict_endogenous(set(subset))
                if boolean_answer(plan, world):
                    expected[k] += 1
        assert slices == expected

    def test_total_is_satisfying_subsets(self):
        db = small_db()
        q = cq(None, "R(x)", "S(x, y)")
        slices = count_slices(q, db)
        # {R2} alone satisfies via exogenous S(2,20): every subset with
        # R(2) works (4), plus subsets with R(1), S(1,10) and no R(2) (1).
        assert sum(slices) == 5


class TestShapleyViaPqe:
    def test_flights_example_with_lineage_oracle(self):
        db = flights_database()
        q = flights_query()
        value = shapley_via_pqe(q, db, fact("a1"))
        assert value == EXPECTED_SHAPLEY["a1"]

    def test_flights_null_player(self):
        db = flights_database()
        value = shapley_via_pqe(flights_query(), db, fact("a8"))
        assert value == 0

    def test_all_facts_small_db(self):
        db = small_db()
        q = cq(None, "R(x)", "S(x, y)")
        via_pqe = shapley_all_via_pqe(q, db)
        naive = shapley_naive_query(q.to_algebra(db.schema), db)
        assert via_pqe == naive

    def test_lifted_oracle_on_hierarchical_query(self):
        """The reduction composed with *lifted* inference: a fully
        polynomial pipeline for safe queries."""
        db = small_db()
        q = cq(None, "R(x)", "S(x, y)")
        naive = shapley_naive_query(q.to_algebra(db.schema), db)
        for f in db.endogenous_facts():
            assert shapley_via_pqe(q, db, f, oracle=pqe_lifted) == naive[f]

    def test_naive_oracle(self):
        db = small_db()
        q = cq(None, "R(x)", "S(x, y)")
        f = db.endogenous_facts()[0]
        assert shapley_via_pqe(q, db, f, oracle=pqe_naive) == shapley_via_pqe(
            q, db, f
        )

    def test_non_endogenous_fact_rejected(self):
        db = small_db()
        q = cq(None, "R(x)", "S(x, y)")
        exo = [f for f in db.facts() if not db.is_endogenous(f)][0]
        with pytest.raises(ValueError):
            shapley_via_pqe(q, db, exo)

    def test_inexact_oracle_detected(self):
        db = small_db()
        q = cq(None, "R(x)", "S(x, y)")

        def sloppy_oracle(query, tid):
            return 0.3333333  # not a consistent polynomial evaluation

        with pytest.raises(ArithmeticError):
            count_slices(q, db, oracle=sloppy_oracle)
