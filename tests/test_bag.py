"""Tests for bag semantics via copy identifiers (paper Section 7)."""

from fractions import Fraction

import pytest

from repro.core import exact_shapley_of_circuit
from repro.db import Database, RelationSchema, Schema, lineage, plan_sql
from repro.db.bag import (
    COPY_ATTRIBUTE,
    BagTable,
    bag_relation,
    bag_schema,
    tuple_contribution,
)


def base_schema():
    return Schema.of(
        RelationSchema.of("R", ("a", int)),
        RelationSchema.of("S", ("a", int), ("b", int)),
    )


class TestEncoding:
    def test_bag_relation_appends_copy_attr(self):
        rel = bag_relation(base_schema().relation("R"))
        assert rel.attribute_names == ("a", COPY_ATTRIBUTE)

    def test_bag_relation_idempotent(self):
        rel = bag_relation(bag_relation(base_schema().relation("R")))
        assert rel.attribute_names.count(COPY_ATTRIBUTE) == 1

    def test_bag_schema_partial(self):
        schema = bag_schema(base_schema(), relations=["R"])
        assert schema.relation("R").attribute_names[-1] == COPY_ATTRIBUTE
        assert schema.relation("S").attribute_names[-1] == "b"

    def test_bag_table_rejects_plain_relation(self):
        db = Database(base_schema())
        with pytest.raises(ValueError):
            BagTable(db, "R")


class TestMultiplicities:
    def test_copies_are_distinct_facts(self):
        db = Database(bag_schema(base_schema(), ["R"]))
        table = BagTable(db, "R")
        facts = table.add(7, multiplicity=3)
        assert len(facts) == 3
        assert len(set(facts)) == 3
        assert table.copies_of(7) == facts

    def test_incremental_copy_ids(self):
        db = Database(bag_schema(base_schema(), ["R"]))
        table = BagTable(db, "R")
        table.add(7, multiplicity=2)
        more = table.add(7, multiplicity=1)
        assert more[0].values[-1] == 2

    def test_multiplicity_validation(self):
        db = Database(bag_schema(base_schema(), ["R"]))
        table = BagTable(db, "R")
        with pytest.raises(ValueError):
            table.add(7, multiplicity=0)


class TestShapleyUnderBags:
    def test_copies_share_contribution(self):
        """Two copies of the same tuple split the contribution a single
        copy would get — the symmetric treatment the paper predicts."""
        schema = bag_schema(
            Schema.of(RelationSchema.of("R", ("a", int))), ["R"]
        )
        db = Database(schema)
        table = BagTable(db, "R")
        single = db_copy = None

        copies = table.add(1, multiplicity=2)
        plan = plan_sql("SELECT a FROM R WHERE a = 1", schema)
        result = lineage(plan, db, endogenous_only=True)
        circuit = result.lineage_of((1,))
        values = exact_shapley_of_circuit(circuit, db.endogenous_facts())
        assert values[copies[0]] == values[copies[1]] == Fraction(1, 2)
        assert tuple_contribution(values, copies) == 1

    def test_tuple_contribution_empty(self):
        assert tuple_contribution({}, []) == 0
