"""Tests for the codebase invariant lint (repro.analysis.lint):
per-rule positives, negatives, scoping, inline suppression, the REP004
lock-order analyzer on synthetic deadlocks, and a clean run over the
real source tree (including the PR 6 coordinator locks)."""

from pathlib import Path
from textwrap import dedent

from repro.analysis.lint import (
    LockOrderGraph,
    analyze_lock_order,
    lint_paths,
    lint_source,
    main as lint_main,
)

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def findings(path: str, source: str):
    return lint_source(path, dedent(source))


def rules(path: str, source: str) -> list[str]:
    return [f.rule for f in findings(path, source)]


class TestRep001SeededRandomness:
    def test_unseeded_random_instance_flagged(self):
        assert rules(
            "src/repro/core/foo.py",
            """
            import random
            rng = random.Random()
            """,
        ) == ["REP001"]

    def test_seeded_random_instance_clean(self):
        assert rules(
            "src/repro/core/foo.py",
            """
            import random
            rng = random.Random(17)
            """,
        ) == []

    def test_global_rng_function_flagged(self):
        assert rules(
            "src/repro/core/foo.py",
            """
            import random
            value = random.choice(items)
            """,
        ) == ["REP001"]

    def test_method_on_instance_clean(self):
        assert rules(
            "src/repro/core/foo.py",
            """
            import random
            rng = random.Random(3)
            value = rng.choice(items)
            """,
        ) == []

    def test_from_import_and_alias_tracked(self):
        assert rules(
            "src/repro/core/foo.py",
            """
            from random import Random, shuffle
            import random as rnd
            r = Random()
            shuffle(xs)
            rnd.seed()
            """,
        ) == ["REP001", "REP001", "REP001"]

    def test_numpy_global_rng_flagged_seeded_generator_clean(self):
        assert rules(
            "src/repro/core/foo.py",
            """
            import numpy as np
            np.random.shuffle(xs)
            good = np.random.default_rng(7)
            bad = np.random.default_rng()
            """,
        ) == ["REP001", "REP001"]

    def test_workload_generators_exempt(self):
        assert rules(
            "src/repro/workloads/gen.py",
            """
            import random
            random.shuffle(xs)
            """,
        ) == []

    def test_inline_suppression(self):
        assert rules(
            "src/repro/core/foo.py",
            """
            import random
            rng = random.Random()  # repro: allow=REP001 fuzzing helper
            """,
        ) == []


class TestRep002UnsortedIteration:
    def test_set_iteration_flagged_in_scope(self):
        assert rules(
            "src/repro/circuits/foo.py",
            """
            items = {1, 2, 3}
            for item in items:
                print(item)
            """,
        ) == ["REP002"]

    def test_sorted_iteration_clean(self):
        assert rules(
            "src/repro/circuits/foo.py",
            """
            items = {1, 2, 3}
            for item in sorted(items):
                print(item)
            """,
        ) == []

    def test_dict_value_views_flagged(self):
        assert rules(
            "src/repro/compiler/knowledge.py",
            """
            table = dict()
            out = [v for v in table.values()]
            """,
        ) == ["REP002"]

    def test_set_returning_call_flagged(self):
        assert rules(
            "src/repro/circuits/foo.py",
            """
            def walk(circuit):
                for v in circuit.reachable_vars():
                    yield v
            """,
        ) == ["REP002"]

    def test_len_and_membership_are_not_iteration(self):
        assert rules(
            "src/repro/circuits/foo.py",
            """
            items = {1, 2, 3}
            n = len(items)
            hit = 2 in items
            total = sum(items)
            """,
        ) == []

    def test_out_of_scope_module_ignored(self):
        assert rules(
            "src/repro/core/foo.py",
            """
            items = {1, 2}
            for item in items:
                print(item)
            """,
        ) == []

    def test_inline_suppression(self):
        assert rules(
            "src/repro/engine/cache.py",
            """
            items = {1, 2}
            for item in items:  # repro: allow=REP002 order-insensitive sum
                print(item)
            """,
        ) == []


class TestRep003FloatsInExactModules:
    def test_float_literal_flagged(self):
        assert rules(
            "src/repro/core/shapley.py",
            "half = 0.5\n",
        ) == ["REP003"]

    def test_float_call_flagged(self):
        assert rules(
            "src/repro/core/numerics/exact.py",
            "x = float(n)\n",
        ) == ["REP003"]

    def test_integers_and_fractions_clean(self):
        assert rules(
            "src/repro/core/shapley.py",
            """
            from fractions import Fraction
            value = Fraction(1, 2) + 3
            """,
        ) == []

    def test_out_of_scope_module_ignored(self):
        assert rules("src/repro/core/pipeline.py", "x = 0.5\n") == []


LOCK_CYCLE = """
import threading

class Service:
    def __init__(self):
        self.alpha = threading.Lock()
        self.beta = threading.Lock()

    def forward(self):
        with self.alpha:
            with self.beta:
                pass

    def backward(self):
        with self.beta:
            with self.alpha:
                pass
"""

LOCK_CALL_EDGE = """
import threading

class Service:
    def __init__(self):
        self.alpha = threading.Lock()
        self.beta = threading.Lock()

    def inner(self):
        with self.beta:
            pass

    def outer(self):
        with self.alpha:
            self.inner()
"""

LOCK_SELF = """
import threading

class Service:
    def __init__(self):
        self.guard = threading.Lock()

    def work(self):
        with self.guard:
            with self.guard:
                pass
"""


class TestRep004LockOrder:
    def test_opposite_nesting_reports_cycle(self):
        graph = analyze_lock_order([("src/repro/engine/service/x.py", LOCK_CYCLE)])
        assert graph.nodes == {"Service.alpha", "Service.beta"}
        assert ("Service.alpha", "Service.beta") in graph.edges
        assert ("Service.beta", "Service.alpha") in graph.edges
        assert any(
            f.rule == "REP004" and "cycle" in f.message for f in graph.findings
        )

    def test_edge_through_method_call_closure(self):
        graph = analyze_lock_order(
            [("src/repro/engine/service/x.py", LOCK_CALL_EDGE)]
        )
        assert ("Service.alpha", "Service.beta") in graph.edges
        assert graph.findings == []  # one direction only: no cycle

    def test_plain_lock_self_reacquisition_flagged(self):
        graph = analyze_lock_order([("src/repro/engine/service/x.py", LOCK_SELF)])
        assert [f.rule for f in graph.findings] == ["REP004"]

    def test_rlock_self_reacquisition_allowed(self):
        graph = analyze_lock_order(
            [
                (
                    "src/repro/engine/service/x.py",
                    LOCK_SELF.replace("threading.Lock", "threading.RLock"),
                )
            ]
        )
        assert graph.findings == []

    def test_real_concurrency_modules_include_coordinator_locks(self):
        findings, graph = lint_paths([SRC_DIR])
        # The PR 6 coordinator's batch lock and warmer task lock must be
        # part of the analyzed graph, and the real graph must be clean.
        assert "Coordinator._batch_lock" in graph.nodes
        assert "Coordinator._warm_lock" in graph.nodes
        assert "PersistentArtifactStore._lock" in graph.nodes
        assert [f for f in findings if f.rule == "REP004"] == []

    def test_resilience_layer_locks_are_analyzed_and_acyclic(self):
        # The fleet-resilience locks (health counters, backoff RNG,
        # fault-plan counters, per-link request serialization) must all
        # be visible to REP004, the documented ordering edges must be
        # present, and the whole real graph must stay acyclic.
        findings, graph = lint_paths([SRC_DIR])
        for node in ("Coordinator._health_lock", "Backoff._lock",
                     "FaultPlan._lock", "_WorkerLink.lock"):
            assert node in graph.nodes
        # counters fold into worker_stats while the batch lock is held
        assert ("Coordinator._batch_lock",
                "Coordinator._health_lock") in graph.edges
        # dispatch holds the batch lock while serializing on a link
        assert ("Coordinator._batch_lock",
                "_WorkerLink.lock") in graph.edges
        # _health_lock is a leaf by design: nothing is taken under it
        assert not any(src == "Coordinator._health_lock"
                       for src, _ in graph.edges)
        # no REP004 cycle findings, and independently: a topological
        # order of the full edge set exists
        assert [f for f in findings if f.rule == "REP004"] == []
        remaining = set(graph.edges)
        nodes = set(graph.nodes)
        while nodes:
            sinks = {n for n in nodes
                     if not any(src == n for src, _ in remaining)}
            assert sinks, f"lock graph has a cycle among {sorted(nodes)}"
            nodes -= sinks
            remaining = {(s, d) for s, d in remaining
                         if s not in sinks and d not in sinks}


class TestDriver:
    def test_full_source_tree_is_clean(self):
        findings, graph = lint_paths([SRC_DIR])
        assert findings == []
        assert isinstance(graph, LockOrderGraph)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "repro" / "core"
        clean.mkdir(parents=True)
        (clean / "ok.py").write_text("x = 1\n")
        assert lint_main([str(clean / "ok.py")]) == 0
        dirty = clean / "bad.py"
        dirty.write_text("import random\nr = random.Random()\n")
        assert lint_main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out

    def test_main_json_and_graph(self, capsys):
        assert lint_main([str(SRC_DIR), "--json", "--graph"]) == 0
        out = capsys.readouterr().out
        assert '"findings": []' in out or '"findings":[]' in out
        assert "Coordinator._batch_lock" in out
