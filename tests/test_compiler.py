"""Tests for the knowledge compiler (CNF -> decision-DNNF)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Cnf,
    check_decomposable,
    check_deterministic_exhaustive,
    circuit_from_nested,
    model_count,
)
from repro.compiler import (
    BudgetExceeded,
    CompilationBudget,
    compile_circuit,
    compile_cnf,
)
from repro.workloads.synthetic import intractable_cnf

from .test_circuit import nested_exprs


def brute_model_count(cnf: Cnf) -> int:
    count = 0
    for mask in range(1 << cnf.num_vars):
        truth = {v for v in range(1, cnf.num_vars + 1) if mask >> (v - 1) & 1}
        if cnf.evaluate(truth):
            count += 1
    return count


def labelled_cnf(num_vars, clauses) -> Cnf:
    return Cnf(num_vars, clauses, labels={v: f"x{v}" for v in range(1, num_vars + 1)})


clauses_strategy = st.lists(
    st.lists(
        st.integers(1, 6).flatmap(lambda v: st.sampled_from([v, -v])),
        min_size=1,
        max_size=4,
    ).map(lambda lits: tuple(dict.fromkeys(lits))),
    min_size=0,
    max_size=10,
)


class TestCorrectness:
    def test_empty_cnf_is_true(self):
        result = compile_cnf(labelled_cnf(3, []))
        assert result.circuit.kind(result.circuit.output_gate()).name == "TRUE"

    def test_unsat(self):
        result = compile_cnf(labelled_cnf(1, [(1,), (-1,)]))
        assert model_count(result.circuit) == 0

    def test_single_clause(self):
        result = compile_cnf(labelled_cnf(2, [(1, 2)]))
        assert model_count(result.circuit) == 3

    def test_xor_structure(self):
        # (x | y) & (!x | !y)  -- exactly-one
        result = compile_cnf(labelled_cnf(2, [(1, 2), (-1, -2)]))
        assert model_count(result.circuit) == 2

    @given(clauses_strategy)
    @settings(max_examples=120, deadline=None)
    def test_model_count_matches_brute_force(self, clauses):
        cnf = labelled_cnf(6, clauses)
        result = compile_cnf(cnf)
        circuit = result.circuit
        # Pad the count over variables missing from the compiled circuit.
        mentioned = len(circuit.reachable_vars())
        assert model_count(circuit) << (6 - mentioned) == brute_model_count(cnf)

    @given(clauses_strategy)
    @settings(max_examples=60, deadline=None)
    def test_output_is_d_and_d(self, clauses):
        cnf = labelled_cnf(6, clauses)
        circuit = compile_cnf(cnf).circuit
        assert check_decomposable(circuit)
        assert check_deterministic_exhaustive(circuit, limit=6)

    @given(clauses_strategy, st.sampled_from(["widest", "moms", "freq", "jw"]))
    @settings(max_examples=60, deadline=None)
    def test_heuristics_agree_on_count(self, clauses, heuristic):
        cnf = labelled_cnf(6, clauses)
        baseline = compile_cnf(cnf)
        other = compile_cnf(cnf, heuristic=heuristic)
        mentioned_a = len(baseline.circuit.reachable_vars())
        mentioned_b = len(other.circuit.reachable_vars())
        assert model_count(baseline.circuit) << (6 - mentioned_a) == model_count(
            other.circuit
        ) << (6 - mentioned_b)

    def test_unknown_heuristic(self):
        with pytest.raises(ValueError):
            compile_cnf(labelled_cnf(1, [(1,)]), heuristic="nope")


class TestStats:
    def test_stats_populated(self):
        cnf = labelled_cnf(4, [(1, 2), (3, 4), (-1, 3)])
        result = compile_cnf(cnf)
        assert result.stats.nodes == len(result.circuit)
        assert result.stats.seconds >= 0
        assert result.stats.decisions >= 1

    def test_component_split_detected(self):
        # Two independent clauses -> component decomposition.
        cnf = labelled_cnf(4, [(1, 2), (3, 4)])
        result = compile_cnf(cnf)
        assert result.stats.components_split >= 1

    def test_cache_hits_on_shared_subproblems(self):
        clauses = [(1, 2), (-1, 2), (2, 3), (3, 4), (-3, 4)]
        result = compile_cnf(labelled_cnf(4, clauses))
        assert result.stats.cache_entries >= 1


class TestBudgets:
    def test_node_budget_raises(self):
        cnf = intractable_cnf(n_vars=60, seed=5)
        with pytest.raises(BudgetExceeded):
            compile_cnf(cnf, budget=CompilationBudget(max_nodes=50))

    def test_time_budget_raises(self):
        cnf = intractable_cnf(n_vars=70, seed=5)
        with pytest.raises(BudgetExceeded):
            compile_cnf(cnf, budget=CompilationBudget(max_seconds=0.05))

    def test_generous_budget_succeeds(self):
        cnf = labelled_cnf(4, [(1, 2), (3, 4)])
        result = compile_cnf(cnf, budget=CompilationBudget(max_nodes=10_000))
        assert model_count(result.circuit) > 0


class TestCompileCircuit:
    @given(nested_exprs(), st.sets(st.sampled_from(["a", "b", "c", "d"])))
    @settings(max_examples=80, deadline=None)
    def test_semantics_preserved(self, expr, assignment):
        circuit = circuit_from_nested(expr)
        compiled = compile_circuit(circuit).circuit
        assert compiled.evaluate(assignment) == circuit.evaluate(assignment)

    @given(nested_exprs())
    @settings(max_examples=40, deadline=None)
    def test_output_vars_subset(self, expr):
        circuit = circuit_from_nested(expr)
        compiled = compile_circuit(circuit).circuit
        assert compiled.reachable_vars() <= circuit.variables()
