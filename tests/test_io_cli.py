"""Tests for CSV database I/O and the command-line interface."""

import pytest

from repro.cli import main
from repro.core.numerics import HAS_NUMPY
from repro.db import Database, RelationSchema, Schema
from repro.db.io import load_database, save_database
from repro.workloads import TpchConfig, generate_tpch
from repro.workloads.flights import flights_database


class TestDatabaseIo:
    def test_roundtrip_preserves_facts_and_partition(self, tmp_path):
        db = flights_database()
        save_database(db, tmp_path / "flights")
        back = load_database(tmp_path / "flights")
        assert sorted(map(repr, back.facts())) == sorted(map(repr, db.facts()))
        assert sorted(map(repr, back.endogenous_facts())) == sorted(
            map(repr, db.endogenous_facts())
        )

    def test_roundtrip_types(self, tmp_path):
        schema = Schema.of(
            RelationSchema.of("T", ("i", int), ("f", float), ("s", str))
        )
        db = Database(schema)
        db.add("T", 3, 2.5, "x")
        save_database(db, tmp_path / "t")
        back = load_database(tmp_path / "t")
        fact = back.relation("T")[0]
        assert fact.values == (3, 2.5, "x")
        assert isinstance(fact.values[0], int)
        assert isinstance(fact.values[1], float)

    def test_mixed_endogenous_relation(self, tmp_path):
        schema = Schema.of(RelationSchema.of("R", ("a", int)))
        db = Database(schema)
        endo = db.add("R", 1, endogenous=True)
        exo = db.add("R", 2, endogenous=False)
        save_database(db, tmp_path / "mixed")
        back = load_database(tmp_path / "mixed")
        assert back.is_endogenous(endo)
        assert not back.is_endogenous(exo)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_database(tmp_path)

    def test_tpch_roundtrip(self, tmp_path):
        db = generate_tpch(TpchConfig(scale_factor=0.0002))
        save_database(db, tmp_path / "tpch")
        back = load_database(tmp_path / "tpch")
        assert len(back) == len(db)
        assert len(back.relation("lineitem")) == len(db.relation("lineitem"))


class TestCli:
    def test_queries_listing(self, capsys):
        assert main(["queries", "--workload", "tpch"]) == 0
        out = capsys.readouterr().out
        assert "Q3" in out and "Q19" in out

    def test_queries_imdb_includes_extras(self, capsys):
        main(["queries", "--workload", "imdb"])
        out = capsys.readouterr().out
        assert "16a" in out and "14a" in out

    def test_explain_flights_exact(self, capsys):
        code = main(["explain", "--workload", "flights",
                     "--method", "exact", "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "exact Shapley values" in out
        assert "+0.409524" in out  # 43/105

    def test_explain_proxy(self, capsys):
        assert main(["explain", "--workload", "flights",
                     "--method", "proxy"]) == 0
        assert "proxy scores" in capsys.readouterr().out

    def test_generate_and_explain_from_data(self, tmp_path, capsys):
        out_dir = str(tmp_path / "db")
        assert main(["generate", "--workload", "tpch",
                     "--scale", "0.0002", "--out", out_dir]) == 0
        capsys.readouterr()
        code = main(["explain", "--data", out_dir, "--workload", "tpch",
                     "--query", "Q11", "--answer", "zzz",
                     "--method", "proxy"])
        # unknown answer: exit 2 with a hint listing real answers
        assert code == 2
        err = capsys.readouterr().err
        assert "available answers" in err

    def test_explain_with_valid_generated_answer(self, tmp_path, capsys):
        out_dir = str(tmp_path / "db")
        main(["generate", "--workload", "tpch", "--scale", "0.0002",
              "--out", out_dir])
        capsys.readouterr()
        main(["explain", "--data", out_dir, "--workload", "tpch",
              "--query", "Q11", "--answer", "bogus", "--method", "proxy"])
        err = capsys.readouterr().err
        listing = err.split(":")[-1]
        first = listing.split("(")[1].split(",")[0]
        code = main(["explain", "--data", out_dir, "--workload", "tpch",
                     "--query", "Q11", "--answer", first,
                     "--method", "hybrid", "--top", "3"])
        assert code == 0
        assert "facts" in capsys.readouterr().out

    def test_bench_flights(self, capsys):
        assert main(["bench", "--workload", "flights"]) == 0
        out = capsys.readouterr().out
        assert "100.0%" in out

    def test_bench_cache_dir_second_run_compiles_nothing(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert main(["bench", "--workload", "flights",
                     "--cache-dir", store]) == 0
        cold = capsys.readouterr().out
        assert "store:" in cold and "0 compilations" not in cold
        assert main(["bench", "--workload", "flights",
                     "--cache-dir", store]) == 0
        warm = capsys.readouterr().out
        assert "cache: 0 compilations" in warm
        assert "0 corrupt" in warm

    def test_bench_jobs_mode_process(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert main(["bench", "--workload", "flights", "--jobs-mode",
                     "process", "--jobs", "2", "--cache-dir", store]) == 0
        assert "100.0%" in capsys.readouterr().out

    def test_bench_no_cache_conflicts_with_cache_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["bench", "--workload", "flights", "--no-cache",
                  "--cache-dir", str(tmp_path / "s")])

    def test_explain_cache_dir(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        for _ in range(2):
            assert main(["explain", "--workload", "flights",
                         "--method", "exact", "--top", "2",
                         "--cache-dir", store]) == 0
        out = capsys.readouterr().out
        assert "+0.409524" in out  # same values as the uncached path
        assert any((tmp_path / "artifacts").iterdir())

    def test_sql_option(self, capsys):
        code = main(["explain", "--workload", "flights",
                     "--sql", "SELECT src FROM Flights WHERE dest = 'ORY'",
                     "--answer", "LHR", "--method", "exact"])
        assert code == 0
        assert "exact" in capsys.readouterr().out

    def test_bench_json_output(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "artifacts")
        assert main(["bench", "--workload", "flights",
                     "--cache-dir", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outputs"] == payload["ok"] == 1
        assert payload["transport"] == "thread"
        assert payload["stats"]["compile_calls"] > 0
        assert payload["stats"]["store_writes"] > 0
        # cnf + dnnf + tape plus the shape's memoized .comp sub-circuits
        assert payload["store_artifacts"] >= 3

    def test_bench_no_pipeline_matches_and_skips_the_pass(self, capsys):
        import json

        assert main(["bench", "--workload", "flights", "--json"]) == 0
        piped = json.loads(capsys.readouterr().out)
        assert main(["bench", "--workload", "flights", "--no-pipeline",
                     "--json"]) == 0
        barrier = json.loads(capsys.readouterr().out)
        # identical Fractions either way; only the pipelined run
        # performs the one-pass component phase
        assert piped["fractions_digest"] == barrier["fractions_digest"]
        assert barrier["stats"]["component_pass_compiles"] == 0
        assert barrier["stats"]["stitch_jobs"] == 0

    def test_bench_profile_reports_pipeline_stages(self, capsys):
        assert main(["bench", "--workload", "flights", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "pipeline:" in out
        assert "compile/execute overlap" in out

    def test_bench_compare_identical_runs(self, tmp_path, capsys):
        import json

        for name in ("a", "b"):
            assert main(["bench", "--workload", "flights", "--json"]) == 0
            (tmp_path / f"{name}.json").write_text(capsys.readouterr().out)
        assert main(["bench", "compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "fractions parity: identical" in out
        assert main(["bench", "compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical_fractions"] is True
        assert payload["outputs_match"] is True

    def test_bench_compare_flags_divergent_fractions(self, tmp_path, capsys):
        import json

        assert main(["bench", "--workload", "flights", "--json"]) == 0
        text = capsys.readouterr().out
        (tmp_path / "a.json").write_text(text)
        tampered = json.loads(text)
        tampered["fractions_digest"] = "0" * 64
        (tmp_path / "b.json").write_text(json.dumps(tampered))
        assert main(["bench", "compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_bench_compare_unreadable_file(self, tmp_path, capsys):
        assert main(["bench", "compare", str(tmp_path / "missing.json"),
                     str(tmp_path / "also-missing.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cache_warm_reports_component_tasks(self, tmp_path, capsys):
        store = str(tmp_path / "warmstore")
        assert main(["cache", "warm", store, "--workload", "flights"]) == 0
        out = capsys.readouterr().out
        assert "one-pass component phase: 1 distinct components" in out


class TestCliValidation:
    """Bad numeric flags die at argparse level (exit 2, a usage line)
    instead of surfacing a deep stack trace."""

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["bench", "--workload", "flights", "--jobs", "0"])
        assert exit_info.value.code == 2
        assert "--jobs: must be >= 1" in capsys.readouterr().err

    def test_jobs_must_be_an_integer(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["bench", "--workload", "flights", "--jobs", "two"])
        assert exit_info.value.code == 2
        assert "not an integer" in capsys.readouterr().err

    def test_max_store_bytes_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["bench", "--workload", "flights",
                  "--max-store-bytes", "0"])
        assert exit_info.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_max_store_bytes_accepts_suffixes(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert main(["bench", "--workload", "flights", "--cache-dir", store,
                     "--max-store-bytes", "64m"]) == 0
        capsys.readouterr()

    def test_socket_mode_requires_coordinator(self):
        with pytest.raises(SystemExit, match="--coordinator"):
            main(["bench", "--workload", "flights",
                  "--jobs-mode", "socket"])

    def test_max_store_bytes_requires_cache_dir(self):
        with pytest.raises(SystemExit, match="needs --cache-dir"):
            main(["bench", "--workload", "flights",
                  "--max-store-bytes", "64m"])
        with pytest.raises(SystemExit, match="needs --cache-dir"):
            main(["explain", "--workload", "flights",
                  "--max-store-bytes", "64m"])

    def test_coordinator_flags_require_socket_mode(self):
        with pytest.raises(SystemExit, match="only apply"):
            main(["bench", "--workload", "flights",
                  "--coordinator", "127.0.0.1:7341"])
        with pytest.raises(SystemExit, match="only apply"):
            main(["bench", "--workload", "flights", "--min-workers", "2"])

    def test_bad_coordinator_address_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["bench", "--workload", "flights", "--jobs-mode", "socket",
                  "--coordinator", "noport"])
        assert exit_info.value.code == 2
        assert "host:port" in capsys.readouterr().err

    def test_unknown_numeric_backend_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["bench", "--workload", "flights",
                  "--numeric-backend", "cuda"])
        assert exit_info.value.code == 2
        assert "--numeric-backend" in capsys.readouterr().err

    @pytest.mark.parametrize("backend", ["python", "numpy", "int64", "auto"])
    def test_numeric_backend_accepted_on_bench_and_explain(
        self, backend, capsys
    ):
        assert main(["bench", "--workload", "flights",
                     "--numeric-backend", backend]) == 0
        capsys.readouterr()
        assert main(["explain", "--workload", "flights", "--method",
                     "exact", "--numeric-backend", backend]) == 0
        capsys.readouterr()

    def test_repeats_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["bench", "--workload", "flights", "--repeats", "0"])
        assert exit_info.value.code == 2
        assert "--repeats: must be >= 1" in capsys.readouterr().err

    def test_bench_repeats_reports_min_and_median(self, capsys):
        import json

        assert main(["bench", "--workload", "flights",
                     "--repeats", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repeats"] == 3
        assert payload["warmup"] is True
        assert payload["seconds_min"] <= payload["seconds"]
        # warm-up plus three timed repeats, all answering
        assert payload["stats"]["answers_explained"] == 4 * payload["outputs"]

    def test_bench_single_run_stays_cold(self, capsys):
        import json

        assert main(["bench", "--workload", "flights", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repeats"] == 1
        assert payload["warmup"] is False

    def test_bench_profile_stage_breakdown(self, capsys):
        import json

        assert main(["bench", "--workload", "flights",
                     "--repeats", "2", "--profile", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        profile = payload["profile"]
        assert set(profile) == {
            "compile_seconds", "component_compile_seconds", "stitch_seconds",
            "tape_lower_seconds", "kernel_exec_seconds",
            "batch_exec_seconds", "tier_float64_seconds",
            "tier_int64_seconds", "tier_crt_seconds",
            "pipeline_overlap_seconds", "component_pass_compiles",
            "stitch_jobs",
        }
        assert all(value >= 0 for value in profile.values())
        # warm repeats serve the tape from cache: lowering stays cheaper
        # than the kernel execution it feeds
        assert profile["kernel_exec_seconds"] > 0
        assert main(["bench", "--workload", "flights", "--profile"]) == 0
        assert "tape-lower" in capsys.readouterr().out

    def test_bench_json_reports_fastpath_counters(self, capsys):
        import json

        assert main(["bench", "--workload", "flights",
                     "--numeric-backend", "auto", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["stats"]
        assert "fastpath_hits" in stats and "fastpath_fallbacks" in stats
        assert "shapley_coefficients_cache_hits" in stats
        if HAS_NUMPY:
            assert stats["fastpath_hits"] == payload["outputs"]


class TestCacheCli:
    def _populate(self, tmp_path, capsys) -> str:
        store = str(tmp_path / "artifacts")
        assert main(["bench", "--workload", "flights",
                     "--cache-dir", store]) == 0
        capsys.readouterr()
        return store

    def test_stats(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        assert main(["cache", "stats", store]) == 0
        out = capsys.readouterr().out
        assert "1 cnf, 1 dnnf, 1 tape" in out
        assert "comp" in out  # per-kind breakdown includes the new kind

    def test_stats_json(self, tmp_path, capsys):
        import json

        store = self._populate(tmp_path, capsys)
        assert main(["cache", "stats", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        kinds = payload["kinds"]
        assert set(kinds) == {"cnf", "dnnf", "tape", "comp"}
        assert [kinds[k]["files"] for k in ("cnf", "dnnf", "tape")] == [1, 1, 1]
        assert payload["artifacts"] == sum(k["files"] for k in kinds.values())
        assert payload["total_bytes"] == sum(k["bytes"] for k in kinds.values())
        assert payload["total_bytes"] > 0

    def test_ls_lists_artifacts_mru_first(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        assert main(["cache", "ls", store]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) >= 3
        assert {line.split()[1] for line in lines} >= {"cnf", "dnnf", "tape"}
        assert main(["cache", "ls", store, "--limit", "1"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 1
        assert main(["cache", "ls", store, "--kind", "tape"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines and all(line.split()[1] == "tape" for line in lines)

    def test_gc_trims_to_budget(self, tmp_path, capsys):
        import json

        store = self._populate(tmp_path, capsys)
        assert main(["cache", "gc", store, "--max-bytes", "1", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted"] >= 3
        assert report["remaining_files"] == 0
        assert main(["cache", "stats", store]) == 0
        assert "0 artifacts" in capsys.readouterr().out

    def test_gc_kind_budget_evicts_only_that_kind(self, tmp_path, capsys):
        import json

        store = self._populate(tmp_path, capsys)
        assert main(["cache", "gc", store, "--kind-budget", "tape=1",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted"] == 1  # only the tape artifact
        assert main(["cache", "stats", store, "--json"]) == 0
        kinds = json.loads(capsys.readouterr().out)["kinds"]
        assert kinds["tape"]["files"] == 0
        assert kinds["cnf"]["files"] == 1 and kinds["dnnf"]["files"] == 1

    def test_gc_max_age_evicts_stale_artifacts(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        assert main(["cache", "gc", store, "--max-age", "0"]) == 0
        assert "0 artifacts / 0 bytes remain" in capsys.readouterr().out

    def test_gc_requires_a_knob(self, tmp_path):
        with pytest.raises(SystemExit, match="--max-bytes"):
            main(["cache", "gc", str(tmp_path)])

    def test_warm_then_bench_compiles_nothing(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert main(["cache", "warm", store, "--workload", "flights"]) == 0
        out = capsys.readouterr().out
        assert "warmed 1/1 shapes" in out
        assert main(["bench", "--workload", "flights",
                     "--cache-dir", store]) == 0
        assert "cache: 0 compilations" in capsys.readouterr().out

    def test_warm_needs_a_target(self):
        with pytest.raises(SystemExit, match="--coordinator"):
            main(["cache", "warm", "--workload", "flights"])

    def test_missing_directory_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="not a directory"):
            main(["cache", "stats", str(tmp_path / "nope")])

    def test_bench_with_budget_keeps_store_bounded(self, tmp_path, capsys):
        store = str(tmp_path / "artifacts")
        assert main(["bench", "--workload", "flights", "--cache-dir", store,
                     "--max-store-bytes", "1k"]) == 0
        capsys.readouterr()
        from repro.engine import PersistentArtifactStore

        assert PersistentArtifactStore(store).total_bytes() <= 1024
