"""Tests for the static artifact verifier (repro.analysis.verify and
the ``repro verify`` CLI): a clean warmed store audits with zero
violations, and every checker fires on an artifact with that exact
violation injected."""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.analysis.verify import (
    DETERMINISM_LIMIT,
    check_circuit,
    verify_store,
)
from repro.circuits.circuit import AND, NOT, OR, VAR, Circuit
from repro.cli import main as cli_main
from repro.compiler.knowledge import canonical_component
from repro.core import run_exact
from repro.engine import ArtifactCache, PersistentArtifactStore
from repro.workloads.synthetic import bipartite_join_dnf


def warmed_store(tmp_path: Path) -> PersistentArtifactStore:
    """A store holding one real artifact of every kind: the warm run
    persists one cnf/dnnf/tape triple and one memoized component."""
    store = PersistentArtifactStore(tmp_path)
    circuit = bipartite_join_dnf(3, 3)
    players = sorted(circuit.reachable_vars())
    outcome = run_exact(circuit, players, cache=ArtifactCache(store=store))
    assert outcome.ok
    return store


def component_fixture() -> tuple[tuple, Circuit]:
    """A canonical clause-set key and a valid d-DNNF for it."""
    key = canonical_component(((1, 2), (-1, 3)))[0]
    circuit = Circuit()
    v1, v2, v3 = circuit.var(1), circuit.var(2), circuit.var(3)
    left = circuit.raw_and((v1, v2))
    right = circuit.raw_and((circuit.not_(v1), v3))
    circuit.output = circuit.raw_or((left, right))
    return key, circuit


def rewrite(path: Path, mutate) -> None:
    """Apply ``mutate`` to an artifact's JSON payload and rewrite the
    file with a freshly recomputed checksum (so only the *semantic*
    checker under test fires, not the checksum one)."""
    head, _, payload = path.read_bytes().partition(b"\n")
    parts = head.split()
    data = json.loads(payload)
    data = mutate(data) or data
    fresh = json.dumps(data, separators=(",", ":")).encode("utf-8")
    parts[3] = hashlib.sha256(fresh).hexdigest().encode("ascii")
    path.write_bytes(b" ".join(parts) + b"\n" + fresh)


def _duplicate_and_child(data):
    """Replace some AND gate's children with two copies of a child
    that owns at least one variable — sum-of-child-var-set sizes then
    exceeds the union, breaking decomposability."""
    leafy = {
        g
        for g, k in enumerate(data["kinds"])
        if k in (int(VAR), int(NOT))
    }
    for gate, kind in enumerate(data["kinds"]):
        if kind != int(AND):
            continue
        for child in data["children"][gate]:
            if child in leafy:
                data["children"][gate] = [child, child]
                return data
    raise AssertionError("no AND gate with a literal child to corrupt")


def only(tmp_path: Path, **kwargs):
    report = verify_store(tmp_path, **kwargs)
    assert not report.ok
    return report


def checks_of(report) -> set:
    return {violation.check for violation in report.violations}


def the_file(tmp_path: Path, suffix: str) -> Path:
    (match,) = [p for p in tmp_path.iterdir() if p.suffix == suffix]
    return match


class TestCleanStore:
    def test_warmed_store_has_zero_violations(self, tmp_path):
        warmed_store(tmp_path)
        report = verify_store(tmp_path)
        assert report.ok
        assert report.violations == []
        assert report.files == 4
        assert report.determinism_assumed == 0

    def test_kind_counts_agree_with_kind_summary(self, tmp_path):
        store = warmed_store(tmp_path)
        # Noise the scanners must agree on ignoring: a foreign file and
        # an in-flight temp file.
        (tmp_path / "README.txt").write_text("not an artifact")
        (tmp_path / ".tape-abc123.tmp").write_bytes(b"partial write")
        report = verify_store(tmp_path)
        summary = store.kind_summary()
        for kind in ("cnf", "dnnf", "tape", "comp"):
            assert report.kinds[kind]["files"] == summary[kind]["files"]
        assert report.orphans == 1
        assert store.orphan_summary()["files"] == 1

    def test_cli_verify_ok_exit_zero(self, tmp_path, capsys):
        warmed_store(tmp_path)
        assert cli_main(["verify", str(tmp_path)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_cli_verify_json(self, tmp_path, capsys):
        warmed_store(tmp_path)
        assert cli_main(["verify", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["kinds"]["dnnf"]["files"] == 1


class TestInjectedViolations:
    def test_broken_determinism_duplicated_or_child(self, tmp_path):
        warmed_store(tmp_path)
        path = the_file(tmp_path, ".dnnf")

        def mutate(data):
            for gate, kind in enumerate(data["kinds"]):
                if kind == int(OR):
                    data["children"][gate] = [data["children"][gate][0]] * 2
                    return data
            raise AssertionError("no OR gate to corrupt")

        rewrite(path, mutate)
        report = only(tmp_path)
        assert checks_of(report) == {"determinism"}
        assert all(v.file == path.name for v in report.violations)

    def test_broken_decomposability_duplicated_and_child(self, tmp_path):
        warmed_store(tmp_path)
        path = the_file(tmp_path, ".dnnf")

        rewrite(path, _duplicate_and_child)
        assert "decomposability" in checks_of(only(tmp_path))

    def test_non_topological_tape_levels(self, tmp_path):
        warmed_store(tmp_path)
        rewrite(
            the_file(tmp_path, ".tape"),
            lambda data: data["levels"].__setitem__(-1, 0) or data,
        )
        assert checks_of(only(tmp_path)) == {"levels"}

    def test_inflated_magnitude_bound(self, tmp_path):
        warmed_store(tmp_path)

        def mutate(data):
            data["bounds"]["forward_bits"] += 5
            return data

        rewrite(the_file(tmp_path, ".tape"), mutate)
        report = only(tmp_path)
        assert checks_of(report) == {"bounds"}
        assert "forward_bits" in report.violations[0].detail

    def test_corrupted_component_canonical_signature(self, tmp_path):
        warmed_store(tmp_path)

        def mutate(data):
            data["clauses"][0] = [lit + 100 for lit in data["clauses"][0]]
            return data

        rewrite(the_file(tmp_path, ".comp"), mutate)
        assert "component-key" in checks_of(only(tmp_path))

    def test_non_canonical_component_clauses(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        # A clause set that is NOT a canonical_component fixed point,
        # filed (consistently) under its own digest.
        key = ((9, -4), (4, 2))
        assert canonical_component(key)[0] != key
        store.store_component(key, component_fixture()[1])
        report = only(tmp_path)
        assert "component-canonical" in checks_of(report)

    def test_missing_component_clauses_flagged(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        store.store_component(*component_fixture())
        rewrite(
            the_file(tmp_path, ".comp"),
            lambda data: data.pop("clauses") and data,
        )
        assert "component-key" in checks_of(only(tmp_path))

    def test_wrong_component_scheme_tag(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        store.store_component(*component_fixture())
        rewrite(
            the_file(tmp_path, ".comp"),
            lambda data: data.__setitem__("scheme", 999) or data,
        )
        assert "scheme" in checks_of(only(tmp_path))

    def test_checksum_mismatch(self, tmp_path):
        warmed_store(tmp_path)
        path = the_file(tmp_path, ".cnf")
        path.write_bytes(path.read_bytes() + b" ")  # payload drifts, header stays
        assert checks_of(only(tmp_path)) == {"checksum"}

    def test_cnf_structure_violation(self, tmp_path):
        warmed_store(tmp_path)

        def mutate(data):
            data["clauses"][0] = [data["num_vars"] + 50]
            return data

        rewrite(the_file(tmp_path, ".cnf"), mutate)
        assert "structure" in checks_of(only(tmp_path))

    def test_cross_tape_does_not_match_dnnf(self, tmp_path):
        warmed_store(tmp_path)

        def mutate(data):
            data["source_gates"] += 7
            return data

        rewrite(the_file(tmp_path, ".tape"), mutate)
        report = only(tmp_path)
        assert checks_of(report) == {"tape-match"}
        assert "source_gates" in report.violations[0].detail

    def test_cross_dnnf_var_outside_cnf_labels(self, tmp_path):
        warmed_store(tmp_path)
        path = the_file(tmp_path, ".dnnf")

        def mutate(data):
            for gate, kind in enumerate(data["kinds"]):
                if kind == int(VAR):
                    data["labels"][gate] = 999_999
                    return data
            raise AssertionError("no VAR gate")

        rewrite(path, mutate)
        report = only(tmp_path)
        # Relabelling also breaks the stored tape's agreement with the
        # d-DNNF... except the dnnf no longer round-trips against the
        # CNF either way; the var-match check must be among the flags.
        assert "var-match" in checks_of(report)

    def test_cli_verify_exit_nonzero_and_lists_violation(
        self, tmp_path, capsys
    ):
        warmed_store(tmp_path)

        def mutate(data):
            data["bounds"]["diff_bits"] += 1
            return data

        rewrite(the_file(tmp_path, ".tape"), mutate)
        assert cli_main(["verify", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "diff_bits" in out and "FAILED" in out


class TestTieredDeterminism:
    def test_projected_or_gate_proved_by_enumeration(self, tmp_path):
        """Real stores contain OR gates whose decision literal was
        auxiliary and projected away (Lemma 4.6); only the exhaustive
        tier can prove those deterministic."""
        warmed_store(tmp_path)
        report = verify_store(tmp_path, determinism_limit=DETERMINISM_LIMIT)
        assert report.ok

    def test_limit_zero_counts_assumed_not_violations(self, tmp_path):
        warmed_store(tmp_path)
        report = verify_store(tmp_path, determinism_limit=0)
        assert report.ok  # unproven gates are reported, not violations
        assert report.determinism_assumed >= 0

    def test_check_circuit_flags_overlapping_or(self):
        circuit = Circuit()
        v1, v2 = circuit.var(1), circuit.var(2)
        # x1 OR (x1 AND x2): children share the assignment {x1, x2}.
        circuit.output = circuit.raw_or((v1, circuit.raw_and((v1, v2))))
        problems, _ = check_circuit(circuit)
        assert [check for check, _ in problems] == ["determinism"]

    def test_check_circuit_accepts_decision_or(self):
        problems, assumed = check_circuit(component_fixture()[1])
        assert problems == [] and assumed == 0


class TestVerifyOnLoad:
    def test_bad_store_artifact_is_recompiled_and_counted(self, tmp_path):
        circuit = bipartite_join_dnf(3, 3)
        players = sorted(circuit.reachable_vars())
        run_exact(
            circuit,
            players,
            cache=ArtifactCache(store=PersistentArtifactStore(tmp_path)),
        )
        # A decomposability break is caught at any determinism limit,
        # so the cheap LOAD_DETERMINISM_LIMIT spot check must see it.
        rewrite(the_file(tmp_path, ".dnnf"), _duplicate_and_child)
        # Drop the tape so the warm path has to load (and vet) the
        # d-DNNF instead of serving the run from the tape alone.
        the_file(tmp_path, ".tape").unlink()

        cache = ArtifactCache(
            store=PersistentArtifactStore(tmp_path), verify_on_load=True
        )
        outcome = run_exact(circuit, players, cache=cache)
        assert outcome.ok
        assert cache.stats.verifier_violations == 1
        assert cache.stats.compile_calls == 1  # recompiled, not trusted
        assert cache.stats_dict()["verifier_violations"] == 1

    def test_disabled_by_default_and_clean_store_unaffected(self, tmp_path):
        circuit = bipartite_join_dnf(2, 2)
        players = sorted(circuit.reachable_vars())
        run_exact(
            circuit,
            players,
            cache=ArtifactCache(store=PersistentArtifactStore(tmp_path)),
        )
        cache = ArtifactCache(
            store=PersistentArtifactStore(tmp_path), verify_on_load=True
        )
        outcome = run_exact(circuit, players, cache=cache)
        assert outcome.ok
        assert cache.stats.verifier_violations == 0
        assert cache.stats.compile_calls == 0


class TestOrphans:
    def test_fresh_tmp_file_reported_not_swept(self, tmp_path):
        store = warmed_store(tmp_path)
        orphan = tmp_path / ".dnnf-live.tmp"
        orphan.write_bytes(b"in flight")
        report = verify_store(tmp_path)
        assert report.ok and report.orphans == 1
        gc_report = store.gc(max_bytes=1 << 30)
        assert gc_report.orphans_removed == 0  # younger than the TTL
        assert orphan.exists()

    def test_stale_tmp_file_swept_by_gc(self, tmp_path):
        store = warmed_store(tmp_path)
        orphan = tmp_path / ".comp-dead.tmp"
        orphan.write_bytes(b"x" * 64)
        stale = 1_000_000_000  # far older than ORPHAN_TTL_SECONDS
        os.utime(orphan, ns=(stale, stale))
        gc_report = store.gc(max_bytes=1 << 30)
        assert gc_report.orphans_removed == 1
        assert gc_report.orphan_bytes_reclaimed == 64
        assert gc_report.evicted == 0  # artifacts untouched
        assert not orphan.exists()
        assert verify_store(tmp_path).orphans == 0


class TestPayloadFormats:
    def test_v1_tape_payload_counts_skipped(self, tmp_path):
        warmed_store(tmp_path)

        def mutate(data):
            for key in ("levels", "bounds", "format"):
                data.pop(key, None)
            return data

        rewrite(the_file(tmp_path, ".tape"), mutate)
        report = verify_store(tmp_path)
        assert report.ok
        assert report.skipped == 1

    def test_foreign_format_version_is_flagged(self, tmp_path):
        warmed_store(tmp_path)
        path = the_file(tmp_path, ".cnf")
        head, _, payload = path.read_bytes().partition(b"\n")
        parts = head.split()
        parts[1] = b"99"
        path.write_bytes(b" ".join(parts) + b"\n" + payload)
        assert "version" in checks_of(only(tmp_path))
