"""Semiring-law spot checks for every provenance semiring."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    BooleanSemiring,
    CircuitSemiring,
    CountingSemiring,
    Database,
    Fact,
    PolynomialSemiring,
    ProbabilitySemiring,
    RelationSchema,
    Schema,
    TropicalSemiring,
    WhySemiring,
)

FACTS = [Fact("R", (i,)) for i in range(3)]


def elements_of(semiring):
    """A few representative elements of each semiring."""
    base = [semiring.zero(), semiring.one()] + [semiring.var(f) for f in FACTS]
    combined = [
        semiring.plus(base[2], base[3]),
        semiring.times(base[2], base[3]),
    ]
    return base + combined


SEMIRINGS = [
    BooleanSemiring(),
    CountingSemiring(),
    WhySemiring(),
    PolynomialSemiring(),
    TropicalSemiring({f: 2.0 for f in FACTS}),
]


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: type(s).__name__)
class TestSemiringLaws:
    def test_plus_identity(self, semiring):
        for e in elements_of(semiring):
            assert semiring.plus(e, semiring.zero()) == e

    def test_times_identity(self, semiring):
        for e in elements_of(semiring):
            assert semiring.times(e, semiring.one()) == e

    def test_times_annihilator(self, semiring):
        for e in elements_of(semiring):
            assert semiring.times(e, semiring.zero()) == semiring.zero()

    def test_plus_commutative(self, semiring):
        elems = elements_of(semiring)
        for a in elems:
            for b in elems:
                assert semiring.plus(a, b) == semiring.plus(b, a)

    def test_times_commutative(self, semiring):
        elems = elements_of(semiring)
        for a in elems:
            for b in elems:
                assert semiring.times(a, b) == semiring.times(b, a)

    def test_plus_associative(self, semiring):
        elems = elements_of(semiring)[:4]
        for a in elems:
            for b in elems:
                for c in elems:
                    assert semiring.plus(a, semiring.plus(b, c)) == semiring.plus(
                        semiring.plus(a, b), c
                    )

    def test_distributivity(self, semiring):
        elems = elements_of(semiring)[:4]
        for a in elems:
            for b in elems:
                for c in elems:
                    left = semiring.times(a, semiring.plus(b, c))
                    right = semiring.plus(
                        semiring.times(a, b), semiring.times(a, c)
                    )
                    assert left == right


class TestCircuitSemiring:
    def test_annotations_are_gates(self):
        semiring = CircuitSemiring()
        gate = semiring.plus(semiring.var(FACTS[0]), semiring.var(FACTS[1]))
        semiring.circuit.output = gate
        assert semiring.circuit.evaluate({FACTS[0]})
        assert not semiring.circuit.evaluate(set())

    def test_endogenous_only_maps_exo_to_true(self):
        schema = Schema.of(RelationSchema.of("R", "a"))
        db = Database(schema)
        exo = db.add("R", 0, endogenous=False)
        endo = db.add("R", 1, endogenous=True)
        semiring = CircuitSemiring(database=db, endogenous_only=True)
        assert semiring.var(exo) == semiring.circuit.true()
        assert semiring.var(endo) != semiring.circuit.true()


class TestProbabilitySemiring:
    def test_disjoint_or_formula(self):
        semiring = ProbabilitySemiring({FACTS[0]: Fraction(1, 2), FACTS[1]: Fraction(1, 3)})
        a = semiring.var(FACTS[0])
        b = semiring.var(FACTS[1])
        assert semiring.plus(a, b) == Fraction(1, 2) + Fraction(1, 3) - Fraction(1, 6)

    def test_incorrect_on_shared_facts(self):
        """Documents *why* PQE needs knowledge compilation: the naive
        'probability semiring' miscomputes P(x or x)."""
        semiring = ProbabilitySemiring({FACTS[0]: Fraction(1, 2)})
        x = semiring.var(FACTS[0])
        wrong = semiring.plus(x, x)
        assert wrong != Fraction(1, 2)  # correct P(x or x) is 1/2


class TestTropical:
    def test_cheapest_derivation(self):
        semiring = TropicalSemiring({FACTS[0]: 5.0, FACTS[1]: 1.0})
        a, b = semiring.var(FACTS[0]), semiring.var(FACTS[1])
        assert semiring.plus(a, b) == 1.0
        assert semiring.times(a, b) == 6.0
        assert semiring.var(FACTS[2]) == 1.0  # default weight


@given(
    st.lists(st.sampled_from(FACTS), min_size=1, max_size=3),
    st.lists(st.sampled_from(FACTS), min_size=1, max_size=3),
)
@settings(max_examples=50, deadline=None)
def test_why_provenance_matches_polynomial_support(left, right):
    """Why-provenance is the polynomial semiring with exponents and
    coefficients dropped."""
    why = WhySemiring()
    poly = PolynomialSemiring()
    why_val = why.times(
        _fold(why, left), _fold(why, right)
    )
    poly_val = poly.times(_fold(poly, left), _fold(poly, right))
    support = {
        frozenset(fact for fact, _ in monomial) for monomial in poly_val
    }
    assert why_val == frozenset(support)


def _fold(semiring, facts):
    value = semiring.zero()
    for fact in facts:
        value = semiring.plus(value, semiring.var(fact))
    return value
