"""Unit tests for repro.circuits.circuit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, CircuitError, GateKind, circuit_from_nested


def build_example():
    c = Circuit()
    a, b, d = c.var("a"), c.var("b"), c.var("d")
    c.output = c.or_((c.and_((a, b)), c.and_((c.not_(a), d))))
    return c


class TestConstruction:
    def test_var_dedup(self):
        c = Circuit()
        assert c.var("x") == c.var("x")

    def test_hash_consing_of_gates(self):
        c = Circuit()
        g1 = c.and_((c.var("x"), c.var("y")))
        g2 = c.and_((c.var("x"), c.var("y")))
        assert g1 == g2

    def test_and_simplifications(self):
        c = Circuit()
        x = c.var("x")
        assert c.and_(()) == c.true()
        assert c.and_((x,)) == x
        assert c.and_((x, c.true())) == x
        assert c.and_((x, c.false())) == c.false()
        assert c.and_((x, x)) == x

    def test_or_simplifications(self):
        c = Circuit()
        x = c.var("x")
        assert c.or_(()) == c.false()
        assert c.or_((x,)) == x
        assert c.or_((x, c.false())) == x
        assert c.or_((x, c.true())) == c.true()
        assert c.or_((x, x)) == x

    def test_not_simplifications(self):
        c = Circuit()
        x = c.var("x")
        assert c.not_(c.true()) == c.false()
        assert c.not_(c.false()) == c.true()
        assert c.not_(c.not_(x)) == x

    def test_literal(self):
        c = Circuit()
        pos = c.literal("x", True)
        neg = c.literal("x", False)
        assert c.kind(pos) == GateKind.VAR
        assert c.kind(neg) == GateKind.NOT
        assert c.children(neg) == (pos,)

    def test_label_requires_var_gate(self):
        c = Circuit()
        g = c.and_((c.var("x"), c.var("y")))
        with pytest.raises(CircuitError):
            c.label(g)

    def test_output_gate_unset(self):
        with pytest.raises(CircuitError):
            Circuit().output_gate()

    def test_gate_counts(self):
        c = build_example()
        counts = c.gate_counts()
        assert counts[GateKind.VAR] == 3
        assert counts[GateKind.AND] == 2
        assert counts[GateKind.OR] == 1
        assert counts[GateKind.NOT] == 1

    def test_edge_count(self):
        c = build_example()
        assert c.edge_count == 2 + 2 + 2 + 1


class TestEvaluation:
    def test_truth_table(self):
        c = build_example()
        # (a & b) | (!a & d)
        assert c.evaluate({"a", "b"})
        assert c.evaluate({"d"})
        assert not c.evaluate({"a", "d"})
        assert not c.evaluate(set())
        assert c.evaluate({"b", "d"})

    def test_unknown_labels_ignored(self):
        c = build_example()
        assert c.evaluate({"d", "zzz"})

    def test_evaluate_batch_matches_scalar(self):
        c = build_example()
        labels = ["a", "b", "d"]
        width = 8
        assignments = {}
        for i, lbl in enumerate(labels):
            bits = 0
            for j in range(width):
                if j >> i & 1:
                    bits |= 1 << j
            assignments[lbl] = bits
        out = c.evaluate_batch(assignments, width)
        for j in range(width):
            chosen = {labels[i] for i in range(3) if j >> i & 1}
            assert bool(out >> j & 1) == c.evaluate(chosen)

    def test_evaluate_sub_gate(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        g = c.and_((a, b))
        c.output = c.or_((g, c.var("e")))
        assert c.evaluate({"a", "b"}, root=g)
        assert not c.evaluate({"a"}, root=g)


class TestTransforms:
    def test_condition_fixes_variables(self):
        c = build_example()
        conditioned = c.condition({"a": True})
        # becomes just b
        assert conditioned.evaluate({"b"})
        assert not conditioned.evaluate({"d"})
        assert conditioned.reachable_vars() == {"b"}

    def test_condition_to_constant(self):
        c = build_example()
        conditioned = c.condition({"a": False, "d": True})
        assert conditioned.kind(conditioned.output_gate()) == GateKind.TRUE

    def test_condition_empty_prunes(self):
        c = Circuit()
        x = c.var("x")
        c.var("unused")
        c.output = x
        pruned = c.prune()
        assert pruned.variables() == {"x"}

    def test_rename(self):
        c = build_example()
        renamed = c.rename({"a": "A"})
        assert renamed.evaluate({"A", "b"})
        assert "a" not in renamed.reachable_vars()

    def test_flatten_collapses_nested_ors(self):
        c = Circuit()
        x, y, z = c.var("x"), c.var("y"), c.var("z")
        c.output = c.or_((c.or_((x, y)), z))
        flat = c.flatten()
        root = flat.output_gate()
        assert flat.kind(root) == GateKind.OR
        assert len(flat.children(root)) == 3

    def test_flatten_preserves_semantics(self):
        c = build_example()
        flat = c.flatten()
        for mask in range(8):
            chosen = {lbl for i, lbl in enumerate("abd") if mask >> i & 1}
            assert c.evaluate(chosen) == flat.evaluate(chosen)

    def test_flatten_prunes_superseded_gates(self):
        c = Circuit()
        parts = [c.var(f"x{i}") for i in range(4)]
        g = parts[0]
        for p in parts[1:]:
            g = c.or_((g, p))
        c.output = g
        flat = c.flatten()
        # single OR over 4 vars: 5 gates total
        assert len(flat) == 5


class TestIntrospection:
    def test_reachable_vars(self):
        c = Circuit()
        a = c.var("a")
        c.var("b")  # unreachable
        c.output = a
        assert c.reachable_vars() == {"a"}

    def test_gate_var_sets(self):
        c = build_example()
        sets = c.gate_var_sets()
        root = c.output_gate()
        labels = {c.label(g) for g in sets[root]}
        assert labels == {"a", "b", "d"}

    def test_to_nested_roundtrip(self):
        expr = ("or", ("and", "x", "y"), ("not", "z"))
        c = circuit_from_nested(expr)
        assert c.to_nested() == expr

    def test_circuit_from_nested_constants(self):
        c = circuit_from_nested(("or", True, "x"))
        assert c.kind(c.output_gate()) == GateKind.TRUE

    def test_to_dot_contains_gates(self):
        dot = build_example().to_dot()
        assert "digraph" in dot and "∨" in dot and "∧" in dot

    def test_repr(self):
        assert "Circuit(" in repr(build_example())

    def test_bad_not_arity_in_nested(self):
        with pytest.raises(CircuitError):
            circuit_from_nested(("not", "x", "y"))


@st.composite
def nested_exprs(draw, depth=3):
    """Random nested circuit expressions over 4 variables."""
    if depth == 0:
        return draw(st.sampled_from(["a", "b", "c", "d"]))
    kind = draw(st.sampled_from(["var", "and", "or", "not"]))
    if kind == "var":
        return draw(st.sampled_from(["a", "b", "c", "d"]))
    if kind == "not":
        return ("not", draw(nested_exprs(depth=depth - 1)))
    arity = draw(st.integers(2, 3))
    return (kind, *[draw(nested_exprs(depth=depth - 1)) for _ in range(arity)])


class TestPropertyBased:
    @given(nested_exprs(), st.sets(st.sampled_from(["a", "b", "c", "d"])))
    @settings(max_examples=120, deadline=None)
    def test_flatten_equivalence(self, expr, assignment):
        c = circuit_from_nested(expr)
        assert c.evaluate(assignment) == c.flatten().evaluate(assignment)

    @given(
        nested_exprs(),
        st.dictionaries(st.sampled_from(["a", "b"]), st.booleans()),
        st.sets(st.sampled_from(["c", "d"])),
    )
    @settings(max_examples=120, deadline=None)
    def test_condition_equivalence(self, expr, fixed, rest):
        c = circuit_from_nested(expr)
        conditioned = c.condition(fixed)
        full = rest | {k for k, v in fixed.items() if v}
        assert conditioned.evaluate(rest) == c.evaluate(full)

    @given(nested_exprs())
    @settings(max_examples=60, deadline=None)
    def test_children_precede_parents(self, expr):
        c = circuit_from_nested(expr)
        for gate in c.gates():
            for child in c.children(gate):
                assert child < gate
