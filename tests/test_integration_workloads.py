"""Integration tests: the full pipeline over (small) TPC-H and IMDB.

These mirror the paper's experimental loop end to end and additionally
cross-check a sample of exact pipeline outputs against the naive
definition wherever the provenance is small enough to brute-force.
"""

import pytest

from repro.bench import run_query
from repro.compiler import CompilationBudget
from repro.core import game_from_circuit, hybrid_shapley, shapley_naive
from repro.db import lineage
from repro.workloads import (
    IMDB_QUERIES,
    ImdbConfig,
    TpchConfig,
    generate_imdb,
    generate_tpch,
    imdb_query,
    tpch_query,
)

BUDGET = CompilationBudget(max_nodes=500_000, max_seconds=10.0)


@pytest.fixture(scope="module")
def tpch_db():
    return generate_tpch(TpchConfig(scale_factor=0.0004))


@pytest.fixture(scope="module")
def imdb_db():
    return generate_imdb(ImdbConfig(movies=120, people=150, companies=20))


@pytest.mark.parametrize("name", ["Q3", "Q10", "Q16", "Q18"])
def test_tpch_exact_pipeline_succeeds(tpch_db, name, subtests=None):
    run = run_query(
        tpch_db, tpch_query(name), "TPC-H", budget=BUDGET,
        keep_values=True, max_outputs=5,
    )
    assert run.records
    for record in run.records:
        assert record.ok
        assert record.values
        assert all(v >= 0 for v in record.values.values())
        assert sum(v for v in record.values.values()) > 0  # efficiency > 0


@pytest.mark.parametrize("name", ["1a", "6b", "8d", "13c", "16a"])
def test_imdb_exact_pipeline_succeeds(imdb_db, name):
    run = run_query(
        imdb_db, imdb_query(name), "IMDB", budget=BUDGET,
        keep_values=True, max_outputs=4,
    )
    assert run.records
    assert run.success_rate > 0


def test_tpch_sample_matches_naive(tpch_db):
    """Exact pipeline vs Equation (1) on real TPC-H provenance."""
    spec = tpch_query("Q3")
    result = lineage(spec.plan(tpch_db), tpch_db, endogenous_only=True)
    checked = 0
    for answer in result.tuples():
        circuit = result.lineage_of(answer)
        players = sorted(circuit.reachable_vars())
        if not 1 <= len(players) <= 10:
            continue
        run = run_query(
            tpch_db, spec, "TPC-H", budget=BUDGET, keep_values=True
        )
        record = next(r for r in run.records if r.answer == answer)
        naive = shapley_naive(game_from_circuit(circuit), players)
        for fact, value in naive.items():
            assert record.values[fact] == value
        checked += 1
        if checked >= 2:
            break
    assert checked > 0


def test_imdb_sample_matches_naive(imdb_db):
    spec = imdb_query("6b")
    result = lineage(spec.plan(imdb_db), imdb_db, endogenous_only=True)
    checked = 0
    for answer in result.tuples():
        circuit = result.lineage_of(answer)
        players = sorted(circuit.reachable_vars())
        if not 1 <= len(players) <= 10:
            continue
        naive = shapley_naive(game_from_circuit(circuit), players)
        outcome = hybrid_shapley(circuit, players, timeout=10.0)
        assert outcome.kind == "exact"
        for fact, value in naive.items():
            assert outcome.values[fact] == value
        checked += 1
        if checked >= 2:
            break
    assert checked > 0


def test_hybrid_over_imdb_query(imdb_db):
    """The hybrid strategy never fails: it answers for every output."""
    spec = imdb_query("16a")
    result = lineage(spec.plan(imdb_db), imdb_db, endogenous_only=True)
    for answer in result.tuples()[:6]:
        circuit = result.lineage_of(answer)
        players = sorted(circuit.reachable_vars())
        outcome = hybrid_shapley(circuit, players, timeout=2.5)
        assert outcome.kind in ("exact", "proxy")
        assert set(outcome.values) == set(players)
