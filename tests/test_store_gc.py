"""Tests for the artifact store's bounded-disk GC: LRU eviction down to
a byte budget, touch-on-read recency, generation-safe deletes, eviction
counters, automatic budget enforcement on writes, and — the acceptance
case — correctness under concurrent readers, writers, and collectors
(including a real multi-process stress test)."""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.circuits.cnf import Cnf
from repro.engine import ArtifactCache, ExplainSession, PersistentArtifactStore
from repro.engine.store import GcReport

from .test_store import JOIN_QUERY, join_database

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def sig(n: int) -> tuple:
    """A synthetic canonical signature (unique per ``n``)."""
    return ((n, n + 1),)


def small_cnf(n: int) -> Cnf:
    return Cnf(2, [(1, 2), (-1,)], labels={1: n})


def fill(store: PersistentArtifactStore, count: int, start: int = 0) -> None:
    for i in range(start, start + count):
        store.store_cnf(sig(i), small_cnf(i))


class TestGcBasics:
    def test_evicts_lru_down_to_budget(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        fill(store, 5)
        # age artifacts explicitly: sig(0) oldest ... sig(4) newest
        for i in range(5):
            path = store.path_for(sig(i), "cnf")
            os.utime(path, (1000 + i, 1000 + i))
        size = store.path_for(sig(0), "cnf").stat().st_size
        report = store.gc(max_bytes=2 * size)
        assert isinstance(report, GcReport)
        assert report.evicted == 3
        assert report.reclaimed_bytes == 3 * size
        assert report.remaining_files == 2
        assert report.remaining_bytes <= 2 * size
        # survivors are the most recently used
        assert store.load_cnf(sig(3)) is not None
        assert store.load_cnf(sig(4)) is not None
        assert store.load_cnf(sig(0)) is None

    def test_read_refreshes_recency(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        fill(store, 3)
        for i in range(3):
            os.utime(store.path_for(sig(i), "cnf"), (1000 + i, 1000 + i))
        # touching the oldest artifact by *reading* it makes it MRU
        assert store.load_cnf(sig(0)) is not None
        size = store.path_for(sig(0), "cnf").stat().st_size
        store.gc(max_bytes=size)
        assert store.load_cnf(sig(0)) is not None
        assert store.load_cnf(sig(1)) is None
        assert store.load_cnf(sig(2)) is None

    def test_generation_safe_delete_skips_refreshed_files(
        self, tmp_path, monkeypatch
    ):
        store = PersistentArtifactStore(tmp_path)
        fill(store, 2)
        for i in range(2):
            os.utime(store.path_for(sig(i), "cnf"), (1000 + i, 1000 + i))
        stale = store.entries()
        # a concurrent writer/reader refreshes sig(0) *after* the scan
        os.utime(store.path_for(sig(0), "cnf"), (2000, 2000))
        monkeypatch.setattr(store, "entries", lambda: stale, raising=True)
        size = stale[0].size
        report = store.gc(max_bytes=size)
        # sig(0) was the LRU candidate but its generation changed: kept
        assert store.path_for(sig(0), "cnf").exists()
        assert not store.path_for(sig(1), "cnf").exists()
        assert report.evicted == 1

    def test_gc_counters_reach_stats_dict(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        cache = ArtifactCache(store=store)
        fill(store, 4)
        store.gc(max_bytes=1)
        merged = cache.stats_dict()
        assert merged["store_evictions"] == 4
        assert merged["store_reclaimed_bytes"] > 0

    def test_gc_requires_a_budget(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="max_bytes"):
            store.gc()
        with pytest.raises(ValueError, match="positive"):
            store.gc(max_bytes=0)
        with pytest.raises(ValueError, match="positive"):
            PersistentArtifactStore(tmp_path, max_bytes=-5)

    def test_writes_auto_enforce_the_budget(self, tmp_path):
        one = PersistentArtifactStore(tmp_path).path_for(sig(0), "cnf")
        probe = PersistentArtifactStore(tmp_path)
        probe.store_cnf(sig(0), small_cnf(0))
        size = one.stat().st_size
        store = PersistentArtifactStore(tmp_path, max_bytes=3 * size)
        fill(store, 12)
        assert store.stats.evictions > 0
        assert store.total_bytes() <= 3 * size
        # the most recent write always survives its own GC pass
        assert store.load_cnf(sig(11)) is not None

    def test_entries_skip_temp_and_foreign_files(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        fill(store, 2)
        (tmp_path / ".cnf-inflight.tmp").write_bytes(b"partial")
        (tmp_path / "README").write_text("not an artifact")
        entries = store.entries()
        assert len(entries) == 2
        assert {entry.kind for entry in entries} == {"cnf"}
        assert len(store) == 2
        store.gc(max_bytes=1)
        assert (tmp_path / ".cnf-inflight.tmp").exists()
        assert (tmp_path / "README").exists()


class TestGcCorrectness:
    def test_fractions_identical_across_evict_and_reload_cycles(
        self, tmp_path
    ):
        db = join_database(4, 2)
        store = PersistentArtifactStore(tmp_path / "store")
        cold = ExplainSession(
            db, method="exact", cache=ArtifactCache(store=store)
        ).explain_many(JOIN_QUERY)
        baseline = {a: r.values for a, r in cold.items()}
        # wipe everything, recompute (recompile + rewrite), then reload
        store.gc(max_bytes=1)
        assert len(store) == 0
        for _ in range(2):
            again = ExplainSession(
                db, method="exact",
                cache=ArtifactCache(store=PersistentArtifactStore(store.directory)),
            ).explain_many(JOIN_QUERY)
            assert {a: r.values for a, r in again.items()} == baseline

    def test_concurrent_reader_completes_while_gc_evicts(self, tmp_path):
        store = PersistentArtifactStore(tmp_path)
        fill(store, 40)
        reader = PersistentArtifactStore(tmp_path)
        stop = threading.Event()
        seen = {"loads": 0, "bad": 0}

        def read_loop():
            expected = small_cnf(7)
            while not stop.is_set():
                loaded = reader.load_cnf(sig(7))
                if loaded is not None:
                    seen["loads"] += 1
                    if (loaded.clauses, loaded.labels) != (
                        expected.clauses, expected.labels
                    ):
                        seen["bad"] += 1

        assert reader.load_cnf(sig(7)) is not None  # make it MRU up front
        thread = threading.Thread(target=read_loop, daemon=True)
        thread.start()
        while seen["loads"] == 0 and thread.is_alive():
            time.sleep(0.005)  # reader is spinning before eviction starts
        size = store.path_for(sig(0), "cnf").stat().st_size
        for budget in (30, 20, 10, 5):
            store.gc(max_bytes=budget * size)
        stop.set()
        thread.join(timeout=10)
        # the reader never saw a torn artifact: every load was either a
        # clean miss or the full, valid payload — and its own reads
        # kept sig(7) alive through every pass.
        assert seen["bad"] == 0
        assert seen["loads"] > 0
        assert reader.stats.corruptions == 0
        assert reader.load_cnf(sig(7)) is not None


_WRITER_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.circuits.cnf import Cnf
from repro.engine import PersistentArtifactStore

directory, budget, ident, count = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
)
store = PersistentArtifactStore(directory, max_bytes=budget)
torn = 0
for i in range(count):
    signature = ((ident, i),)
    cnf = Cnf(2, [(1, 2), (-1,)], labels={{1: i}})
    store.store_cnf(signature, cnf)
    loaded = store.load_cnf(signature)  # may be evicted, never torn
    if loaded is not None and loaded.labels != cnf.labels:
        torn += 1
print(json.dumps({{
    "writes": store.stats.writes,
    "write_failures": store.stats.write_failures,
    "corruptions": store.stats.corruptions,
    "evictions": store.stats.evictions,
    "torn": torn,
}}))
"""


class TestGcMultiProcessStress:
    def test_writers_insert_while_gc_evicts_across_processes(self, tmp_path):
        """Three writer processes hammer one budgeted store (every write
        may trigger an LRU pass) while this process both reads a hot
        artifact and runs explicit GC: no torn reads anywhere, the
        in-flight hot artifact survives, and the directory ends under
        budget."""
        directory = tmp_path / "shared"
        hot = PersistentArtifactStore(directory)
        hot_signature = ((9999, 0),)
        hot_cnf = small_cnf(9999)
        hot.store_cnf(hot_signature, hot_cnf)
        probe_size = hot.path_for(hot_signature, "cnf").stat().st_size
        # Budget below the 76 artifacts written (so eviction must do
        # real work) but far above the write rate of any 10 ms window:
        # a frequently-touched artifact is never the LRU victim unless
        # recency tracking is broken.
        budget = 60 * probe_size

        script = _WRITER_SCRIPT.format(src=SRC_DIR)
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", script,
                 str(directory), str(budget), str(ident), "25"],
                stdout=subprocess.PIPE, text=True,
            )
            for ident in range(3)
        ]
        bad_hot = 0
        while any(writer.poll() is None for writer in writers):
            loaded = hot.load_cnf(hot_signature)  # refreshes its mtime
            if loaded is None or loaded.labels != hot_cnf.labels:
                bad_hot += 1
            hot.gc(max_bytes=budget)
            time.sleep(0.002)
        reports = []
        for writer in writers:
            out, _ = writer.communicate(timeout=60)
            assert writer.returncode == 0, out
            reports.append(json.loads(out.strip().splitlines()[-1]))

        # no process ever saw a torn or checksum-corrupt artifact
        assert all(r["corruptions"] == 0 for r in reports), reports
        assert all(r["torn"] == 0 for r in reports), reports
        assert all(r["write_failures"] == 0 for r in reports), reports
        assert hot.stats.corruptions == 0
        # the budget did real work somewhere (76 writes into ~60 slots)
        assert sum(r["evictions"] for r in reports) + hot.stats.evictions > 0
        # the actively read artifact was never lost mid-flight
        assert bad_hot == 0
        final = hot.load_cnf(hot_signature)
        assert final is not None and final.labels == hot_cnf.labels
        # a final pass settles the directory under budget
        report = hot.gc(max_bytes=budget)
        assert report.remaining_bytes <= budget
