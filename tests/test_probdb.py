"""Tests for tuple-independent databases and the three PQE routes."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, RelationSchema, Schema, cq
from repro.probdb import (
    NonHierarchicalError,
    NotSelfJoinFreeError,
    TupleIndependentDatabase,
    lifted_probability,
    pqe,
    pqe_lifted,
    pqe_lineage,
    pqe_naive,
)


def rs_schema():
    return Schema.of(
        RelationSchema.of("R", "a"),
        RelationSchema.of("S", "a", "b"),
        RelationSchema.of("T", "b"),
    )


def make_tid(r_probs, s_probs, t_probs=()):
    db = Database(rs_schema())
    probs = {}
    for value, p in r_probs:
        probs[db.add("R", value)] = p
    for pair, p in s_probs:
        probs[db.add("S", *pair)] = p
    for value, p in t_probs:
        probs[db.add("T", value)] = p
    return TupleIndependentDatabase(db, probs)


class TestTid:
    def test_probability_bounds(self):
        db = Database(rs_schema())
        fact = db.add("R", 1)
        tid = TupleIndependentDatabase(db)
        with pytest.raises(ValueError):
            tid.set_probability(fact, Fraction(3, 2))

    def test_unknown_fact(self):
        db = Database(rs_schema())
        tid = TupleIndependentDatabase(db)
        from repro.db import Fact

        with pytest.raises(ValueError):
            tid.set_probability(Fact("R", (1,)), Fraction(1, 2))

    def test_default_probability_is_one(self):
        db = Database(rs_schema())
        fact = db.add("R", 1)
        tid = TupleIndependentDatabase(db)
        assert tid.probability_of(fact) == 1
        assert tid.certain_facts() == [fact]
        assert tid.uncertain_facts() == []

    def test_worlds_probabilities_sum_to_one(self):
        tid = make_tid(
            [(1, Fraction(1, 2)), (2, Fraction(1, 3))],
            [((1, 10), Fraction(1, 4))],
        )
        total = sum(p for _, p in tid.worlds())
        assert total == 1

    def test_worlds_count(self):
        tid = make_tid([(1, Fraction(1, 2))], [((1, 10), Fraction(1, 2))])
        assert len(list(tid.worlds())) == 4

    def test_certain_facts_in_every_world(self):
        tid = make_tid([(1, Fraction(1))], [((1, 10), Fraction(1, 2))])
        for world, _ in tid.worlds():
            assert len(world.relation("R")) == 1


class TestLifted:
    def test_single_atom(self):
        tid = make_tid([(1, Fraction(1, 2)), (2, Fraction(1, 3))], [])
        q = cq(None, "R(x)")
        # P(exists x R(x)) = 1 - 1/2 * 2/3 = 2/3
        assert lifted_probability(q, tid) == Fraction(2, 3)

    def test_ground_atom(self):
        tid = make_tid([(1, Fraction(1, 2))], [])
        assert lifted_probability(cq(None, "R(1)"), tid) == Fraction(1, 2)
        assert lifted_probability(cq(None, "R(9)"), tid) == 0

    def test_hierarchical_join(self):
        tid = make_tid(
            [(1, Fraction(1, 2))],
            [((1, 10), Fraction(1, 2)), ((1, 20), Fraction(1, 2))],
        )
        q = cq(None, "R(x)", "S(x, y)")
        # P = P(R(1)) * P(S(1,10) or S(1,20)) = 1/2 * 3/4
        assert lifted_probability(q, tid) == Fraction(3, 8)

    def test_independent_components(self):
        tid = make_tid(
            [(1, Fraction(1, 2))], [], [(10, Fraction(1, 3))]
        )
        q = cq(None, "R(x)", "T(y)")
        assert lifted_probability(q, tid) == Fraction(1, 6)

    def test_non_hierarchical_raises(self):
        tid = make_tid([(1, Fraction(1, 2))], [((1, 10), Fraction(1, 2))],
                       [(10, Fraction(1, 2))])
        with pytest.raises(NonHierarchicalError):
            lifted_probability(cq(None, "R(x)", "S(x, y)", "T(y)"), tid)

    def test_self_join_raises(self):
        tid = make_tid([], [((1, 10), Fraction(1, 2))])
        with pytest.raises(NotSelfJoinFreeError):
            lifted_probability(cq(None, "S(x, y)", "S(y, z)"), tid)

    def test_non_boolean_raises(self):
        tid = make_tid([(1, Fraction(1, 2))], [])
        with pytest.raises(ValueError):
            lifted_probability(cq(["x"], "R(x)"), tid)


probs_strategy = st.sampled_from(
    [Fraction(0), Fraction(1, 4), Fraction(1, 2), Fraction(3, 4), Fraction(1)]
)


class TestAgreement:
    @given(
        st.lists(st.tuples(st.integers(1, 3), probs_strategy), max_size=3),
        st.lists(
            st.tuples(
                st.tuples(st.integers(1, 3), st.integers(10, 12)),
                probs_strategy,
            ),
            max_size=4,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_lifted_matches_naive(self, r_probs, s_probs):
        tid = make_tid(dict(r_probs).items(), dict(s_probs).items())
        q = cq(None, "R(x)", "S(x, y)")
        assert lifted_probability(q, tid) == pqe_naive(q, tid)

    @given(
        st.lists(st.tuples(st.integers(1, 3), probs_strategy), max_size=2),
        st.lists(
            st.tuples(
                st.tuples(st.integers(1, 3), st.integers(10, 11)),
                probs_strategy,
            ),
            max_size=3,
        ),
        st.lists(st.tuples(st.integers(10, 11), probs_strategy), max_size=2),
    )
    @settings(max_examples=25, deadline=None)
    def test_lineage_matches_naive_on_hard_query(self, r_probs, s_probs, t_probs):
        tid = make_tid(
            dict(r_probs).items(), dict(s_probs).items(), dict(t_probs).items()
        )
        q = cq(None, "R(x)", "S(x, y)", "T(y)")  # non-hierarchical
        assert pqe_lineage(q, tid) == pqe_naive(q, tid)

    def test_dispatcher_uses_lifted_then_falls_back(self):
        tid = make_tid(
            [(1, Fraction(1, 2))],
            [((1, 10), Fraction(1, 2))],
            [(10, Fraction(1, 2))],
        )
        hierarchical = cq(None, "R(x)", "S(x, y)")
        hard = cq(None, "R(x)", "S(x, y)", "T(y)")
        assert pqe(hierarchical, tid) == pqe_naive(hierarchical, tid)
        assert pqe(hard, tid) == pqe_naive(hard, tid)

    def test_pqe_lifted_rejects_ucq(self):
        from repro.db import UnionOfConjunctiveQueries

        tid = make_tid([(1, Fraction(1, 2))], [])
        q = UnionOfConjunctiveQueries.of(cq(None, "R(x)"))
        with pytest.raises(NonHierarchicalError):
            pqe_lifted(q, tid)

    def test_pqe_lineage_requires_boolean(self):
        tid = make_tid([(1, Fraction(1, 2))], [])
        with pytest.raises(ValueError):
            pqe_lineage(cq(["x"], "R(x)"), tid)

    def test_empty_answer_probability_zero(self):
        tid = make_tid([], [])
        assert pqe_lineage(cq(None, "R(x)"), tid) == 0
