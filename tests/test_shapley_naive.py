"""Tests for the brute-force Shapley implementations (the test oracles
themselves get cross-checked here: subsets vs permutations)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    game_from_circuit,
    game_from_query,
    shapley_naive,
    shapley_naive_permutations,
    shapley_naive_query,
)
from repro.workloads.flights import (
    EXPECTED_SHAPLEY,
    fact,
    flights_database,
    flights_query,
)
from repro.workloads.synthetic import random_monotone_dnf


class TestKnownGames:
    def test_unanimity_game(self):
        # v(S) = 1 iff S = {a, b}: both get 1/2.
        game = lambda s: 1 if {"a", "b"} <= s else 0
        values = shapley_naive(game, ["a", "b"])
        assert values == {"a": Fraction(1, 2), "b": Fraction(1, 2)}

    def test_dictator_game(self):
        game = lambda s: 1 if "a" in s else 0
        values = shapley_naive(game, ["a", "b", "c"])
        assert values["a"] == 1 and values["b"] == 0 and values["c"] == 0

    def test_additive_game(self):
        worth = {"a": 3, "b": 5}
        game = lambda s: sum(worth[p] for p in s)
        values = shapley_naive(game, ["a", "b"])
        assert values == {"a": Fraction(3), "b": Fraction(5)}

    def test_real_valued_game(self):
        game = lambda s: Fraction(len(s), 2)
        values = shapley_naive(game, ["a", "b", "c"])
        assert all(v == Fraction(1, 2) for v in values.values())

    def test_too_many_players(self):
        with pytest.raises(ValueError):
            shapley_naive(lambda s: 0, [str(i) for i in range(30)])

    def test_permutations_too_many(self):
        with pytest.raises(ValueError):
            shapley_naive_permutations(lambda s: 0, [str(i) for i in range(9)])


class TestOracleAgreement:
    @given(st.integers(2, 5), st.integers(1, 5), st.integers(1, 2),
           st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_subsets_vs_permutations(self, n_vars, n_terms, width, seed):
        circuit = random_monotone_dnf(n_vars, n_terms, width, seed)
        players = [f"x{i}" for i in range(n_vars)]
        game = game_from_circuit(circuit)
        assert shapley_naive(game, players) == shapley_naive_permutations(
            game, players
        )


class TestQueryGame:
    def test_flights_example(self):
        db = flights_database()
        plan = flights_query().to_algebra(db.schema)
        values = shapley_naive_query(plan, db)
        for name, expected in EXPECTED_SHAPLEY.items():
            assert values[fact(name)] == expected

    def test_game_from_query_respects_exogenous(self):
        db = flights_database()
        plan = flights_query().to_algebra(db.schema)
        game = game_from_query(plan, db)
        # a1 alone suffices because the airports are exogenous.
        assert game(frozenset({fact("a1")})) == 1
        assert game(frozenset()) == 0

    def test_explicit_player_subset(self):
        db = flights_database()
        plan = flights_query().to_algebra(db.schema)
        players = [fact("a1"), fact("a8")]
        values = shapley_naive_query(plan, db, players)
        # With all other endogenous facts absent from the player set,
        # they are never inserted: a1 is a dictator here.
        assert values[fact("a1")] == 1
        assert values[fact("a8")] == 0
