"""Tests for the Tseytin transformation (including Lemma 4.6's
properties 1-3, which the auxiliary-variable elimination relies on)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, circuit_from_nested, tseytin_transform

from .test_circuit import nested_exprs

VARS = ["a", "b", "c", "d"]


def _extensions(cnf, true_labels):
    """Count assignments of the auxiliary variables extending the given
    label assignment to a CNF model."""
    base = {cnf.var_for_label(l) for l in true_labels if cnf.var_for_label(l)}
    aux = sorted(cnf.auxiliary_vars())
    count = 0
    for mask in range(1 << len(aux)):
        chosen = base | {aux[i] for i in range(len(aux)) if mask >> i & 1}
        if cnf.evaluate(chosen):
            count += 1
    return count


class TestBasics:
    def test_single_variable(self):
        c = circuit_from_nested("x")
        cnf = tseytin_transform(c)
        assert cnf.num_clauses == 1
        assert cnf.clauses == [(1,)]
        assert cnf.labels[1] == "x"

    def test_negated_variable_needs_no_aux(self):
        c = circuit_from_nested(("not", "x"))
        cnf = tseytin_transform(c)
        assert cnf.auxiliary_vars() == set()
        assert cnf.clauses == [(-1,)]

    def test_constant_true(self):
        c = circuit_from_nested(True)
        cnf = tseytin_transform(c)
        assert cnf.num_clauses == 0

    def test_constant_false(self):
        c = circuit_from_nested(False)
        cnf = tseytin_transform(c)
        assert not cnf.evaluate_labelled(set())
        assert not cnf.evaluate_labelled({"x"})

    def test_and_gate_clause_shape(self):
        c = circuit_from_nested(("and", "x", "y"))
        cnf = tseytin_transform(c)
        # z<->(x&y): 3 clauses + output unit
        assert cnf.num_clauses == 4
        assert len(cnf.auxiliary_vars()) == 1

    def test_example_53_clause_count(self):
        """The paper's Example 5.3: the q2 lineage DNF yields 22 clauses
        and 6 auxiliary variables."""
        dnf = circuit_from_nested(
            (
                "or",
                ("and", "a2", "a4"), ("and", "a2", "a5"),
                ("and", "a3", "a4"), ("and", "a3", "a5"),
                ("and", "a6", "a7"),
            )
        )
        cnf = tseytin_transform(dnf)
        assert cnf.num_clauses == 22
        assert len(cnf.auxiliary_vars()) == 6

    def test_nested_ors_flattened_first(self):
        nested = circuit_from_nested(
            ("or", ("or", ("or", "a", "b"), "c"), "d")
        )
        cnf = tseytin_transform(nested)
        # one OR gate over 4 literals: 4+1 clauses + unit
        assert len(cnf.auxiliary_vars()) == 1
        assert cnf.num_clauses == 6


class TestTseytinProperties:
    """Properties (1)-(3) from Section 4.2."""

    @given(nested_exprs(), st.sets(st.sampled_from(VARS)))
    @settings(max_examples=120, deadline=None)
    def test_exactly_one_extension_for_models(self, expr, assignment):
        circuit = circuit_from_nested(expr)
        cnf = tseytin_transform(circuit)
        if len(cnf.auxiliary_vars()) > 10:
            return  # keep brute force tractable
        extensions = _extensions(cnf, assignment)
        if circuit.evaluate(assignment):
            assert extensions == 1
        else:
            assert extensions == 0

    @given(nested_exprs())
    @settings(max_examples=80, deadline=None)
    def test_labelled_vars_subset_of_circuit_vars(self, expr):
        circuit = circuit_from_nested(expr)
        cnf = tseytin_transform(circuit)
        assert set(cnf.labels.values()) <= circuit.variables()
