"""Tests for the high-level attribute() API."""

import pytest

from repro import attribute
from repro.workloads.flights import (
    EXPECTED_SHAPLEY,
    fact,
    flights_database,
    flights_query,
)


class TestAttribute:
    def test_exact_method(self):
        db = flights_database()
        result = attribute(db, flights_query(), answer=(), method="exact")
        assert result.exact
        assert result.values[fact("a1")] == EXPECTED_SHAPLEY["a1"]
        assert result.seconds >= 0

    def test_answer_inferred_for_single_answer_query(self):
        db = flights_database()
        result = attribute(db, flights_query(), method="exact")
        assert result.answer == ()

    def test_multi_answer_requires_answer(self):
        db = flights_database()
        sql = "SELECT country FROM Airports"
        with pytest.raises(ValueError):
            attribute(db, sql, method="proxy")

    def test_wrong_answer_rejected(self):
        db = flights_database()
        with pytest.raises(ValueError):
            attribute(db, flights_query(), answer=("nope",), method="proxy")

    def test_unknown_method(self):
        db = flights_database()
        with pytest.raises(ValueError):
            attribute(db, flights_query(), answer=(), method="zen")

    def test_hybrid_on_easy_case_is_exact(self):
        db = flights_database()
        result = attribute(db, flights_query(), answer=(), method="hybrid")
        assert result.exact
        assert result.detail.kind == "exact"

    def test_proxy_method(self):
        db = flights_database()
        result = attribute(db, flights_query(), answer=(), method="proxy")
        assert not result.exact
        assert result.values[fact("a2")] > result.values[fact("a6")]

    def test_monte_carlo_seeded(self):
        db = flights_database()
        a = attribute(db, flights_query(), answer=(), method="monte_carlo",
                      samples_per_fact=30, seed=4)
        b = attribute(db, flights_query(), answer=(), method="monte_carlo",
                      samples_per_fact=30, seed=4)
        assert a.values == b.values

    def test_kernel_shap_runs(self):
        db = flights_database()
        result = attribute(db, flights_query(), answer=(), method="kernel_shap",
                           samples_per_fact=40, seed=1)
        assert len(result.values) == 7  # lineage facts only (a8 excluded)

    def test_ranking_and_top(self):
        db = flights_database()
        result = attribute(db, flights_query(), answer=(), method="exact")
        assert result.ranking()[0] == fact("a1")
        top = result.top(2)
        assert top[0] == (fact("a1"), EXPECTED_SHAPLEY["a1"])
        assert len(top) == 2

    def test_sql_query_with_answer(self):
        db = flights_database()
        sql = (
            "SELECT a.country FROM Flights f, Airports a "
            "WHERE f.dest = a.name"
        )
        result = attribute(db, sql, answer=("FR",), method="exact")
        assert all(f.relation == "Flights" for f in result.values)
