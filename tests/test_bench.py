"""Tests for the experiment harness (stats, runner, reporting)."""

import math

import pytest

from repro.bench import (
    TABLE1_HEADERS,
    bucket_of,
    format_table,
    group_by_bucket,
    mean,
    median,
    percentile,
    render_csv,
    run_query,
    run_suite,
    table1_rows,
    timing_row,
    write_csv,
)
from repro.compiler import CompilationBudget
from repro.workloads import TpchConfig, generate_tpch, tpch_query


class TestStats:
    def test_percentile_interpolation(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 4.0
        assert percentile(data, 0.5) == 2.5

    def test_percentile_single(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_percentile_empty_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_mean_median(self):
        assert mean([1.0, 3.0]) == 2.0
        assert median([1.0, 3.0, 9.0]) == 3.0
        assert math.isnan(mean([]))

    def test_timing_row_keys(self):
        row = timing_row([0.1, 0.2, 0.3])
        assert set(row) == {"mean", "p25", "p50", "p75", "p99"}

    def test_bucket_of(self):
        assert bucket_of(5) == "1-10"
        assert bucket_of(150) == "101-200"
        assert bucket_of(999) == ">400"
        assert bucket_of(0) is None

    def test_group_by_bucket(self):
        grouped = group_by_bucket([(5, 1.0), (7, 2.0), (150, 3.0)])
        assert grouped["1-10"] == [1.0, 2.0]
        assert grouped["101-200"] == [3.0]


class TestRunner:
    @pytest.fixture(scope="class")
    def run(self):
        db = generate_tpch(TpchConfig(scale_factor=0.0003))
        return run_query(
            db,
            tpch_query("Q3"),
            dataset="TPC-H",
            budget=CompilationBudget(max_seconds=5.0),
            keep_values=True,
            max_outputs=10,
        )

    def test_records_per_output(self, run):
        assert 0 < len(run.records) <= 10
        record = run.records[0]
        assert record.dataset == "TPC-H"
        assert record.query == "Q3"
        assert record.n_facts > 0
        assert record.cnf_clauses >= 0
        assert record.total_seconds >= 0

    def test_success_rate(self, run):
        assert 0.0 <= run.success_rate <= 1.0
        assert len(run.ok_records()) == sum(r.ok for r in run.records)

    def test_values_kept(self, run):
        ok = run.ok_records()
        assert ok and ok[0].values is not None
        assert all(v >= 0 for v in ok[0].values.values())

    def test_run_suite(self):
        db = generate_tpch(TpchConfig(scale_factor=0.0003))
        runs = run_suite(
            db, [tpch_query("Q3"), tpch_query("Q10")], "TPC-H",
            budget=CompilationBudget(max_seconds=5.0), max_outputs=3,
        )
        assert [r.spec.name for r in runs] == ["Q3", "Q10"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", float("nan")]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]
        assert "-" in lines[3]  # NaN rendered as dash

    def test_table1_rows(self):
        db = generate_tpch(TpchConfig(scale_factor=0.0003))
        runs = run_suite(
            db, [tpch_query("Q3")], "TPC-H",
            budget=CompilationBudget(max_seconds=5.0), max_outputs=3,
        )
        rows = table1_rows(runs, "TPC-H")
        assert len(rows) == 1
        assert len(rows[0]) == len(TABLE1_HEADERS)
        assert rows[0][1] == "Q3"

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "table.csv"
        write_csv(path, ["x", "y"], [[1, 2], [3, 4]])
        assert path.read_text().splitlines()[0] == "x,y"
        assert render_csv(["x"], [[1]]).startswith("x")
