"""Tests for the hybrid strategy (Section 6.3)."""

from fractions import Fraction

from repro.core import hybrid_shapley, ranking
from repro.db import lineage
from repro.workloads.flights import (
    EXPECTED_SHAPLEY,
    fact,
    flights_database,
    flights_query,
)
from repro.workloads.synthetic import intractable_circuit


def flights_circuit():
    db = flights_database()
    plan = flights_query().to_algebra(db.schema)
    return db, lineage(plan, db, endogenous_only=True).lineage_of(())


class TestHybrid:
    def test_easy_case_returns_exact(self):
        db, circuit = flights_circuit()
        result = hybrid_shapley(circuit, db.endogenous_facts(), timeout=30.0)
        assert result.kind == "exact"
        assert result.is_exact
        assert result.values[fact("a1")] == EXPECTED_SHAPLEY["a1"]
        assert result.exact_outcome is not None and result.exact_outcome.ok

    def test_hard_case_falls_back_to_proxy(self):
        circuit = intractable_circuit()
        players = sorted(circuit.reachable_vars())
        result = hybrid_shapley(circuit, players, timeout=0.2)
        assert result.kind == "proxy"
        assert not result.is_exact
        assert set(result.values) == set(players)
        assert result.exact_outcome is not None
        assert result.exact_outcome.status in ("budget", "timeout")

    def test_node_cap_triggers_fallback(self):
        circuit = intractable_circuit()
        players = sorted(circuit.reachable_vars())
        result = hybrid_shapley(circuit, players, timeout=60.0, max_nodes=100)
        assert result.kind == "proxy"

    def test_ranking_available_either_way(self):
        db, circuit = flights_circuit()
        exact = hybrid_shapley(circuit, db.endogenous_facts(), timeout=30.0)
        assert exact.ranking()[0] == fact("a1")

        hard = intractable_circuit()
        players = sorted(hard.reachable_vars())
        proxy = hybrid_shapley(hard, players, timeout=0.2)
        assert len(proxy.ranking()) == len(players)

    def test_proxy_ranking_matches_exact_on_flights_tail(self):
        """On the running example, the proxy ranks a2..a5 above a6, a7
        just like the exact order (Example 5.3's conclusion)."""
        db, circuit = flights_circuit()
        proxy_values = hybrid_shapley(
            circuit, db.endogenous_facts(), timeout=0.0
        )
        assert proxy_values.kind == "proxy"
        assert proxy_values.values[fact("a2")] > proxy_values.values[fact("a6")]

    def test_seconds_recorded(self):
        db, circuit = flights_circuit()
        result = hybrid_shapley(circuit, db.endogenous_facts(), timeout=30.0)
        assert result.seconds >= 0
