"""Tests for the engine subsystem: registry, artifact cache, batched
sessions, and parity with the per-answer exact path."""

from fractions import Fraction

import pytest

from repro.circuits import Circuit
from repro.compiler import CompilationBudget
from repro.core import ShapleyExplainer, run_exact
from repro.core.attribution import METHODS, attribute
from repro.db import Database, RelationSchema, Schema, cq
from repro.engine import (
    ArtifactCache,
    Engine,
    EngineOptions,
    EngineResult,
    ExplainSession,
    available_engines,
    get_engine,
    register_engine,
)
from repro.engine.registry import _ALIASES, _INSTANCES, _REGISTRY
from repro.workloads.flights import flights_database, flights_query
from repro.workloads.synthetic import bipartite_join_dnf, chained_dnf


def join_database(n_answers: int = 6, fanout: int = 2) -> Database:
    """A database whose query below has ``n_answers`` answers with
    pairwise-isomorphic lineages: a=x_i joins R(x_i, y_i) with
    ``fanout`` S(y_i, *) rows."""
    schema = Schema.of(
        RelationSchema.of("R", "a", "b"), RelationSchema.of("S", "b", "c")
    )
    db = Database(schema)
    for i in range(n_answers):
        db.add("R", f"x{i}", f"y{i}")
        for j in range(fanout):
            db.add("S", f"y{i}", f"z{i}_{j}")
    return db


JOIN_QUERY = cq(["a"], "R(a, b)", "S(b, c)")


class TestRegistry:
    def test_all_five_engines_registered(self):
        assert available_engines() == (
            "exact", "hybrid", "proxy", "monte_carlo", "kernel_shap"
        )

    def test_methods_constant_mirrors_registry(self):
        assert METHODS == available_engines()

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="unknown engine 'zen'"):
            get_engine("zen")
        with pytest.raises(ValueError, match="exact"):
            get_engine("zen")

    def test_aliases_resolve_to_canonical(self):
        assert get_engine("cnf_proxy") is get_engine("proxy")
        assert get_engine("mc") is get_engine("monte_carlo")

    def test_instances_are_shared(self):
        assert get_engine("exact") is get_engine("exact")

    def test_attribute_rejects_unknown_method(self):
        db = flights_database()
        with pytest.raises(ValueError):
            attribute(db, flights_query(), answer=(), method="zen")

    def test_register_and_replace_custom_engine(self):
        @register_engine(aliases=("custom-alias",))
        class _StubEngine(Engine):
            name = "stub"
            exact = False

            def explain_circuit(self, circuit, players, options=None):
                return EngineResult(self.name, {p: 0.0 for p in players}, False)

        try:
            assert "stub" in available_engines()
            assert get_engine("custom-alias") is get_engine("stub")
            circuit = chained_dnf(3)
            result = get_engine("stub").explain_circuit(
                circuit, sorted(circuit.reachable_vars())
            )
            assert result.ok and set(result.values) == circuit.reachable_vars()
        finally:
            _REGISTRY.pop("stub", None)
            _INSTANCES.pop("stub", None)
            _ALIASES.pop("custom-alias", None)

    def test_nameless_engine_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            @register_engine
            class _Bad(Engine):
                exact = False

                def explain_circuit(self, circuit, players, options=None):
                    return EngineResult("", {}, False)


class TestEngineAdapters:
    def test_every_engine_answers_on_flights(self):
        db = flights_database()
        for name in available_engines():
            result = attribute(
                db, flights_query(), answer=(), method=name, seed=0
            )
            assert result.values, name
            assert result.seconds >= 0.0

    def test_exact_engine_matches_run_exact(self):
        circuit = bipartite_join_dnf(3, 3)
        players = sorted(circuit.reachable_vars())
        direct = run_exact(circuit, players)
        via_engine = get_engine("exact").explain_circuit(circuit, players)
        assert via_engine.ok and via_engine.exact
        assert via_engine.values == direct.values
        assert via_engine.detail.status == "ok"

    def test_exact_engine_reports_budget_status(self):
        circuit = bipartite_join_dnf(6, 6)
        players = sorted(circuit.reachable_vars())
        options = EngineOptions(budget=CompilationBudget(max_nodes=1))
        result = get_engine("exact").explain_circuit(circuit, players, options)
        assert not result.ok
        assert result.status == "budget"
        assert result.values is None and result.error
        # a failed run holds no values, so it must not claim exactness
        assert not result.exact

    def test_hybrid_timeout_zero_falls_back_immediately(self):
        db = flights_database()
        result = attribute(
            db, flights_query(), answer=(), method="hybrid", timeout=0
        )
        assert not result.exact
        assert result.detail.kind == "proxy"

    def test_failure_message_names_the_engine(self):
        @register_engine
        class _Failing(Engine):
            name = "failing"
            exact = False

            def explain_circuit(self, circuit, players, options=None):
                return EngineResult(
                    self.name, None, False, "budget", error="nope"
                )

        try:
            db = flights_database()
            with pytest.raises(RuntimeError, match="failing computation failed"):
                attribute(db, flights_query(), answer=(), method="failing")
        finally:
            _REGISTRY.pop("failing", None)
            _INSTANCES.pop("failing", None)

    def test_sampling_engines_are_seed_deterministic(self):
        circuit = bipartite_join_dnf(3, 3)
        players = sorted(circuit.reachable_vars())
        for name in ("monte_carlo", "kernel_shap"):
            engine = get_engine(name)
            a = engine.explain_circuit(circuit, players, EngineOptions(seed=7))
            b = engine.explain_circuit(circuit, players, EngineOptions(seed=7))
            assert a.values == b.values, name


class TestStructuralSignature:
    def test_isomorphic_circuits_share_signature(self):
        c1 = bipartite_join_dnf(3, 2)
        mapping = {f"a{i}": f"L{i}" for i in range(3)}
        mapping |= {f"b{j}": f"R{j}" for j in range(2)}
        c2 = c1.rename(mapping)
        sig1, labels1 = c1.structural_signature()
        sig2, labels2 = c2.structural_signature()
        assert sig1 == sig2
        assert labels1 != labels2
        assert [mapping[l] for l in labels1] == list(labels2)

    def test_different_shapes_differ(self):
        sig_a, _ = bipartite_join_dnf(3, 2).structural_signature()
        sig_b, _ = bipartite_join_dnf(2, 3).structural_signature()
        sig_c, _ = chained_dnf(4).structural_signature()
        assert len({sig_a, sig_b, sig_c}) == 3


class TestArtifactCache:
    def test_hit_and_miss_accounting(self):
        c1 = bipartite_join_dnf(3, 2)
        c2 = c1.rename(
            {f"a{i}": f"A{i}" for i in range(3)}
            | {f"b{j}": f"B{j}" for j in range(2)}
        )
        cache = ArtifactCache()
        cache.ddnnf_for(c1)
        cache.ddnnf_for(c2)
        stats = cache.stats
        assert stats.compile_calls == 1
        assert stats.ddnnf_misses == 1
        assert stats.ddnnf_hits == 1
        assert len(cache) == 1

    def test_cached_values_identical_to_uncached(self):
        cache = ArtifactCache()
        base = bipartite_join_dnf(3, 3)
        renamings = [
            {f"a{i}": (tag, "a", i) for i in range(3)}
            | {f"b{j}": (tag, "b", j) for j in range(3)}
            for tag in ("t1", "t2")
        ]
        for mapping in renamings:
            circuit = base.rename(mapping)
            players = sorted(circuit.reachable_vars())
            cached = run_exact(circuit, players, cache=cache)
            uncached = run_exact(circuit, players)
            assert cached.ok and uncached.ok
            assert cached.values == uncached.values
            assert all(
                isinstance(v, Fraction) for v in cached.values.values()
            )
        assert cache.stats.compile_calls == 1

    def test_cnf_shared_across_exact_and_proxy(self):
        cache = ArtifactCache()
        circuit = bipartite_join_dnf(2, 2)
        players = sorted(circuit.reachable_vars())
        run_exact(circuit, players, cache=cache)
        options = EngineOptions(cache=cache)
        proxy = get_engine("proxy").explain_circuit(circuit, players, options)
        assert proxy.ok
        assert cache.stats.cnf_hits >= 1

    def test_budget_failures_are_not_cached(self):
        cache = ArtifactCache()
        circuit = bipartite_join_dnf(4, 4)
        players = sorted(circuit.reachable_vars())
        tight = run_exact(
            circuit, players,
            budget=CompilationBudget(max_nodes=1), cache=cache,
        )
        assert tight.status == "budget"
        assert cache.stats.compile_failures == 1
        retry = run_exact(circuit, players, cache=cache)
        assert retry.ok
        assert cache.stats.compile_calls == 2

    def test_max_entries_zero_disables_storage(self):
        cache = ArtifactCache(max_entries=0)
        circuit = bipartite_join_dnf(2, 2)
        players = sorted(circuit.reachable_vars())
        run_exact(circuit, players, cache=cache)
        run_exact(circuit, players, cache=cache)
        assert cache.stats.compile_calls == 2
        assert len(cache) == 0

    def test_lru_eviction_bounds_entries(self):
        cache = ArtifactCache(max_entries=2)
        for links in (2, 3, 4, 5):
            cache.ddnnf_for(chained_dnf(links))
        assert len(cache) == 2
        assert cache.stats.evictions == 2

    def test_hybrid_rescued_by_warm_cache(self):
        # A shape already compiled in the cache stays exact even under
        # an absurdly small timeout (compile is skipped on the hit).
        cache = ArtifactCache()
        circuit = bipartite_join_dnf(3, 3)
        players = sorted(circuit.reachable_vars())
        run_exact(circuit, players, cache=cache)
        result = get_engine("hybrid").explain_circuit(
            circuit, players, EngineOptions(timeout=30.0, cache=cache)
        )
        assert result.exact
        # The warm derivative path is served from the tape tier; the
        # expensive knowledge compilation ran exactly once.
        assert cache.stats.tape_hits >= 1
        assert cache.stats.compile_calls == 1


class TestExplainMany:
    def test_batched_results_identical_to_per_answer_path(self):
        db = join_database(n_answers=6)
        per_answer = ShapleyExplainer(db).explain(JOIN_QUERY)
        session = ExplainSession(db, method="exact")
        batched = session.explain_many(JOIN_QUERY)
        assert set(batched) == set(per_answer)
        for answer, engine_result in batched.items():
            reference = per_answer[answer].outcome
            assert engine_result.status == reference.status
            assert engine_result.values == reference.values
            assert all(
                type(a) is type(b) and a == b
                for a, b in zip(
                    sorted(engine_result.values.items()),
                    sorted(reference.values.items()),
                )
            )

    def test_repeated_lineages_compile_once(self):
        db = join_database(n_answers=8)
        session = ExplainSession(db, method="exact")
        results = session.explain_many(JOIN_QUERY)
        stats = session.stats
        assert len(results) == 8
        assert stats["answers_explained"] == 8
        assert stats["unique_shapes"] == 1
        assert stats["compile_calls"] == 1
        assert stats["compile_calls"] < stats["answers_explained"]
        # Warm answers are served from the tape tier (the d-DNNF is
        # only touched once, to lower the shape's tape).
        assert stats["tape_compilations"] == 1
        assert stats["tape_hits"] == 7

    def test_explainer_explain_many_parity(self):
        db = join_database(n_answers=5)
        explainer = ShapleyExplainer(db)
        per_answer = explainer.explain(JOIN_QUERY)
        batched = ShapleyExplainer(db).explain_many(JOIN_QUERY)
        assert {
            a: e.outcome.values for a, e in batched.items()
        } == {a: e.outcome.values for a, e in per_answer.items()}

    def test_per_tuple_budget_outcomes_preserved(self):
        db = join_database(n_answers=4)
        session = ExplainSession(
            db, method="exact",
            options=EngineOptions(
                budget=CompilationBudget(max_nodes=1), timeout=None
            ),
        )
        results = session.explain_many(JOIN_QUERY)
        assert len(results) == 4
        assert all(r.status == "budget" for r in results.values())

    def test_answer_subset_and_unknown_answer(self):
        db = join_database(n_answers=4)
        session = ExplainSession(db, method="exact")
        subset = session.explain_many(JOIN_QUERY, answers=[("x0",), ("x2",)])
        assert set(subset) == {("x0",), ("x2",)}
        with pytest.raises(ValueError, match="not an answer"):
            session.explain_many(JOIN_QUERY, answers=[("nope",)])

    def test_sampling_session_is_deterministic(self):
        db = join_database(n_answers=4)
        runs = []
        for _ in range(2):
            session = ExplainSession(
                db, method="monte_carlo",
                options=EngineOptions(samples_per_fact=5, seed=3),
            )
            results = session.explain_many(JOIN_QUERY)
            runs.append({a: r.values for a, r in results.items()})
        assert runs[0] == runs[1]

    def test_single_worker_matches_default_pool(self):
        db = join_database(n_answers=5)
        wide = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        narrow = ExplainSession(
            db, method="exact", max_workers=1
        ).explain_many(JOIN_QUERY)
        assert {a: r.values for a, r in wide.items()} == {
            a: r.values for a, r in narrow.items()
        }
