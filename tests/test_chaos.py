"""Chaos suite: the resilience layer under deterministic injected
faults and real process kills.

Everything here leans on the fault seam in
:mod:`repro.engine.service.faults`: a :class:`FaultPlan` threaded
through the protocol layer makes "the worker dies on exactly its first
``compile``" reproducible without killing a process.  The invariant
under test is always the same — a fault that does not exhaust the
retry budget must leave the answers byte-identical Fractions to a
fault-free local run, and must be visible in the resilience counters.

The one real-process test (``TestRealProcesses``) SIGKILLs and
SIGSTOPs actual ``repro worker`` subprocesses; CI runs it in the
dedicated ``chaos`` job.

No test here may hang: an autouse SIGALRM watchdog aborts any test
that exceeds its deadline (pytest-timeout is deliberately not a
dependency).
"""

import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time
from fractions import Fraction
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.engine import (
    Backoff,
    Coordinator,
    ExplainSession,
    FaultPlan,
    FaultRule,
    FleetBusy,
    FleetUnavailable,
    run_worker,
)
from repro.engine.scheduler import plan_batch
from repro.engine.service.protocol import (
    DeadlineExceeded,
    ProtocolError,
    connect,
    recv_msg,
    send_msg,
)
from repro.engine.service.remote import SocketTransport

from .test_service import mixed_fanout_database, values_of
from .test_store import JOIN_QUERY, join_database

#: Per-test wall-clock ceiling.  Generous — every test below finishes
#: in seconds — but hard: a hung retry loop or a deadlocked heartbeat
#: fails loudly instead of stalling the suite.
WATCHDOG_SECONDS = 120.0


@pytest.fixture(autouse=True)
def watchdog():
    """Abort any chaos test that runs longer than the global deadline."""
    if threading.current_thread() is not threading.main_thread():
        yield  # pragma: no cover - SIGALRM needs the main thread
        return

    def trip(signum, frame):
        raise AssertionError(
            f"chaos test exceeded its {WATCHDOG_SECONDS:.0f}s watchdog"
        )

    previous = signal.signal(signal.SIGALRM, trip)
    signal.setitimer(signal.ITIMER_REAL, WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def start_fleet(
    tmp_path,
    n_workers=2,
    worker_faults=None,
    reconnect_for=0.0,
    **coordinator_kwargs,
):
    """A live coordinator plus ``n_workers`` in-thread workers sharing
    one store; returns ``(coordinator, threads)`` — callers shut the
    coordinator down themselves (or via the caller's ``finally``)."""
    coordinator = Coordinator(**coordinator_kwargs).start()
    store_dir = str(tmp_path / "fleet-store")
    ready = threading.Barrier(n_workers + 1, timeout=10)
    threads = []
    for _ in range(n_workers):
        thread = threading.Thread(
            target=run_worker,
            args=(coordinator.address,),
            kwargs={
                "cache_dir": store_dir,
                "on_ready": ready.wait,
                "faults": worker_faults,
                "reconnect_for": reconnect_for,
            },
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    ready.wait()
    coordinator.wait_for_workers(n_workers, timeout=10)
    return coordinator, threads


def build_plan(db):
    session = ExplainSession(db, method="exact")
    return plan_batch("exact", session._build_jobs(JOIN_QUERY, None), True)


class TestBackoff:
    def test_deterministic_per_seed_and_bounded(self):
        a = Backoff(initial=0.05, maximum=2.0, seed=7)
        b = Backoff(initial=0.05, maximum=2.0, seed=7)
        delays_a = [a.delay(i) for i in range(10)]
        delays_b = [b.delay(i) for i in range(10)]
        assert delays_a == delays_b  # seeded: reproducible traces
        assert all(0.0 < d <= 2.0 for d in delays_a)
        # jitter only ever shrinks the base delay, never exceeds it
        assert all(d <= min(2.0, 0.05 * 2.0**i)
                   for i, d in enumerate(delays_a))

    def test_sleep_respects_budget(self):
        backoff = Backoff(initial=5.0, maximum=5.0, jitter=0.0, seed=0)
        started = time.monotonic()
        slept = backoff.sleep(3, budget=0.01)
        assert slept == 0.01
        assert time.monotonic() - started < 1.0


class TestFaultPlan:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(action="explode")

    def test_fires_on_nth_match_for_times_matches(self):
        plan = FaultPlan([FaultRule(op="task", nth=2, times=2,
                                    action="drop")])
        hits = [plan.decide("worker", "recv", {"op": "task"})
                for _ in range(5)]
        assert [h.action if h else None for h in hits] == [
            None, "drop", "drop", None, None,
        ]
        assert plan.fired_actions() == ["drop", "drop"]

    def test_filters_by_role_direction_and_op(self):
        plan = FaultPlan([FaultRule(role="worker", direction="recv",
                                    op="task", action="close")])
        assert plan.decide("client", "recv", {"op": "task"}) is None
        assert plan.decide("worker", "send", {"op": "task"}) is None
        assert plan.decide("worker", "recv", {"op": "ping"}) is None
        hit = plan.decide("worker", "recv", {"op": "task"})
        assert hit is not None and hit.action == "close"

    def test_first_match_wins_but_all_counters_advance(self):
        close = FaultRule(op="task", nth=2, action="close")
        drop = FaultRule(op="task", nth=2, action="drop")
        plan = FaultPlan([close, drop])
        assert plan.decide("w", "recv", {"op": "task"}) is None
        # both rules reach their 2nd match; the first in plan order fires
        assert plan.decide("w", "recv", {"op": "task"}) is close


class TestProtocolFaults:
    def test_connect_retries_with_backoff_and_reports_attempts(self):
        # grab a port that nothing listens on
        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        address = probe.getsockname()[:2]
        probe.close()
        started = time.monotonic()
        with pytest.raises(ConnectionError, match=r"after \d+ attempt"):
            connect(address, retry_for=0.3)
        elapsed = time.monotonic() - started
        assert elapsed >= 0.05  # it did back off between dials

    def test_send_drop_means_the_frame_never_arrives(self):
        left, right = socket_module.socketpair()
        try:
            plan = FaultPlan([FaultRule(direction="send", op="lost",
                                        action="drop")])
            send_msg(left, {"op": "lost"}, faults=plan, role="w")
            send_msg(left, {"op": "kept"})
            assert recv_msg(right) == {"op": "kept"}
            assert plan.fired_actions() == ["drop"]
        finally:
            left.close()
            right.close()

    def test_recv_drop_skips_to_the_next_frame(self):
        left, right = socket_module.socketpair()
        try:
            plan = FaultPlan([FaultRule(direction="recv", nth=1,
                                        action="drop")])
            send_msg(left, {"op": "first"})
            send_msg(left, {"op": "second"})
            assert recv_msg(right, faults=plan, role="w") == {"op": "second"}
        finally:
            left.close()
            right.close()

    def test_corrupt_send_is_an_undecodable_frame_for_the_peer(self):
        left, right = socket_module.socketpair()
        try:
            plan = FaultPlan([FaultRule(direction="send",
                                        action="corrupt")])
            send_msg(left, {"op": "garbled"}, faults=plan, role="w")
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_msg(right)
        finally:
            left.close()
            right.close()

    def test_close_kills_the_connection_at_that_message(self):
        left, right = socket_module.socketpair()
        try:
            plan = FaultPlan([FaultRule(direction="send",
                                        action="close")])
            with pytest.raises(ConnectionError):
                send_msg(left, {"op": "doomed"}, faults=plan, role="w")
            assert recv_msg(right) is None  # peer sees a hangup
        finally:
            left.close()
            right.close()

    def test_recv_deadline_raises_instead_of_blocking(self):
        left, right = socket_module.socketpair()
        try:
            with pytest.raises(DeadlineExceeded, match="deadline"):
                recv_msg(right, timeout=0.1)
        finally:
            left.close()
            right.close()


class TestWorkerDeathAtEveryStage:
    """Satellite (c): a worker connection dying at each pipeline stage
    — component compile, stitch/representative task, batched
    task_group, warm-queue processing — is redistributed to the
    survivor and the batch still returns byte-identical Fractions."""

    def _run_with_fault(self, tmp_path, db, rule):
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        plan = FaultPlan([rule])
        coordinator, _ = start_fleet(tmp_path, worker_faults=plan,
                                     heartbeat_interval=None)
        try:
            with ExplainSession(
                db, method="exact", executor="socket",
                coordinator=coordinator.address, min_workers=2,
            ) as session:
                results = session.explain_many(JOIN_QUERY)
        finally:
            coordinator.shutdown()
        assert plan.fired_actions() == [rule.action]  # the fault happened
        assert all(r.ok for r in results.values())
        assert values_of(results) == values_of(baseline)
        for result in baseline.values():
            assert all(isinstance(v, Fraction)
                       for v in result.values.values())

    def test_death_during_component_compile(self, tmp_path):
        self._run_with_fault(
            tmp_path, mixed_fanout_database(6, (6, 7)),
            FaultRule(role="worker", direction="recv", op="compile",
                      nth=1, action="close"),
        )

    def test_death_during_stitch_task(self, tmp_path):
        # In a pipelined cold batch the first ``task`` op a worker sees
        # is a shape representative's stitch.
        self._run_with_fault(
            tmp_path, mixed_fanout_database(6, (6, 7)),
            FaultRule(role="worker", direction="recv", op="task",
                      nth=1, action="close"),
        )

    def test_death_during_task_group(self, tmp_path):
        self._run_with_fault(
            tmp_path, mixed_fanout_database(8, (6, 7)),
            FaultRule(role="worker", direction="recv", op="task_group",
                      nth=1, action="close"),
        )

    def test_death_during_warm_queue_processing(self, tmp_path):
        db = join_database(6, 2)
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        plan = FaultPlan([FaultRule(role="worker", direction="recv",
                                    op="warm", nth=1, action="close")])
        coordinator, _ = start_fleet(tmp_path, worker_faults=plan,
                                     heartbeat_interval=None)
        try:
            with ExplainSession(
                db, method="exact", executor="socket",
                coordinator=coordinator.address,
            ) as session:
                status = session.warm_ahead(JOIN_QUERY)
                # the first warm op killed its worker; the survivor
                # absorbed the task and the queue still drained clean
                assert status["completed"] == 1
                assert status["failed"] == 0
                results = session.explain_many(JOIN_QUERY)
        finally:
            coordinator.shutdown()
        assert plan.fired_actions() == ["close"]
        assert values_of(results) == values_of(baseline)

    def test_delayed_worker_trips_the_deadline_and_is_replaced(
        self, tmp_path
    ):
        # Not death but a hang: the worker sits on its first task past
        # the coordinator's per-op deadline.  DeadlineExceeded feeds
        # the same requeue path as a dead link, so the survivor
        # finishes the batch.
        db = mixed_fanout_database(6, (6, 7))
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        plan = FaultPlan([FaultRule(role="worker", direction="recv",
                                    op="task", nth=1, action="delay",
                                    seconds=5.0)])
        coordinator, _ = start_fleet(tmp_path, worker_faults=plan,
                                     heartbeat_interval=None,
                                     op_timeout=1.0)
        try:
            with ExplainSession(
                db, method="exact", executor="socket",
                coordinator=coordinator.address, min_workers=2,
            ) as session:
                results = session.explain_many(JOIN_QUERY)
        finally:
            coordinator.shutdown()
        assert plan.fired_actions() == ["delay"]
        assert values_of(results) == values_of(baseline)


class TestHeartbeat:
    def test_silent_worker_is_discarded_after_missed_heartbeats(self):
        with Coordinator(heartbeat_interval=0.2,
                         heartbeat_miss_threshold=2) as coordinator:
            # a "worker" that registers and then never answers a ping
            ghost = socket_module.create_connection(
                coordinator.address, timeout=5
            )
            try:
                send_msg(ghost, {"op": "hello", "role": "worker",
                                 "pid": -1})
                coordinator.wait_for_workers(1, timeout=10)
                deadline = time.monotonic() + 15
                while (coordinator.n_workers and
                       time.monotonic() < deadline):
                    time.sleep(0.05)
                assert coordinator.n_workers == 0
                assert coordinator._counters["heartbeat_misses"] >= 2
            finally:
                ghost.close()

    def test_responsive_worker_is_never_discarded(self, tmp_path):
        coordinator, _ = start_fleet(tmp_path, n_workers=1,
                                     heartbeat_interval=0.1,
                                     heartbeat_miss_threshold=2)
        try:
            time.sleep(0.5)  # several heartbeat rounds
            assert coordinator.n_workers == 1
            assert coordinator._counters["heartbeat_misses"] == 0
        finally:
            coordinator.shutdown()


class TestAdmissionControl:
    def test_full_queue_rejects_with_busy_and_counts(self, tmp_path):
        db = join_database(3, 1)
        with Coordinator(max_queue=0,
                         heartbeat_interval=None) as coordinator:
            transport = SocketTransport(coordinator.address, retries=1)
            with pytest.raises(FleetBusy):
                transport.run_batch(build_plan(db))
            # initial attempt + one retry, both rejected
            assert transport.service_stats["busy_rejections"] == 2
            assert transport.service_stats["retries"] == 1
            assert coordinator._counters["rejected_batches"] == 2

    def test_busy_fleet_never_degrades_to_local(self, tmp_path):
        # busy means alive: degrade="local" must NOT swallow the
        # rejection by silently running the batch in-process.
        db = join_database(3, 1)
        with Coordinator(max_queue=0,
                         heartbeat_interval=None) as coordinator:
            transport = SocketTransport(coordinator.address, retries=0,
                                        degrade="local")
            with pytest.raises(FleetBusy):
                transport.run_batch(build_plan(db))
            assert "degraded_batches" not in transport.service_stats

    def test_admitted_batch_reports_queue_counters(self, tmp_path):
        db = join_database(4, 2)
        coordinator, _ = start_fleet(tmp_path, max_queue=1,
                                     heartbeat_interval=None)
        try:
            with ExplainSession(
                db, method="exact", executor="socket",
                coordinator=coordinator.address, min_workers=2,
            ) as session:
                results = session.explain_many(JOIN_QUERY)
                stats = session.stats
        finally:
            coordinator.shutdown()
        assert all(r.ok for r in results.values())
        assert stats["remote_queue_depth"] == 1  # this batch, mid-run
        assert stats["remote_rejected_batches"] == 0
        assert stats["remote_heartbeat_misses"] == 0


class TestResubmitDedupe:
    def test_lost_reply_is_resubmitted_and_answered_from_cache(
        self, tmp_path
    ):
        # the link dies exactly as the results frame arrives: the
        # client retries with the same batch_id and the coordinator
        # answers from its dedupe cache instead of re-running the work
        db = join_database(5, 2)
        coordinator, _ = start_fleet(tmp_path, heartbeat_interval=None)
        try:
            client_faults = FaultPlan([
                FaultRule(role="client", direction="recv", op="results",
                          nth=1, action="close"),
            ])
            transport = SocketTransport(coordinator.address, retries=2,
                                        faults=client_faults)
            results = transport.run_batch(build_plan(db))
            assert all(r.ok for r in results.values())
            assert client_faults.fired_actions() == ["close"]
            assert transport.service_stats["retries"] == 1
            assert coordinator._counters["batches_resubmitted"] == 1
        finally:
            coordinator.shutdown()

    def test_idempotent_ops_retry_through_link_faults(self, tmp_path):
        coordinator, _ = start_fleet(tmp_path, heartbeat_interval=None)
        try:
            client_faults = FaultPlan([
                FaultRule(role="client", direction="recv", op="pong",
                          nth=1, action="close"),
            ])
            transport = SocketTransport(coordinator.address, retries=2,
                                        faults=client_faults)
            assert transport.ping() == 2  # first reply lost, retry won
            assert transport.service_stats["retries"] == 1
        finally:
            coordinator.shutdown()


class TestGracefulDegradation:
    def test_unknown_degrade_policy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown degrade policy"):
            SocketTransport(("127.0.0.1", 1), degrade="cloud")

    def test_unreachable_fleet_degrades_to_identical_fractions(self):
        db = join_database(5, 2)
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        with ExplainSession(
            db, method="exact", executor="socket",
            coordinator=("127.0.0.1", 1), degrade="local",
            retries=1, op_timeout=1.0, connect_retry_for=0.05,
        ) as session:
            with pytest.warns(RuntimeWarning, match="degrading"):
                results = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert values_of(results) == values_of(baseline)
        for result in results.values():
            assert all(isinstance(v, Fraction)
                       for v in result.values.values())
        assert stats["degraded_batches"] == 1
        assert stats["retries"] >= 1

    def test_without_degrade_the_failure_is_loud(self):
        db = join_database(2, 1)
        with ExplainSession(
            db, method="exact", executor="socket",
            coordinator=("127.0.0.1", 1),
            retries=0, connect_retry_for=0.05,
        ) as session:
            with pytest.raises(FleetUnavailable, match="cannot reach"):
                session.explain_many(JOIN_QUERY)

    def test_bench_json_reports_resilience_counters_end_to_end(
        self, capsys
    ):
        # the acceptance criterion: a bench against an unreachable
        # coordinator with --degrade local still produces answers and
        # reports degraded_batches (plus the other counters) in --json
        code = cli_main([
            "bench", "--jobs-mode", "socket",
            "--coordinator", "127.0.0.1:1",
            "--degrade", "local", "--op-timeout", "0.2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] == payload["outputs"] > 0
        stats = payload["stats"]
        assert stats["degraded_batches"] == 1
        assert stats["retries"] >= 1
        assert payload["fractions_digest"]


class TestProcessPoolRestart:
    def test_killed_pool_children_trigger_one_restart(self):
        db = join_database(4, 2)
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        with ExplainSession(
            db, method="exact", executor="process", max_workers=2,
        ) as session:
            first = session.explain_many(JOIN_QUERY)
            transport = session._transports["process"]
            for pid in list(transport._pool._processes):
                os.kill(pid, signal.SIGKILL)
            second = session.explain_many(JOIN_QUERY)
            stats = session.stats
        assert values_of(first) == values_of(baseline)
        assert values_of(second) == values_of(baseline)
        assert stats["pool_restarts"] == 1


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals required")
class TestRealProcesses:
    """The CI ``chaos`` job's real-process test: SIGKILL a worker
    mid-batch, freeze the other past the heartbeat threshold, thaw it,
    and require identical Fractions plus live resilience counters."""

    @staticmethod
    def _spawn_worker(address, store_dir):
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"{address[0]}:{address[1]}",
             "--cache-dir", store_dir, "--reconnect-for", "60"],
            env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    def test_sigkill_and_freeze_recovery(self, tmp_path):
        db = mixed_fanout_database(8, (6, 7))
        baseline = ExplainSession(db, method="exact").explain_many(JOIN_QUERY)
        coordinator = Coordinator(heartbeat_interval=0.25,
                                  heartbeat_miss_threshold=2).start()
        store_dir = str(tmp_path / "store")
        victim = survivor = None
        killer = None
        try:
            victim = self._spawn_worker(coordinator.address, store_dir)
            survivor = self._spawn_worker(coordinator.address, store_dir)
            assert coordinator.wait_for_workers(2, timeout=30) == 2
            with ExplainSession(
                db, method="exact", executor="socket",
                coordinator=coordinator.address,
            ) as session:
                # phase 1: SIGKILL one worker mid-batch — the batch
                # must complete on the survivor, Fractions identical
                killer = threading.Timer(
                    0.3, os.kill, (victim.pid, signal.SIGKILL)
                )
                killer.start()
                results = session.explain_many(JOIN_QUERY)
                killer.join()
                assert values_of(results) == values_of(baseline)

                # phase 2: freeze the survivor — the heartbeat thread
                # must notice the silence and discard the link
                os.kill(survivor.pid, signal.SIGSTOP)
                deadline = time.monotonic() + 20
                while (coordinator.n_workers and
                       time.monotonic() < deadline):
                    time.sleep(0.05)
                assert coordinator.n_workers == 0
                assert coordinator._counters["heartbeat_misses"] >= 2

                # phase 3: thaw it — the worker's reconnect loop must
                # re-register and serve another identical batch
                os.kill(survivor.pid, signal.SIGCONT)
                assert coordinator.wait_for_workers(1, timeout=30) >= 1
                again = session.explain_many(JOIN_QUERY)
                stats = session.stats
            assert values_of(again) == values_of(baseline)
            assert stats["remote_reconnects"] >= 1
            assert stats["remote_heartbeat_misses"] >= 2
        finally:
            if killer is not None:
                killer.cancel()
            for proc in (victim, survivor):
                if proc is not None:
                    try:
                        proc.kill()
                    except OSError:
                        pass
                    proc.wait(timeout=10)
            coordinator.shutdown()
