"""Tests for the extension measures: exact SHAP-scores, causal effect
(Banzhaf), and counterfactual responsibility."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import circuit_from_nested, eliminate_auxiliary, tseytin_transform
from repro.compiler import compile_cnf
from repro.core import shapley_all_facts, shapley_naive
from repro.core.causal_effect import (
    causal_effects,
    responsibilities,
    responsibility,
)
from repro.core.shap_score import shap_score_of_fact, shap_scores
from repro.db import lineage
from repro.workloads.flights import (
    EXPECTED_SHAPLEY,
    fact,
    flights_database,
    flights_query,
)
from repro.workloads.synthetic import random_monotone_dnf


def compile_ddnnf(circuit):
    cnf = tseytin_transform(circuit)
    return eliminate_auxiliary(compile_cnf(cnf).circuit, set(cnf.labels.values()))


def flights_ddnnf():
    db = flights_database()
    plan = flights_query().to_algebra(db.schema)
    circuit = lineage(plan, db, endogenous_only=True).lineage_of(())
    return db, compile_ddnnf(circuit)


def brute_shap(circuit, players, instance, marginals):
    """Direct SHAP-score from the definition (exponential)."""

    def conditional_expectation(fixed):
        total = Fraction(0)
        free = [p for p in players if p not in fixed]
        for mask in range(1 << len(free)):
            weight = Fraction(1)
            chosen = {p for p, v in fixed.items() if v}
            for i, p in enumerate(free):
                if mask >> i & 1:
                    weight *= marginals[p]
                    chosen.add(p)
                else:
                    weight *= 1 - marginals[p]
            if circuit.evaluate(chosen):
                total += weight
        return total

    def game(coalition):
        fixed = {p: instance[p] for p in coalition}
        return conditional_expectation(fixed)

    return shapley_naive(game, players)


class TestShapScores:
    def test_default_setting_equals_shapley(self):
        """With e = all-present and an all-absent background, the exact
        SHAP-score is the Shapley value (why Kernel SHAP is a fair
        baseline in the paper)."""
        db, ddnnf = flights_ddnnf()
        endo = db.endogenous_facts()
        scores = shap_scores(ddnnf, endo)
        for name, expected in EXPECTED_SHAPLEY.items():
            assert scores[fact(name)] == expected, name

    def test_unknown_feature(self):
        _, ddnnf = flights_ddnnf()
        with pytest.raises(ValueError):
            shap_score_of_fact(ddnnf, ["a"], "zz", {}, {})

    @given(
        st.integers(3, 5),
        st.integers(1, 4),
        st.integers(1, 2),
        st.integers(0, 1000),
        st.lists(st.sampled_from([0, 1, 2]), min_size=5, max_size=5),
        st.lists(st.booleans(), min_size=5, max_size=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_brute_force(self, n_vars, n_terms, width, seed,
                                 numerators, bits):
        circuit = random_monotone_dnf(n_vars, n_terms, width, seed)
        players = [f"x{i}" for i in range(n_vars)]
        marginals = {
            p: Fraction(numerators[i % 5], 4) for i, p in enumerate(players)
        }
        instance = {p: bits[i % 5] for i, p in enumerate(players)}
        ddnnf = compile_ddnnf(circuit)
        expected = brute_shap(circuit, players, instance, marginals)
        actual = shap_scores(ddnnf, players, instance, marginals)
        assert actual == expected

    def test_nontrivial_marginals_differ_from_shapley(self):
        circuit = circuit_from_nested(("or", "a", ("and", "b", "c")))
        players = ["a", "b", "c"]
        ddnnf = compile_ddnnf(circuit)
        shapley = shapley_all_facts(ddnnf, players)
        scores = shap_scores(
            ddnnf, players,
            instance={p: True for p in players},
            marginals={p: Fraction(1, 2) for p in players},
        )
        assert scores != shapley


class TestCausalEffect:
    def test_dictator(self):
        ddnnf = compile_ddnnf(circuit_from_nested("x"))
        effects = causal_effects(ddnnf, ["x", "y"])
        assert effects["x"] == 1 and effects["y"] == 0

    def test_and_game(self):
        ddnnf = compile_ddnnf(circuit_from_nested(("and", "x", "y")))
        effects = causal_effects(ddnnf, ["x", "y"])
        assert effects["x"] == effects["y"] == Fraction(1, 2)

    def test_flights_ranking_matches_shapley(self):
        db, ddnnf = flights_ddnnf()
        endo = db.endogenous_facts()
        effects = causal_effects(ddnnf, endo)
        shapley = shapley_all_facts(ddnnf, endo)
        # same symmetry classes, same top fact and zero fact
        assert max(effects, key=effects.get) == fact("a1")
        assert effects[fact("a8")] == 0
        assert effects[fact("a2")] == effects[fact("a3")]
        # ...but different values: causal effect is not Shapley.
        assert effects[fact("a1")] != shapley[fact("a1")]

    @given(st.integers(3, 6), st.integers(1, 5), st.integers(1, 2),
           st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_matches_banzhaf_definition(self, n_vars, n_terms, width, seed):
        circuit = random_monotone_dnf(n_vars, n_terms, width, seed)
        players = [f"x{i}" for i in range(n_vars)]
        ddnnf = compile_ddnnf(circuit)
        effects = causal_effects(ddnnf, players)
        for target in players:
            others = [p for p in players if p != target]
            diff = 0
            for mask in range(1 << len(others)):
                coalition = {others[i] for i in range(len(others))
                             if mask >> i & 1}
                diff += int(circuit.evaluate(coalition | {target}))
                diff -= int(circuit.evaluate(coalition))
            assert effects[target] == Fraction(diff, 1 << len(others))


class TestResponsibility:
    def test_counterfactual_fact(self):
        circuit = circuit_from_nested("x")
        assert responsibility(circuit, ["x"], "x") == 1

    def test_needs_contingency(self):
        # x | y: removing y makes x counterfactual -> 1/2 each.
        circuit = circuit_from_nested(("or", "x", "y"))
        values = responsibilities(circuit, ["x", "y"])
        assert values == {"x": Fraction(1, 2), "y": Fraction(1, 2)}

    def test_irrelevant_fact(self):
        circuit = circuit_from_nested("x")
        assert responsibility(circuit, ["x", "z"], "z") == 0

    def test_flights(self):
        db = flights_database()
        plan = flights_query().to_algebra(db.schema)
        circuit = lineage(plan, db, endogenous_only=True).lineage_of(())
        endo = db.endogenous_facts()
        # a1 needs the two route families removed: contingency of
        # removing {a4, a5 (or a2, a3), a6 or a7}-style sets.
        value = responsibility(circuit, endo, fact("a1"))
        assert value == Fraction(1, 4)
        assert responsibility(circuit, endo, fact("a8")) == 0

    def test_max_contingency_bound(self):
        db = flights_database()
        plan = flights_query().to_algebra(db.schema)
        circuit = lineage(plan, db, endogenous_only=True).lineage_of(())
        endo = db.endogenous_facts()
        assert responsibility(circuit, endo, fact("a1"), max_contingency=1) == 0

    def test_non_answer_returns_zero(self):
        circuit = circuit_from_nested(("and", "x", "y"))
        # with only x as player and y absent, query never holds
        assert responsibility(circuit, ["x"], "x") == 0
