"""Tests for the end-to-end exact pipeline (Figure 3) and explainer."""

from fractions import Fraction

import pytest

from repro.compiler import BudgetExceeded, CompilationBudget
from repro.core import (
    ExactOutcome,
    ShapleyExplainer,
    ShapleyTimeout,
    exact_shapley_of_circuit,
    run_exact,
    to_plan,
)
from repro.db import Operator, Project, Scan, cq, lineage
from repro.workloads.flights import (
    EXPECTED_SHAPLEY,
    fact,
    flights_database,
    flights_query,
)
from repro.workloads.synthetic import intractable_circuit


class TestToPlan:
    def test_sql_string(self):
        db = flights_database()
        plan = to_plan("SELECT src FROM Flights", db)
        assert isinstance(plan, Operator)

    def test_cq(self):
        db = flights_database()
        plan = to_plan(cq(None, "Flights(x, y)"), db)
        assert isinstance(plan, Operator)

    def test_passthrough(self):
        db = flights_database()
        plan = Project(Scan("Flights"), ("Flights.src",))
        assert to_plan(plan, db) is plan


class TestRunExact:
    def circuit(self):
        db = flights_database()
        plan = flights_query().to_algebra(db.schema)
        return db, lineage(plan, db, endogenous_only=True).lineage_of(())

    def test_ok_outcome(self):
        db, circuit = self.circuit()
        outcome = run_exact(circuit, db.endogenous_facts())
        assert outcome.ok and outcome.status == "ok"
        assert outcome.values[fact("a1")] == EXPECTED_SHAPLEY["a1"]

    def test_stats_recorded(self):
        db, circuit = self.circuit()
        outcome = run_exact(circuit, db.endogenous_facts())
        stats = outcome.stats
        assert stats.n_facts == 7  # a8 is not in the lineage
        assert stats.cnf_clauses > 0
        assert stats.cnf_vars >= stats.n_facts
        assert stats.ddnnf_size > 0
        assert outcome.compile_seconds >= 0
        assert outcome.shapley_seconds >= 0

    def test_budget_failure_outcome(self):
        circuit = intractable_circuit()
        players = sorted(circuit.reachable_vars())
        outcome = run_exact(
            circuit, players, budget=CompilationBudget(max_nodes=200)
        )
        assert outcome.status == "budget"
        assert not outcome.ok
        assert outcome.values is None
        assert outcome.error

    def test_exact_shapley_of_circuit_raises_on_budget(self):
        circuit = intractable_circuit()
        players = sorted(circuit.reachable_vars())
        with pytest.raises(BudgetExceeded):
            exact_shapley_of_circuit(
                circuit, players, budget=CompilationBudget(max_nodes=200)
            )

    def test_conditioning_method_through_pipeline(self):
        db, circuit = self.circuit()
        outcome = run_exact(
            circuit, db.endogenous_facts(), method="conditioning"
        )
        assert outcome.values[fact("a6")] == EXPECTED_SHAPLEY["a6"]


class TestExplainer:
    def test_explain_boolean_query(self):
        db = flights_database()
        explainer = ShapleyExplainer(db)
        explanations = explainer.explain(flights_query())
        assert list(explanations) == [()]
        values = explanations[()].values()
        assert values[fact("a1")] == EXPECTED_SHAPLEY["a1"]

    def test_explain_sql_multi_answer(self):
        db = flights_database()
        explainer = ShapleyExplainer(db)
        explanations = explainer.explain(
            "SELECT a.country FROM Flights f, Airports a WHERE f.dest = a.name"
        )
        assert ("FR",) in explanations
        values = explanations[("FR",)].values()
        assert all(v >= 0 for v in values.values())

    def test_top(self):
        db = flights_database()
        explainer = ShapleyExplainer(db)
        explanation = explainer.explain(flights_query())[()]
        top = explanation.top(3)
        assert top[0][0] == fact("a1")
        assert len(top) == 3

    def test_restrict_to_lineage_equivalence(self):
        db = flights_database()
        narrow = ShapleyExplainer(db, restrict_to_lineage=True)
        wide = ShapleyExplainer(db, restrict_to_lineage=False)
        v_narrow = narrow.explain(flights_query())[()].values()
        v_wide = wide.explain(flights_query())[()].values()
        for key, value in v_narrow.items():
            assert v_wide[key] == value
        # the wide variant additionally reports the null fact
        assert v_wide[fact("a8")] == 0

    def test_failed_outcome_raises_on_access(self):
        outcome = ExactOutcome("budget", None, None)
        from repro.core.pipeline import TupleExplanation

        explanation = TupleExplanation((), outcome)
        with pytest.raises(RuntimeError):
            explanation.values()
