"""Tests for the SQL front-end: tokenizer, parser, planner."""

import pytest

from repro.db import (
    BooleanSemiring,
    CountingSemiring,
    Database,
    RelationSchema,
    Schema,
    SqlError,
    evaluate,
    parse_sql,
    plan_sql,
)
from repro.db.sql import tokenize


def shop_schema():
    return Schema.of(
        RelationSchema.of("users", ("uid", int), ("name", str), ("city", str)),
        RelationSchema.of("orders", ("oid", int), ("uid", int), ("total", int)),
        RelationSchema.of("items", ("oid", int), ("product", str)),
    )


def shop_db():
    db = Database(shop_schema())
    db.add("users", 1, "ann", "paris")
    db.add("users", 2, "bob", "lyon")
    db.add("users", 3, "cyd", "paris")
    db.add("orders", 10, 1, 99)
    db.add("orders", 11, 2, 5)
    db.add("orders", 12, 1, 30)
    db.add("items", 10, "book")
    db.add("items", 10, "pen")
    db.add("items", 11, "mug")
    return db


def rows(sql, db=None):
    db = db or shop_db()
    plan = plan_sql(sql, db.schema)
    return sorted(evaluate(plan, db, BooleanSemiring()).tuples())


class TestTokenizer:
    def test_symbols_and_keywords(self):
        kinds = [(t.kind, t.value) for t in tokenize("SELECT a FROM t WHERE x <= 3")]
        assert ("KEYWORD", "SELECT") in kinds
        assert ("SYMBOL", "<=") in kinds
        assert kinds[-1] == ("EOF", "")

    def test_string_with_escaped_quote(self):
        tokens = tokenize("SELECT a FROM t WHERE b = 'it''s'")
        strings = [t.value for t in tokens if t.kind == "STRING"]
        assert strings == ["it's"]

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("SELECT 'oops")

    def test_negative_number(self):
        tokens = tokenize("SELECT a FROM t WHERE b = -3")
        assert ("NUMBER", "-3") == (tokens[-2].kind, tokens[-2].value)

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT a FROM t WHERE b # 3")


class TestParser:
    def test_simple_select(self):
        parsed = parse_sql("SELECT name FROM users")
        assert parsed.selects[0].columns == ["name"]
        assert parsed.selects[0].tables == [("users", "users")]

    def test_aliases(self):
        parsed = parse_sql("SELECT u.name FROM users AS u, orders o")
        assert parsed.selects[0].tables == [("users", "u"), ("orders", "o")]

    def test_star(self):
        parsed = parse_sql("SELECT * FROM users")
        assert parsed.selects[0].columns == []

    def test_union(self):
        parsed = parse_sql("SELECT name FROM users UNION SELECT product FROM items")
        assert len(parsed.selects) == 2

    def test_missing_from(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT name users")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT name FROM users extra junk ,")

    def test_not_requires_like_in_between(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t WHERE a NOT = 3")


class TestPlanning:
    def test_projection(self):
        assert rows("SELECT city FROM users") == [("lyon",), ("paris",)]

    def test_where_equality(self):
        assert rows("SELECT name FROM users WHERE city = 'paris'") == [
            ("ann",), ("cyd",),
        ]

    def test_join_via_where(self):
        result = rows(
            "SELECT u.name FROM users u, orders o WHERE u.uid = o.uid AND o.total > 20"
        )
        assert result == [("ann",)]

    def test_three_way_join(self):
        result = rows(
            """
            SELECT i.product FROM users u, orders o, items i
            WHERE u.uid = o.uid AND o.oid = i.oid AND u.city = 'paris'
            """
        )
        assert result == [("book",), ("pen",)]

    def test_no_cross_product_in_connected_join(self):
        plan = plan_sql(
            "SELECT u.name FROM users u, orders o WHERE u.uid = o.uid",
            shop_schema(),
        )
        # The join must carry the equi-pair rather than a post-filter.
        assert "Join((u.uid" in repr(plan).replace("'", "") or "pairs" not in repr(plan)
        result = rows("SELECT u.name FROM users u, orders o WHERE u.uid = o.uid")
        assert ("ann",) in result

    def test_cross_product_fallback(self):
        result = rows("SELECT u.name FROM users u, items i WHERE i.product = 'mug'")
        assert len(result) == 3

    def test_select_star_columns(self):
        plan = plan_sql("SELECT * FROM users", shop_schema())
        rel = evaluate(plan, shop_db(), BooleanSemiring())
        assert rel.columns == ("users.uid", "users.name", "users.city")

    def test_union_merges(self):
        result = rows(
            "SELECT name FROM users WHERE city = 'lyon' "
            "UNION SELECT product FROM items WHERE product = 'mug'"
        )
        assert result == [("bob",), ("mug",)]

    def test_like(self):
        assert rows("SELECT name FROM users WHERE name LIKE '%n%'") == [
            ("ann",),
        ]

    def test_not_like(self):
        assert rows("SELECT name FROM users WHERE name NOT LIKE 'a%'") == [
            ("bob",), ("cyd",),
        ]

    def test_in_list(self):
        assert rows("SELECT name FROM users WHERE uid IN (1, 3)") == [
            ("ann",), ("cyd",),
        ]

    def test_between(self):
        assert rows("SELECT oid FROM orders WHERE total BETWEEN 5 AND 50") == [
            (11,), (12,),
        ]

    def test_or_predicate(self):
        result = rows(
            "SELECT name FROM users WHERE city = 'lyon' OR uid = 1"
        )
        assert result == [("ann",), ("bob",)]

    def test_self_join_with_aliases(self):
        result = rows(
            """
            SELECT u1.name FROM users u1, users u2
            WHERE u1.city = u2.city AND u1.uid <> u2.uid
            """
        )
        assert result == [("ann",), ("cyd",)]

    def test_join_condition_on_same_table_pair_cycle(self):
        # Two equality edges between the same pair of tables.
        result = rows(
            """
            SELECT o.oid FROM orders o, items i
            WHERE o.oid = i.oid AND i.oid = o.oid
            """
        )
        assert result == [(10,), (11,)]


class TestResolution:
    def test_unknown_column(self):
        with pytest.raises(SqlError):
            plan_sql("SELECT nope FROM users", shop_schema())

    def test_unknown_alias(self):
        with pytest.raises(SqlError):
            plan_sql("SELECT x.name FROM users u", shop_schema())

    def test_ambiguous_column(self):
        with pytest.raises(SqlError):
            plan_sql("SELECT oid FROM orders, items", shop_schema())

    def test_duplicate_alias(self):
        with pytest.raises(SqlError):
            plan_sql("SELECT name FROM users u, orders u", shop_schema())

    def test_qualified_resolution_in_predicates(self):
        result = rows(
            "SELECT i.oid FROM orders o, items i WHERE o.oid = i.oid AND o.uid = 1"
        )
        assert result == [(10,)]


class TestAnnotatedSql:
    def test_counting_through_sql(self):
        db = shop_db()
        plan = plan_sql(
            "SELECT u.city FROM users u, orders o WHERE u.uid = o.uid",
            db.schema,
        )
        rel = evaluate(plan, db, CountingSemiring())
        assert rel.rows[("paris",)] == 2  # ann has two orders
        assert rel.rows[("lyon",)] == 1
