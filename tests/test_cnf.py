"""Unit tests for repro.circuits.cnf."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Cnf, CnfError


class TestConstruction:
    def test_basic(self):
        cnf = Cnf(3, [(1, -2), (2, 3)])
        assert cnf.num_vars == 3
        assert cnf.num_clauses == 2

    def test_literal_out_of_range(self):
        with pytest.raises(CnfError):
            Cnf(2, [(1, 3)])
        with pytest.raises(CnfError):
            Cnf(2, [(0,)])

    def test_new_var_and_labels(self):
        cnf = Cnf(0)
        x = cnf.new_var("fact-x")
        z = cnf.new_var()
        assert cnf.var_for_label("fact-x") == x
        assert cnf.labelled_vars() == {x}
        assert cnf.auxiliary_vars() == {z}

    def test_set_label(self):
        cnf = Cnf(2)
        cnf.set_label(2, "y")
        assert cnf.var_for_label("y") == 2


class TestSemantics:
    def test_evaluate(self):
        cnf = Cnf(3, [(1, -2), (2, 3)])
        assert cnf.evaluate({1, 2})
        assert not cnf.evaluate({2})       # first clause fails
        assert cnf.evaluate({3})           # -2 true, 3 true
        assert not cnf.evaluate(set()) is False or True  # smoke

    def test_evaluate_empty_clause_unsat(self):
        cnf = Cnf(1)
        cnf.add_clause(())
        assert not cnf.evaluate({1})

    def test_evaluate_labelled_without_aux(self):
        cnf = Cnf(0)
        x = cnf.new_var("x")
        y = cnf.new_var("y")
        cnf.add_clause((x, y))
        assert cnf.evaluate_labelled({"x"})
        assert not cnf.evaluate_labelled(set())

    def test_evaluate_labelled_with_aux_existential(self):
        # (z | x) & (!z | y): satisfiable given x (choose z false ... x
        # covers clause 1? clause1 = z|x true via x; clause2 via !z).
        cnf = Cnf(0)
        x = cnf.new_var("x")
        y = cnf.new_var("y")
        z = cnf.new_var()
        cnf.add_clause((z, x))
        cnf.add_clause((-z, y))
        assert cnf.evaluate_labelled({"x"})
        assert cnf.evaluate_labelled({"y"})
        assert not cnf.evaluate_labelled(set())

    def test_condition(self):
        cnf = Cnf(3, [(1, 2), (-1, 3)])
        conditioned = cnf.condition({1: True})
        assert conditioned.clauses == [(3,)]
        conditioned = cnf.condition({1: False})
        assert conditioned.clauses == [(2,)]


class TestUnitPropagation:
    def test_forces_chain(self):
        cnf = Cnf(3, [(1,), (-1, 2), (-2, 3)])
        forced, residual, conflict = cnf.unit_propagate()
        assert not conflict
        assert forced == {1: True, 2: True, 3: True}
        assert residual == []

    def test_conflict(self):
        cnf = Cnf(1, [(1,), (-1,)])
        _, _, conflict = cnf.unit_propagate()
        assert conflict

    def test_residual_untouched_clauses(self):
        cnf = Cnf(4, [(1,), (2, 3, 4)])
        forced, residual, conflict = cnf.unit_propagate()
        assert not conflict
        assert forced == {1: True}
        assert residual == [(2, 3, 4)]


class TestDimacs:
    def test_roundtrip(self):
        cnf = Cnf(4, [(1, -2), (3,), (-4, 2, 1)])
        text = cnf.to_dimacs()
        back = Cnf.from_dimacs(text)
        assert back.num_vars == 4
        assert back.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        cnf = Cnf.from_dimacs(text)
        assert cnf.clauses == [(1, -2)]

    def test_missing_header(self):
        with pytest.raises(CnfError):
            Cnf.from_dimacs("1 2 0\n")

    def test_bad_header(self):
        with pytest.raises(CnfError):
            Cnf.from_dimacs("p sat 2 1\n1 0\n")


@given(
    st.lists(
        st.lists(
            st.integers(1, 5).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
        ),
        max_size=8,
    ),
    st.sets(st.integers(1, 5)),
)
@settings(max_examples=150, deadline=None)
def test_condition_consistency(clauses, truth):
    """Conditioning on a full assignment agrees with evaluation."""
    cnf = Cnf(5, clauses)
    assignment = {v: (v in truth) for v in range(1, 6)}
    conditioned = cnf.condition(assignment)
    expected = cnf.evaluate(truth)
    assert (conditioned.num_clauses == 0) == expected


@given(
    st.lists(
        st.lists(
            st.integers(1, 5).flatmap(lambda v: st.sampled_from([v, -v])),
            min_size=1,
            max_size=4,
        ),
        max_size=8,
    )
)
@settings(max_examples=100, deadline=None)
def test_unit_propagation_preserves_models(clauses):
    """Every model of the CNF respects the propagated literals."""
    cnf = Cnf(5, clauses)
    forced, residual, conflict = cnf.unit_propagate()
    for mask in range(32):
        truth = {v for v in range(1, 6) if mask >> (v - 1) & 1}
        if cnf.evaluate(truth):
            assert not conflict
            for var, value in forced.items():
                assert (var in truth) == value
            residual_cnf = Cnf(5, residual)
            assert residual_cnf.evaluate(truth)
