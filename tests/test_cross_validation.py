"""Cross-module validation: every independent route to a Shapley value
must agree.

For random lineage-shaped inputs we compare:

1. the naive definition (Equation 1) evaluated on the circuit game;
2. Algorithm 1 in conditioning mode;
3. Algorithm 1 in derivative (shared-pass) mode;
4. Algorithm 1 on the OBDD backend instead of the DPLL compiler;
5. the Proposition 3.1 reduction through a PQE oracle (on DB-backed
   instances).

These are the strongest correctness guarantees in the suite: the routes
share almost no code.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import eliminate_auxiliary, tseytin_transform
from repro.compiler import compile_circuit_obdd, compile_cnf
from repro.core import (
    game_from_circuit,
    shapley_all_facts,
    shapley_all_via_pqe,
    shapley_naive,
    shapley_naive_query,
)
from repro.db import Database, RelationSchema, Schema, cq, lineage
from repro.workloads.synthetic import random_monotone_dnf


def compile_dpll(circuit):
    cnf = tseytin_transform(circuit)
    return eliminate_auxiliary(compile_cnf(cnf).circuit, set(cnf.labels.values()))


@given(
    st.integers(3, 8),
    st.integers(1, 9),
    st.integers(1, 3),
    st.integers(0, 100_000),
)
@settings(max_examples=30, deadline=None)
def test_four_circuit_routes_agree(n_vars, n_terms, width, seed):
    circuit = random_monotone_dnf(n_vars, n_terms, width, seed)
    players = [f"x{i}" for i in range(n_vars)]

    naive = shapley_naive(game_from_circuit(circuit), players)
    dpll = compile_dpll(circuit)
    conditioning = shapley_all_facts(dpll, players, method="conditioning")
    derivative = shapley_all_facts(dpll, players, method="derivative")
    obdd, _ = compile_circuit_obdd(circuit)
    via_obdd = shapley_all_facts(obdd, players, method="derivative")

    assert conditioning == naive
    assert derivative == naive
    assert via_obdd == naive


@st.composite
def tiny_instances(draw):
    """Random R/S databases with a random endogenous split."""
    r_values = draw(st.sets(st.integers(1, 3), min_size=1, max_size=3))
    s_values = draw(
        st.sets(
            st.tuples(st.integers(1, 3), st.integers(10, 11)),
            min_size=1,
            max_size=4,
        )
    )
    endo_flags = draw(st.lists(st.booleans(), min_size=8, max_size=8))
    return sorted(r_values), sorted(s_values), endo_flags


@given(tiny_instances())
@settings(max_examples=15, deadline=None)
def test_pqe_reduction_agrees_with_naive_on_databases(instance):
    r_values, s_values, endo_flags = instance
    schema = Schema.of(
        RelationSchema.of("R", "a"), RelationSchema.of("S", "a", "b")
    )
    db = Database(schema)
    flag = iter(endo_flags + [True] * 8)
    for v in r_values:
        db.add("R", v, endogenous=next(flag))
    for pair in s_values:
        db.add("S", *pair, endogenous=next(flag))
    if not db.endogenous_facts():
        return
    q = cq(None, "R(x)", "S(x, y)")
    plan = q.to_algebra(schema)
    naive = shapley_naive_query(plan, db)
    via_pqe = shapley_all_via_pqe(q, db)
    assert via_pqe == naive


def test_flights_all_five_routes():
    """The running example through every route at once."""
    from repro.workloads.flights import (
        EXPECTED_SHAPLEY,
        fact,
        flights_database,
        flights_query,
    )

    db = flights_database()
    q = flights_query()
    plan = q.to_algebra(db.schema)
    circuit = lineage(plan, db, endogenous_only=True).lineage_of(())
    endo = db.endogenous_facts()
    expected = {fact(k): v for k, v in EXPECTED_SHAPLEY.items()}

    assert shapley_naive_query(plan, db) == expected
    dpll = compile_dpll(circuit)
    assert shapley_all_facts(dpll, endo, method="conditioning") == expected
    assert shapley_all_facts(dpll, endo, method="derivative") == expected
    obdd, _ = compile_circuit_obdd(circuit)
    assert shapley_all_facts(obdd, endo) == expected
    assert shapley_all_via_pqe(q, db) == expected
