"""Tests for relational algebra evaluation across semirings."""

import pytest

from repro.db import (
    AlgebraError,
    And,
    Between,
    BooleanSemiring,
    Col,
    Comparison,
    Const,
    CountingSemiring,
    Database,
    Fact,
    InList,
    Join,
    Like,
    Not,
    Or,
    PolynomialSemiring,
    Project,
    RelationSchema,
    Rename,
    Scan,
    Schema,
    Select,
    Union,
    WhySemiring,
    boolean_answer,
    count_filters,
    count_joins,
    evaluate,
    lineage,
)


def sample_db():
    schema = Schema.of(
        RelationSchema.of("R", ("a", int), ("b", str)),
        RelationSchema.of("S", ("b", str), ("c", int)),
    )
    db = Database(schema)
    db.add("R", 1, "x")
    db.add("R", 2, "x")
    db.add("R", 3, "y")
    db.add("S", "x", 10)
    db.add("S", "y", 20)
    db.add("S", "y", 30)
    return db


class TestOperators:
    def test_scan_columns(self):
        rel = evaluate(Scan("R"), sample_db(), CountingSemiring())
        assert rel.columns == ("R.a", "R.b")
        assert len(rel) == 3

    def test_scan_alias(self):
        rel = evaluate(Scan("R", "r1"), sample_db(), CountingSemiring())
        assert rel.columns == ("r1.a", "r1.b")

    def test_select(self):
        plan = Select(Scan("R"), Comparison("=", Col("R.b"), Const("x")))
        rel = evaluate(plan, sample_db(), CountingSemiring())
        assert sorted(t[0] for t in rel.tuples()) == [1, 2]

    def test_project_merges_duplicates(self):
        plan = Project(Scan("R"), ("R.b",))
        rel = evaluate(plan, sample_db(), CountingSemiring())
        assert rel.rows[("x",)] == 2
        assert rel.rows[("y",)] == 1

    def test_join(self):
        plan = Join(Scan("R"), Scan("S"), (("R.b", "S.b"),))
        rel = evaluate(plan, sample_db(), CountingSemiring())
        # R has 2 x-rows and 1 y-row; S has 1 x-row and 2 y-rows
        assert len(rel) == 2 * 1 + 1 * 2

    def test_join_cross_product(self):
        plan = Join(Scan("R"), Scan("S"))
        rel = evaluate(plan, sample_db(), CountingSemiring())
        assert len(rel) == 9

    def test_join_build_side_symmetry(self):
        db = sample_db()
        pairs = (("R.b", "S.b"),)
        left_heavy = evaluate(Join(Scan("R"), Scan("S"), pairs), db, CountingSemiring())
        right_pairs = (("S.b", "R.b"),)
        right_heavy = evaluate(Join(Scan("S"), Scan("R"), right_pairs), db, CountingSemiring())
        assert len(left_heavy) == len(right_heavy)

    def test_union(self):
        plan = Union((Project(Scan("R"), ("R.b",)), Project(Scan("S"), ("S.b",))))
        rel = evaluate(plan, sample_db(), CountingSemiring())
        assert rel.rows[("x",)] == 2 + 1
        assert rel.rows[("y",)] == 1 + 2

    def test_union_arity_mismatch(self):
        plan = Union((Scan("R"), Project(Scan("S"), ("S.b",))))
        with pytest.raises(AlgebraError):
            evaluate(plan, sample_db(), CountingSemiring())

    def test_union_empty(self):
        with pytest.raises(AlgebraError):
            evaluate(Union(()), sample_db(), CountingSemiring())

    def test_rename(self):
        plan = Rename(Scan("R"), (("R.a", "key"),))
        rel = evaluate(plan, sample_db(), CountingSemiring())
        assert rel.columns == ("key", "R.b")

    def test_column_resolution_suffix(self):
        plan = Select(Scan("R"), Comparison("=", Col("a"), Const(1)))
        rel = evaluate(plan, sample_db(), CountingSemiring())
        assert len(rel) == 1

    def test_column_resolution_ambiguous(self):
        plan = Join(Scan("R"), Scan("S"))
        joined = evaluate(plan, sample_db(), CountingSemiring())
        with pytest.raises(AlgebraError):
            joined.column_index("b")

    def test_column_resolution_unknown(self):
        rel = evaluate(Scan("R"), sample_db(), CountingSemiring())
        with pytest.raises(AlgebraError):
            rel.column_index("zzz")


class TestPredicates:
    def db(self):
        return sample_db()

    def run(self, predicate, relation="R"):
        rel = evaluate(Select(Scan(relation), predicate), self.db(), BooleanSemiring())
        return sorted(rel.tuples())

    def test_comparisons(self):
        assert self.run(Comparison("<", Col("a"), Const(3))) == [(1, "x"), (2, "x")]
        assert self.run(Comparison(">=", Col("a"), Const(3))) == [(3, "y")]
        assert self.run(Comparison("<>", Col("b"), Const("x"))) == [(3, "y")]

    def test_bad_operator(self):
        with pytest.raises(AlgebraError):
            Comparison("~", Col("a"), Const(1))

    def test_like(self):
        db = self.db()
        db.add("R", 4, "xyz")
        rel = evaluate(
            Select(Scan("R"), Like(Col("b"), "x%")), db, BooleanSemiring()
        )
        assert sorted(t[0] for t in rel.tuples()) == [1, 2, 4]

    def test_like_underscore_and_negation(self):
        assert self.run(Like(Col("b"), "_")) == [(1, "x"), (2, "x"), (3, "y")]
        assert self.run(Like(Col("b"), "x", negated=True)) == [(3, "y")]

    def test_in_list(self):
        assert self.run(InList(Col("a"), (1, 3))) == [(1, "x"), (3, "y")]
        assert self.run(InList(Col("a"), (1, 3), negated=True)) == [(2, "x")]

    def test_between(self):
        assert self.run(Between(Col("a"), Const(2), Const(3))) == [(2, "x"), (3, "y")]

    def test_boolean_connectives(self):
        pred = Or(
            (
                Comparison("=", Col("a"), Const(1)),
                And(
                    (
                        Comparison("=", Col("b"), Const("y")),
                        Not(Comparison("=", Col("a"), Const(99))),
                    )
                ),
            )
        )
        assert self.run(pred) == [(1, "x"), (3, "y")]


class TestSemiringAgreement:
    def plan(self):
        return Project(
            Join(Scan("R"), Scan("S"), (("R.b", "S.b"),)), ("R.b",)
        )

    def test_counting_matches_why_sizes(self):
        db = sample_db()
        counts = evaluate(self.plan(), db, CountingSemiring())
        whys = evaluate(self.plan(), db, WhySemiring())
        for row in counts.rows:
            assert counts.rows[row] == len(whys.rows[row])

    def test_polynomial_total_degree(self):
        db = sample_db()
        polys = evaluate(self.plan(), db, PolynomialSemiring())
        for row, poly in polys.rows.items():
            for monomial, coeff in poly.items():
                assert coeff == 1
                assert sum(e for _, e in monomial) == 2  # two joined facts

    def test_lineage_counts_models(self):
        db = sample_db()
        result = lineage(self.plan(), db)
        counting = evaluate(self.plan(), db, CountingSemiring())
        for row in counting.rows:
            circuit = result.lineage_of(row)
            # lineage is monotone DNF; full assignment satisfies it
            assert circuit.evaluate(set(db.facts()))

    def test_boolean_answer(self):
        db = sample_db()
        assert boolean_answer(self.plan(), db)
        empty = Select(Scan("R"), Comparison("=", Col("a"), Const(99)))
        assert not boolean_answer(empty, db)


class TestLineage:
    def test_endogenous_only_fixes_exogenous(self):
        db = sample_db()
        db.mark_relation("S", endogenous=False)
        plan = Project(Join(Scan("R"), Scan("S"), (("R.b", "S.b"),)), ("R.b",))
        result = lineage(plan, db, endogenous_only=True)
        for row in result.tuples():
            vars_of = result.circuit.reachable_vars(result.relation.rows[row])
            assert all(fact.relation == "R" for fact in vars_of)

    def test_facts_of(self):
        db = sample_db()
        plan = Project(Join(Scan("R"), Scan("S"), (("R.b", "S.b"),)), ("R.b",))
        result = lineage(plan, db)
        facts = result.facts_of(("x",))
        assert Fact("R", (1, "x")) in facts
        assert Fact("S", ("x", 10)) in facts

    def test_lineage_truth(self):
        """The lineage evaluated on a sub-database equals the query
        answer on that sub-database (the defining property)."""
        db = sample_db()
        plan = Project(Join(Scan("R"), Scan("S"), (("R.b", "S.b"),)), ("R.b",))
        result = lineage(plan, db)
        circuit = result.lineage_of(("y",))
        import itertools

        all_facts = list(db.facts())
        for r in range(len(all_facts) + 1):
            for subset in itertools.combinations(all_facts, r):
                world = db.restrict_endogenous(set())  # empty template
                world = Database(db.schema)
                for fact in subset:
                    world.add(fact.relation, *fact.values)
                from repro.db import evaluate as ev, BooleanSemiring

                answer = ("y",) in ev(plan, world, BooleanSemiring()).rows
                assert circuit.evaluate(set(subset)) == answer


class TestCounters:
    def test_count_joins_and_filters(self):
        plan = Select(
            Join(Scan("R"), Scan("S"), (("R.b", "S.b"),)),
            And((Comparison("=", Col("R.a"), Const(1)),
                 Comparison("<", Col("S.c"), Const(50)))),
        )
        assert count_joins(plan) == 1
        assert count_filters(plan) == 3  # join pair + two selections
