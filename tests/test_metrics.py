"""Tests for the evaluation metrics (nDCG, Precision@k, L1/L2, tau)."""

import math

import pytest

from repro.core import (
    kendall_tau,
    l1_error,
    l2_error,
    ndcg,
    precision_at_k,
    ranking,
    summarize,
)


TRUTH = {"a": 0.5, "b": 0.3, "c": 0.2, "d": 0.0}


class TestRanking:
    def test_descending(self):
        assert ranking(TRUTH) == ["a", "b", "c", "d"]

    def test_tie_break_deterministic(self):
        values = {"x": 1.0, "y": 1.0}
        assert ranking(values) == ranking(dict(reversed(values.items())))


class TestNdcg:
    def test_perfect_ranking(self):
        assert ndcg(TRUTH, TRUTH) == 1.0

    def test_mismatched_keys(self):
        with pytest.raises(ValueError):
            ndcg(TRUTH, {"a": 1.0})

    def test_worst_ranking_value(self):
        reversed_estimate = {"a": 0.0, "b": 0.2, "c": 0.3, "d": 0.5}
        expected_dcg = (
            0.0 / math.log2(2) + 0.2 / math.log2(3)
            + 0.3 / math.log2(4) + 0.5 / math.log2(5)
        )
        ideal = (
            0.5 / math.log2(2) + 0.3 / math.log2(3)
            + 0.2 / math.log2(4) + 0.0 / math.log2(5)
        )
        assert ndcg(TRUTH, reversed_estimate) == pytest.approx(expected_dcg / ideal)

    def test_zero_truth_is_one(self):
        zero = {"a": 0.0, "b": 0.0}
        assert ndcg(zero, {"a": 1.0, "b": 0.5}) == 1.0

    def test_at_k(self):
        estimate = {"a": 0.5, "b": 0.2, "c": 0.3, "d": 0.0}
        # top-2 of estimate: a, c; ideal: a, b
        value = ndcg(TRUTH, estimate, k=2)
        expected = (0.5 / math.log2(2) + 0.2 / math.log2(3)) / (
            0.5 / math.log2(2) + 0.3 / math.log2(3)
        )
        assert value == pytest.approx(expected)

    def test_negative_gains_clipped(self):
        truth = {"a": 0.5, "b": -0.5}
        assert ndcg(truth, truth) == 1.0


class TestPrecision:
    def test_perfect(self):
        assert precision_at_k(TRUTH, TRUTH, 3) == 1.0

    def test_partial_overlap(self):
        estimate = {"a": 0.1, "b": 0.9, "c": 0.8, "d": 0.0}
        # top-2 estimate: b, c; top-2 truth: a, b -> overlap 1
        assert precision_at_k(TRUTH, estimate, 2) == 0.5

    def test_k_larger_than_population(self):
        assert precision_at_k(TRUTH, TRUTH, 100) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(TRUTH, TRUTH, 0)

    def test_mismatched_keys(self):
        with pytest.raises(ValueError):
            precision_at_k(TRUTH, {"a": 1.0}, 1)


class TestErrors:
    def test_l1(self):
        estimate = {"a": 0.6, "b": 0.3, "c": 0.2, "d": 0.1}
        assert l1_error(TRUTH, estimate) == pytest.approx((0.1 + 0.1) / 4)

    def test_l2(self):
        estimate = {"a": 0.6, "b": 0.3, "c": 0.2, "d": 0.0}
        assert l2_error(TRUTH, estimate) == pytest.approx(0.01 / 4)

    def test_empty(self):
        assert l1_error({}, {}) == 0.0
        assert l2_error({}, {}) == 0.0


class TestKendall:
    def test_identical_order(self):
        assert kendall_tau(TRUTH, TRUTH) == 1.0

    def test_reversed_order(self):
        reverse = {"a": 0.0, "b": 0.2, "c": 0.3, "d": 0.5}
        assert kendall_tau(TRUTH, reverse) == -1.0

    def test_single_item(self):
        assert kendall_tau({"a": 1.0}, {"a": 0.0}) == 1.0

    def test_shared_ties_count_as_agreement(self):
        truth = {"a": 1.0, "b": 1.0}
        assert kendall_tau(truth, {"a": 2.0, "b": 2.0}) == 1.0


class TestSummarize:
    def test_even_count(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["median"] == 2.5
        assert stats["mean"] == 2.5

    def test_odd_count(self):
        stats = summarize([3.0, 1.0, 2.0])
        assert stats["median"] == 2.0

    def test_empty(self):
        stats = summarize([])
        assert math.isnan(stats["median"]) and math.isnan(stats["mean"])
