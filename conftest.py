"""Pytest bootstrap: make `src/` importable even without installation.

The CI environment for this reproduction is offline and lacks the
`wheel` package, so `pip install -e .` cannot complete; a `.pth` file or
this conftest provides the equivalent sys.path entry.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
