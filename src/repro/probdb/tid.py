"""Tuple-independent probabilistic databases (TIDs).

A TID is a database plus a marginal probability per fact; possible
worlds are sub-databases, with independent tuple inclusion (Section 3 of
the paper).  Probabilities may be :class:`fractions.Fraction` for exact
arithmetic (the Shapley-to-PQE reduction needs exactness) or floats.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Iterable, Iterator, Mapping

from ..db.database import Database, Fact

Probability = Fraction | float | int


class TupleIndependentDatabase:
    """A pair ``(D, pi)`` of a database and fact probabilities.

    Facts absent from ``probabilities`` default to probability 1
    (certain), which matches how exogenous facts are treated throughout
    the paper.
    """

    def __init__(
        self,
        database: Database,
        probabilities: Mapping[Fact, Probability] | None = None,
    ) -> None:
        self.database = database
        self.probabilities: dict[Fact, Probability] = {}
        if probabilities:
            for fact, prob in probabilities.items():
                self.set_probability(fact, prob)

    def set_probability(self, fact: Fact, probability: Probability) -> None:
        """Assign a marginal probability to a fact in the database."""
        if fact not in self.database:
            raise ValueError(f"fact {fact!r} not in database")
        if not 0 <= probability <= 1:
            raise ValueError(f"probability {probability!r} out of [0, 1]")
        self.probabilities[fact] = probability

    def probability_of(self, fact: Fact) -> Probability:
        """Marginal probability of ``fact`` (1 if unassigned)."""
        return self.probabilities.get(fact, 1)

    def uncertain_facts(self) -> list[Fact]:
        """Facts with probability strictly between 0 and 1."""
        return [
            f
            for f in self.database.facts()
            if 0 < self.probability_of(f) < 1
        ]

    def certain_facts(self) -> list[Fact]:
        """Facts with probability exactly 1."""
        return [f for f in self.database.facts() if self.probability_of(f) == 1]

    # ------------------------------------------------------------------
    # Possible worlds (exponential; for tests and tiny instances)
    # ------------------------------------------------------------------

    def worlds(self) -> Iterator[tuple[Database, Probability]]:
        """Enumerate possible worlds with their probabilities.

        Facts with probability 0 never appear; facts with probability 1
        always do.  Exponential in the number of uncertain facts.
        """
        certain = [f for f in self.database.facts() if self.probability_of(f) == 1]
        uncertain = self.uncertain_facts()
        for r in range(len(uncertain) + 1):
            for chosen in combinations(uncertain, r):
                prob: Probability = 1
                chosen_set = set(chosen)
                for fact in uncertain:
                    p = self.probability_of(fact)
                    prob = prob * (p if fact in chosen_set else (1 - p))
                world = _database_from(self.database, certain + list(chosen))
                yield world, prob

    def __repr__(self) -> str:
        return (
            f"TupleIndependentDatabase(facts={len(self.database)}, "
            f"uncertain={len(self.uncertain_facts())})"
        )


def _database_from(template: Database, facts: Iterable[Fact]) -> Database:
    world = Database(template.schema)
    for fact in facts:
        world.add(fact.relation, *fact.values, endogenous=template.is_endogenous(fact))
    return world
