"""Lifted (extensional) inference for hierarchical self-join-free CQs.

For a hierarchical self-join-free Boolean conjunctive query, PQE is in
polynomial time (Dalvi & Suciu's safe queries); this module implements
the classic lifted algorithm:

1. *Independent join*: if the query splits into variable-disjoint
   connected components, their probabilities multiply.
2. *Ground atoms*: a component with no variables is a set of facts whose
   probabilities multiply (0 if a fact is absent).
3. *Independent project*: otherwise a hierarchical connected component
   has a *root variable* occurring in every atom; grounding it over the
   active domain yields independent sub-queries:
   ``P = 1 - prod_a (1 - P(q[x -> a]))``.

Raises :class:`NonHierarchicalError` when no root variable exists — the
caller then falls back to the intensional (lineage + compilation) path,
mirroring the safe-plan-or-lineage split in probabilistic databases.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..db.conjunctive import Atom, ConjunctiveQuery, Var
from ..db.database import Fact
from .tid import TupleIndependentDatabase


class NonHierarchicalError(ValueError):
    """The query (or one of its components) has no root variable."""


class NotSelfJoinFreeError(ValueError):
    """Lifted inference requires a self-join-free query."""


def lifted_probability(
    query: ConjunctiveQuery, tid: TupleIndependentDatabase
) -> Fraction | float:
    """Exact probability of a hierarchical self-join-free Boolean CQ.

    Probabilities are returned in the arithmetic of the TID's values
    (Fractions in, Fractions out).
    """
    if not query.is_boolean:
        raise ValueError("lifted inference works on Boolean queries; bind the head first")
    if not query.is_self_join_free():
        raise NotSelfJoinFreeError(f"query has self-joins: {query!r}")
    index = _FactIndex(tid)
    return _probability(list(query.atoms), index)


class _FactIndex:
    """Per-relation fact lookup plus active domains per column."""

    def __init__(self, tid: TupleIndependentDatabase) -> None:
        self.tid = tid
        self.by_relation: dict[str, list[Fact]] = {}
        for fact in tid.database.facts():
            self.by_relation.setdefault(fact.relation, []).append(fact)

    def probability(self, relation: str, values: tuple) -> Fraction | float:
        fact = Fact(relation, values)
        if fact not in self.tid.database:
            return Fraction(0)
        return self.tid.probability_of(fact)

    def column_values(self, relation: str, position: int) -> set:
        return {f.values[position] for f in self.by_relation.get(relation, ())}


def _probability(atoms: Sequence[Atom], index: _FactIndex) -> Fraction | float:
    # Independent join over connected components.
    components = _components(atoms)
    if len(components) > 1:
        result: Fraction | float = Fraction(1)
        for component in components:
            result = result * _probability(component, index)
        return result

    atoms = components[0]
    variables = set()
    for atom in atoms:
        variables.update(atom.variables())

    if not variables:
        result = Fraction(1)
        for atom in atoms:
            result = result * index.probability(atom.relation, atom.terms)
        return result

    root = _root_variable(atoms, variables)
    if root is None:
        raise NonHierarchicalError(
            f"no root variable for component {[repr(a) for a in atoms]}"
        )

    domain: set = set()
    for atom in atoms:
        for position, term in enumerate(atom.terms):
            if term == root:
                domain |= index.column_values(atom.relation, position)

    none_matches: Fraction | float = Fraction(1)
    for value in sorted(domain, key=repr):
        grounded = [_substitute(atom, root, value) for atom in atoms]
        none_matches = none_matches * (1 - _probability(grounded, index))
    return 1 - none_matches


def _components(atoms: Sequence[Atom]) -> list[list[Atom]]:
    remaining = list(atoms)
    components: list[list[Atom]] = []
    while remaining:
        seed = remaining.pop(0)
        component = [seed]
        vars_seen = set(seed.variables())
        changed = True
        while changed:
            changed = False
            for atom in list(remaining):
                if set(atom.variables()) & vars_seen:
                    component.append(atom)
                    vars_seen.update(atom.variables())
                    remaining.remove(atom)
                    changed = True
        components.append(component)
    return components


def _root_variable(atoms: Sequence[Atom], variables: set) -> Var | None:
    for var in sorted(variables, key=lambda v: v.name):
        if all(var in atom.variables() for atom in atoms):
            return var
    return None


def _substitute(atom: Atom, var: Var, value: object) -> Atom:
    terms = tuple(value if term == var else term for term in atom.terms)
    return Atom(atom.relation, terms)
