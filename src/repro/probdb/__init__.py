"""Probabilistic databases: TIDs, naive/lifted/intensional PQE."""

from .lifted import (
    NonHierarchicalError,
    NotSelfJoinFreeError,
    lifted_probability,
)
from .pqe import pqe, pqe_lifted, pqe_lineage, pqe_naive
from .tid import TupleIndependentDatabase

__all__ = [
    "NonHierarchicalError",
    "NotSelfJoinFreeError",
    "lifted_probability",
    "pqe",
    "pqe_lifted",
    "pqe_lineage",
    "pqe_naive",
    "TupleIndependentDatabase",
]
