"""Probabilistic query evaluation (PQE).

Three strategies, mirroring the practice of probabilistic databases:

* :func:`pqe_naive` — possible-world enumeration (ground truth in tests);
* :func:`pqe_lineage` — the *intensional* approach: compute the lineage,
  compile it to d-DNNF, and take a weighted model count.  Works for any
  SPJU query; may blow up on hard instances (budget-capped);
* :func:`pqe_lifted` — the *extensional* approach for hierarchical
  self-join-free CQs (polynomial time).

:func:`pqe` dispatches to the lifted algorithm when it applies and falls
back to lineage compilation otherwise.
"""

from __future__ import annotations

from fractions import Fraction

from ..circuits.dnnf import weighted_model_count
from ..compiler.knowledge import CompilationBudget, compile_circuit
from ..db.algebra import Operator
from ..db.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..db.evaluate import boolean_answer, lineage
from .lifted import NonHierarchicalError, NotSelfJoinFreeError, lifted_probability
from .tid import TupleIndependentDatabase

Query = Operator | ConjunctiveQuery | UnionOfConjunctiveQueries


def _to_plan(query: Query, tid: TupleIndependentDatabase) -> Operator:
    if isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
        return query.to_algebra(tid.database.schema)
    return query


def pqe_naive(query: Query, tid: TupleIndependentDatabase) -> Fraction | float:
    """Probability that the Boolean query holds, by enumerating worlds.

    Exponential in the number of uncertain facts; testing oracle only.
    """
    plan = _to_plan(query, tid)
    total: Fraction | float = Fraction(0)
    for world, prob in tid.worlds():
        if boolean_answer(plan, world):
            total = total + prob
    return total


def pqe_lineage(
    query: Query,
    tid: TupleIndependentDatabase,
    budget: CompilationBudget | None = None,
) -> Fraction | float:
    """Intensional PQE: lineage, knowledge compilation, weighted count.

    This is the route the paper builds on (Figure 3, with probabilities
    instead of #SAT_k at the last step).  Raises
    :class:`repro.compiler.BudgetExceeded` if compilation exceeds the
    budget.
    """
    plan = _to_plan(query, tid)
    result = lineage(plan, tid.database)
    rows = result.relation.rows
    if not rows:
        return Fraction(0)
    if list(rows) != [()]:
        raise ValueError("pqe_lineage expects a Boolean (empty-tuple) query")
    circuit = result.lineage_of(())
    compiled = compile_circuit(circuit, budget=budget).circuit
    weights = {
        fact: (tid.probability_of(fact), 1 - tid.probability_of(fact))
        for fact in compiled.reachable_vars()
    }
    return weighted_model_count(compiled, weights)


def pqe_lifted(query: Query, tid: TupleIndependentDatabase) -> Fraction | float:
    """Extensional PQE for hierarchical self-join-free CQs."""
    if not isinstance(query, ConjunctiveQuery):
        raise NonHierarchicalError("lifted inference needs a single CQ")
    return lifted_probability(query, tid)


def pqe(
    query: Query,
    tid: TupleIndependentDatabase,
    budget: CompilationBudget | None = None,
) -> Fraction | float:
    """PQE dispatcher: lifted when safe, lineage compilation otherwise."""
    if isinstance(query, ConjunctiveQuery) and query.is_boolean:
        try:
            return lifted_probability(query, tid)
        except (NonHierarchicalError, NotSelfJoinFreeError):
            pass
    return pqe_lineage(query, tid, budget=budget)
