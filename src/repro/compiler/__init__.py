"""Knowledge compilation: CNF/circuit -> d-DNNF, plus an OBDD backend."""

from .knowledge import (
    BudgetExceeded,
    CompilationBudget,
    CompilationResult,
    CompilationStats,
    compile_circuit,
    compile_cnf,
)
from .obdd import Obdd, ObddStats, compile_circuit_obdd, default_order

__all__ = [
    "BudgetExceeded",
    "CompilationBudget",
    "CompilationResult",
    "CompilationStats",
    "compile_circuit",
    "compile_cnf",
    "Obdd",
    "ObddStats",
    "compile_circuit_obdd",
    "default_order",
]
