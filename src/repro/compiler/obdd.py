"""Reduced ordered binary decision diagrams (OBDDs).

OBDDs are a classical knowledge-compilation target that is *also*
deterministic and decomposable when unfolded into a circuit: every
internal node ``ite(v, hi, lo)`` becomes ``(v AND hi) OR (not v AND lo)``
— a decision gate.  The paper compiles to d-DNNF with c2d; this module
provides an alternative backend so the benchmark suite can ablate the
choice of compilation target (DESIGN.md, ablations).

The implementation is a standard apply-based package with hash-consed
nodes and memoized binary operations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..circuits.circuit import AND, FALSE, NOT, OR, TRUE, VAR, Circuit, CircuitError
from .knowledge import BudgetExceeded, CompilationBudget

# Terminal pseudo-ids.
_FALSE = 0
_TRUE = 1


@dataclass
class ObddStats:
    """Counters reported after an OBDD build."""

    nodes: int = 0
    apply_calls: int = 0
    seconds: float = 0.0


class Obdd:
    """A reduced, ordered BDD manager over a fixed variable order."""

    def __init__(
        self,
        order: Sequence[Hashable],
        budget: CompilationBudget | None = None,
    ) -> None:
        self.order: list[Hashable] = list(order)
        if len(set(self.order)) != len(self.order):
            raise ValueError("variable order contains duplicates")
        self.level: dict[Hashable, int] = {v: i for i, v in enumerate(self.order)}
        # node id -> (level, lo, hi); ids 0/1 are the terminals.
        self.nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._not_cache: dict[int, int] = {}
        self.budget = budget or CompilationBudget()
        self.stats = ObddStats()
        self._deadline = (
            time.perf_counter() + self.budget.max_seconds
            if self.budget.max_seconds is not None
            else None
        )

    # -- node management -------------------------------------------------

    def _mk(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self.nodes)
            self.nodes.append(key)
            self._unique[key] = node
            if (
                self.budget.max_nodes is not None
                and len(self.nodes) > self.budget.max_nodes
            ):
                raise BudgetExceeded(
                    f"OBDD node budget exceeded ({len(self.nodes)})"
                )
            if self._deadline is not None and len(self.nodes) % 256 == 0:
                if time.perf_counter() > self._deadline:
                    raise BudgetExceeded("OBDD time budget exceeded")
        return node

    def var(self, label: Hashable) -> int:
        """Return the BDD for a single positive variable."""
        return self._mk(self.level[label], _FALSE, _TRUE)

    @property
    def true(self) -> int:
        return _TRUE

    @property
    def false(self) -> int:
        return _FALSE

    def _level(self, node: int) -> int:
        if node in (_FALSE, _TRUE):
            return len(self.order)
        return self.nodes[node][0]

    # -- operations --------------------------------------------------------

    def neg(self, node: int) -> int:
        """Negation."""
        if node == _FALSE:
            return _TRUE
        if node == _TRUE:
            return _FALSE
        cached = self._not_cache.get(node)
        if cached is None:
            level, lo, hi = self.nodes[node]
            cached = self._mk(level, self.neg(lo), self.neg(hi))
            self._not_cache[node] = cached
        return cached

    def apply(self, op: str, a: int, b: int) -> int:
        """Binary operation ``op`` in {"and", "or"}."""
        self.stats.apply_calls += 1
        if op == "and":
            if a == _FALSE or b == _FALSE:
                return _FALSE
            if a == _TRUE:
                return b
            if b == _TRUE:
                return a
            if a == b:
                return a
        elif op == "or":
            if a == _TRUE or b == _TRUE:
                return _TRUE
            if a == _FALSE:
                return b
            if b == _FALSE:
                return a
            if a == b:
                return a
        else:
            raise ValueError(f"unknown op {op!r}")
        if a > b:
            a, b = b, a
        key = (op, a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        la, lb = self._level(a), self._level(b)
        level = min(la, lb)
        a_lo, a_hi = (self.nodes[a][1], self.nodes[a][2]) if la == level else (a, a)
        b_lo, b_hi = (self.nodes[b][1], self.nodes[b][2]) if lb == level else (b, b)
        result = self._mk(
            level, self.apply(op, a_lo, b_lo), self.apply(op, a_hi, b_hi)
        )
        self._apply_cache[key] = result
        return result

    def conjoin(self, nodes: Iterable[int]) -> int:
        acc = _TRUE
        for node in nodes:
            acc = self.apply("and", acc, node)
        return acc

    def disjoin(self, nodes: Iterable[int]) -> int:
        acc = _FALSE
        for node in nodes:
            acc = self.apply("or", acc, node)
        return acc

    # -- export --------------------------------------------------------

    def to_circuit(self, root: int) -> Circuit:
        """Unfold the BDD rooted at ``root`` into a d-D decision circuit."""
        circuit = Circuit()
        memo: dict[int, int] = {
            _FALSE: circuit.false(),
            _TRUE: circuit.true(),
        }

        order = self.order

        def build(node: int) -> int:
            gate = memo.get(node)
            if gate is not None:
                return gate
            level, lo, hi = self.nodes[node]
            label = order[level]
            var_gate = circuit.var(label)
            lo_gate = build(lo)
            hi_gate = build(hi)
            pos = circuit.and_((var_gate, hi_gate))
            neg = circuit.and_((circuit.not_(var_gate), lo_gate))
            gate = circuit.or_((pos, neg))
            memo[node] = gate
            return gate

        circuit.output = build(root)
        return circuit


def default_order(circuit: Circuit) -> list[Hashable]:
    """Variable order by decreasing occurrence count (then repr)."""
    counts: dict[Hashable, int] = {}
    root = circuit.output_gate()
    flags = circuit.reachable(root)
    parents_of_var: dict[Hashable, int] = {}
    for gate in range(root + 1):
        if not flags[gate]:
            continue
        for child in circuit.children(gate):
            if circuit.kind(child) == VAR:
                lbl = circuit.label(child)
                counts[lbl] = counts.get(lbl, 0) + 1
    for gate in range(root + 1):
        if flags[gate] and circuit.kind(gate) == VAR:
            counts.setdefault(circuit.label(gate), 0)
    return sorted(counts, key=lambda lbl: (-counts[lbl], repr(lbl)))


def compile_circuit_obdd(
    circuit: Circuit,
    order: Sequence[Hashable] | None = None,
    budget: CompilationBudget | None = None,
) -> tuple[Circuit, ObddStats]:
    """Compile an arbitrary circuit into a d-D circuit via an OBDD.

    Returns ``(dD_circuit, stats)``.  Unlike the CNF compiler this path
    needs no Tseytin variables: the apply operations build the BDD
    directly bottom-up over the circuit structure.
    """
    start = time.perf_counter()
    simplified = circuit.condition({})
    if order is None:
        order = default_order(simplified)
    manager = Obdd(order, budget=budget)
    root = simplified.output_gate()
    values: dict[int, int] = {}
    for gate in range(root + 1):
        kind = simplified.kind(gate)
        if kind == VAR:
            values[gate] = manager.var(simplified.label(gate))
        elif kind == TRUE:
            values[gate] = manager.true
        elif kind == FALSE:
            values[gate] = manager.false
        elif kind == NOT:
            child = simplified.children(gate)[0]
            if child in values:
                values[gate] = manager.neg(values[child])
        elif kind == AND:
            kids = [values[c] for c in simplified.children(gate) if c in values]
            if len(kids) == len(simplified.children(gate)):
                values[gate] = manager.conjoin(kids)
        else:  # OR
            kids = [values[c] for c in simplified.children(gate) if c in values]
            if len(kids) == len(simplified.children(gate)):
                values[gate] = manager.disjoin(kids)
    result = manager.to_circuit(values[root])
    manager.stats.nodes = len(manager.nodes)
    manager.stats.seconds = time.perf_counter() - start
    return result, manager.stats
