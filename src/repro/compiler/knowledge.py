"""Top-down knowledge compiler: CNF -> decision-DNNF.

This is the library's stand-in for the c2d compiler used in the paper.
It performs exhaustive DPLL search with the three classic ingredients of
model-counting compilers (c2d, Dsharp, sharpSAT):

* unit propagation at every node;
* decomposition into connected components, compiled independently and
  conjoined (such AND gates are decomposable by construction);
* caching of residual components so shared subproblems compile once.

Branching on a variable ``v`` produces the gate
``(v AND C|v=1) OR (not v AND C|v=0)``, which is deterministic by
construction.  The output is therefore a d-DNNF — exactly the circuit
class required by Algorithm 1 of the paper.

Compilation of an arbitrary CNF into d-DNNF is FP^#P-hard, so the
compiler supports *budgets* (node count and wall clock).  Exceeding a
budget raises :class:`BudgetExceeded`; the benchmark harness records
those events as the paper's out-of-memory / timeout failures.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from ..circuits.circuit import Circuit
from ..circuits.cnf import Cnf

Clause = tuple[int, ...]
ClauseSet = tuple[Clause, ...]


class BudgetExceeded(RuntimeError):
    """The compilation exceeded its node or time budget.

    Plays the role of the OOM/timeout failures reported in the paper's
    experiments (Section 6.1).
    """


@dataclass
class CompilationBudget:
    """Resource limits for a compilation run.

    ``max_nodes`` bounds the number of circuit gates created (a memory
    proxy); ``max_seconds`` bounds wall-clock time.  ``None`` disables a
    limit.
    """

    max_nodes: int | None = None
    max_seconds: float | None = None


@dataclass
class CompilationStats:
    """Counters reported after a compilation."""

    decisions: int = 0
    cache_hits: int = 0
    cache_entries: int = 0
    components_split: int = 0
    seconds: float = 0.0
    nodes: int = 0


@dataclass
class CompilationResult:
    """A compiled d-DNNF circuit together with run statistics."""

    circuit: Circuit
    stats: CompilationStats = field(default_factory=CompilationStats)


def _select_widest(clauses: ClauseSet) -> int:
    """Branch on a variable of the widest clause.

    Crucial for lineage-shaped CNFs: a projected answer yields one wide
    disjunction clause over per-derivation auxiliaries.  Branching
    inside that clause either satisfies it (decomposing the residual
    into independent derivation blocks) or shrinks it deterministically,
    keeping the number of distinct cached residuals linear.  Generic
    SAT heuristics (MOMS & co.) branch elsewhere and generate
    exponentially many long-clause remnants.

    Among the widest clause's variables, the globally most frequent one
    is chosen (stable on ties), which also favours decomposition.
    """
    widest = max(clauses, key=len)
    if len(widest) <= 2:
        return _select_moms(clauses)
    frequency: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = abs(lit)
            frequency[var] = frequency.get(var, 0) + 1
    return max((abs(lit) for lit in widest), key=lambda v: (frequency[v], -v))


def _select_moms(clauses: ClauseSet) -> int:
    """MOMS heuristic: most occurrences in minimum-size clauses."""
    min_len = min(len(c) for c in clauses)
    scores: dict[int, int] = {}
    for clause in clauses:
        if len(clause) == min_len:
            for lit in clause:
                var = abs(lit)
                scores[var] = scores.get(var, 0) + 1
    return max(scores.items(), key=lambda kv: (kv[1], -kv[0]))[0]


def _select_freq(clauses: ClauseSet) -> int:
    """Most frequent variable overall."""
    scores: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = abs(lit)
            scores[var] = scores.get(var, 0) + 1
    return max(scores.items(), key=lambda kv: (kv[1], -kv[0]))[0]


def _select_jw(clauses: ClauseSet) -> int:
    """Two-sided Jeroslow-Wang: weight 2^-|clause| per occurrence."""
    scores: dict[int, float] = {}
    for clause in clauses:
        weight = 2.0 ** -len(clause)
        for lit in clause:
            var = abs(lit)
            scores[var] = scores.get(var, 0.0) + weight
    return max(scores.items(), key=lambda kv: (kv[1], -kv[0]))[0]


HEURISTICS: dict[str, Callable[[ClauseSet], int]] = {
    "widest": _select_widest,
    "moms": _select_moms,
    "freq": _select_freq,
    "jw": _select_jw,
}


class _Compiler:
    """One compilation run (internal)."""

    def __init__(
        self,
        cnf: Cnf,
        budget: CompilationBudget | None,
        heuristic: str,
    ) -> None:
        self.cnf = cnf
        self.budget = budget or CompilationBudget()
        try:
            self.select = HEURISTICS[heuristic]
        except KeyError:
            raise ValueError(
                f"unknown heuristic {heuristic!r}; choose from {sorted(HEURISTICS)}"
            ) from None
        self.circuit = Circuit()
        self.cache: dict[ClauseSet, int] = {}
        self.stats = CompilationStats()
        self.start = time.perf_counter()
        self.deadline = (
            self.start + self.budget.max_seconds
            if self.budget.max_seconds is not None
            else None
        )
        self._tick = 0

    # -- bookkeeping ---------------------------------------------------

    def _check_budget(self) -> None:
        self._tick += 1
        if self.budget.max_nodes is not None and len(self.circuit) > self.budget.max_nodes:
            raise BudgetExceeded(
                f"node budget exceeded ({len(self.circuit)} > {self.budget.max_nodes})"
            )
        if self.deadline is not None and self._tick % 64 == 0:
            if time.perf_counter() > self.deadline:
                raise BudgetExceeded(
                    f"time budget exceeded ({self.budget.max_seconds}s)"
                )

    def _lit_gate(self, lit: int) -> int:
        label = self.cnf.labels.get(abs(lit), ("z", abs(lit)))
        return self.circuit.literal(label, lit > 0)

    # -- core recursion ------------------------------------------------

    def run(self) -> int:
        forced, residual, conflict = _propagate(tuple(self.cnf.clauses), {})
        if conflict:
            return self.circuit.false()
        gates = [self._lit_gate(v if val else -v) for v, val in forced.items()]
        if residual:
            gates.extend(self._components(residual))
        return self.circuit.and_(gates)

    def _components(self, clauses: ClauseSet) -> list[int]:
        """Split into connected components and compile each."""
        comps = _connected_components(clauses)
        if len(comps) > 1:
            self.stats.components_split += 1
        return [self._compile_component(comp) for comp in comps]

    def _compile_component(self, clauses: ClauseSet) -> int:
        self._check_budget()
        key = _canonical(clauses)
        cached = self.cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached

        var = self.select(clauses)
        self.stats.decisions += 1
        branches = []
        for value in (True, False):
            forced, residual, conflict = _propagate(clauses, {var: value})
            if conflict:
                continue
            gates = [self._lit_gate(v if val else -v) for v, val in forced.items()]
            gates.append(self._lit_gate(var if value else -var))
            if residual:
                gates.extend(self._components(residual))
            branches.append(self.circuit.and_(gates))
        # A branch gate always conjoins its decision literal, so it is
        # never constant-TRUE; or_ only strips impossible (FALSE)
        # branches, which preserves determinism.
        gate = self.circuit.or_(branches)
        self.cache[key] = gate
        self.stats.cache_entries += 1
        return gate


def _propagate(
    clauses: Iterable[Clause], assignment: dict[int, bool]
) -> tuple[dict[int, bool], ClauseSet, bool]:
    """Unit-propagate ``clauses`` under ``assignment``.

    Returns ``(newly_forced, residual, conflict)``.  The decision
    variables in ``assignment`` are *not* included in ``newly_forced``.
    """
    forced: dict[int, bool] = {}

    def value(var: int) -> bool | None:
        if var in assignment:
            return assignment[var]
        return forced.get(var)

    work = list(clauses)
    while True:
        changed = False
        residual: list[Clause] = []
        for clause in work:
            kept: list[int] = []
            satisfied = False
            for lit in clause:
                val = value(abs(lit))
                if val is None:
                    kept.append(lit)
                elif val == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                changed = True
                continue
            if not kept:
                return forced, (), True
            if len(kept) == 1:
                lit = kept[0]
                var, val = abs(lit), lit > 0
                existing = value(var)
                if existing is None:
                    forced[var] = val
                    changed = True
                    continue
                if existing != val:
                    return forced, (), True
                changed = True
                continue
            if len(kept) != len(clause):
                changed = True
            residual.append(tuple(kept))
        work = residual
        if not changed:
            return forced, tuple(work), False


def _connected_components(clauses: ClauseSet) -> list[ClauseSet]:
    """Partition clauses into variable-connected components."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for clause in clauses:
        first = abs(clause[0])
        for lit in clause:
            var = abs(lit)
            if var not in parent:
                parent[var] = var
        if first not in parent:
            parent[first] = first
        for lit in clause[1:]:
            union(first, abs(lit))

    groups: dict[int, list[Clause]] = {}
    for clause in clauses:
        root = find(abs(clause[0]))
        groups.setdefault(root, []).append(clause)
    return [tuple(group) for group in groups.values()]


def _canonical(clauses: ClauseSet) -> ClauseSet:
    """Canonical cache key: sorted clauses of sorted literals."""
    return tuple(sorted(tuple(sorted(c, key=abs)) for c in clauses))


def compile_cnf(
    cnf: Cnf,
    budget: CompilationBudget | None = None,
    heuristic: str = "widest",
) -> CompilationResult:
    """Compile a CNF into a d-DNNF circuit.

    Parameters
    ----------
    cnf:
        The input formula.  Variable labels are carried over to circuit
        variable labels; unlabelled variables become ``("z", index)``.
    budget:
        Optional :class:`CompilationBudget`; raises
        :class:`BudgetExceeded` when exhausted.
    heuristic:
        Branching heuristic: ``"widest"`` (default; see
        :func:`_select_widest`), ``"moms"``, ``"freq"`` or ``"jw"``.

    Returns a :class:`CompilationResult` whose circuit is deterministic
    and decomposable by construction.
    """
    limit = max(10_000, 4 * cnf.num_vars + 1000)
    old_limit = sys.getrecursionlimit()
    if old_limit < limit:
        sys.setrecursionlimit(limit)
    try:
        run = _Compiler(cnf, budget, heuristic)
        run.circuit.output = run.run()
        run.stats.seconds = time.perf_counter() - run.start
        run.stats.nodes = len(run.circuit)
        return CompilationResult(run.circuit, run.stats)
    finally:
        if old_limit < limit:
            sys.setrecursionlimit(old_limit)


def compile_circuit(
    circuit: Circuit,
    budget: CompilationBudget | None = None,
    heuristic: str = "widest",
) -> CompilationResult:
    """Compile an arbitrary Boolean circuit into a d-DNNF over the *same*
    variables.

    Implements the full middle path of the paper's Figure 3: Tseytin
    transformation, CNF compilation, then elimination of the auxiliary
    variables with Lemma 4.6.
    """
    from ..circuits.dnnf import eliminate_auxiliary
    from ..circuits.tseytin import tseytin_transform

    cnf = tseytin_transform(circuit)
    result = compile_cnf(cnf, budget=budget, heuristic=heuristic)
    keep = set(cnf.labels.values())
    cleaned = eliminate_auxiliary(result.circuit, keep)
    result_stats = result.stats
    result_stats.nodes = len(cleaned)
    return CompilationResult(cleaned, result_stats)
