"""Top-down knowledge compiler: CNF -> decision-DNNF.

This is the library's stand-in for the c2d compiler used in the paper.
It performs exhaustive DPLL search with the three classic ingredients of
model-counting compilers (c2d, Dsharp, sharpSAT):

* unit propagation at every node;
* decomposition into connected components, compiled independently and
  conjoined (such AND gates are decomposable by construction);
* caching of residual components so shared subproblems compile once.

Branching on a variable ``v`` produces the gate
``(v AND C|v=1) OR (not v AND C|v=0)``, which is deterministic by
construction.  The output is therefore a d-DNNF — exactly the circuit
class required by Algorithm 1 of the paper.

On top of the run-local residual cache, *top-level* components are
memoized **across** compilations: every connected component of the
unit-propagated input with at least :data:`MEMO_MIN_COMPONENT_VARS`
variables is renamed into a canonical, rename-invariant form
(:func:`canonical_component`), compiled standalone over the canonical
variables, and published to a :class:`ComponentMemo`.  A later compile
— of the same shape or of a *different* shape that happens to contain
an isomorphic sub-circuit — looks the component up and stitches the
memoized circuit into its output instead of recompiling.  The stitching
import is deterministic (a bottom-up sweep in gate-id order), so
serial, parallel, and memoized compilations all produce byte-identical
circuits.  Memoization deliberately stops at the top level: residual
components deeper in the search reuse the run-local cache instead —
canonicalizing every nested residual costs more than it saves and
fragments the residual cache that makes inline compilation fast.

Compilation of an arbitrary CNF into d-DNNF is FP^#P-hard, so the
compiler supports *budgets* (node count and wall clock).  Exceeding a
budget raises :class:`BudgetExceeded`; the benchmark harness records
those events as the paper's out-of-memory / timeout failures.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..circuits.circuit import AND, FALSE, NOT, TRUE, VAR, Circuit
from ..circuits.cnf import Cnf

Clause = tuple[int, ...]
ClauseSet = tuple[Clause, ...]

#: Components with fewer variables than this are compiled inline: for
#: tiny subproblems the canonicalization + stitching overhead exceeds
#: the cost of just recompiling them.
MEMO_MIN_COMPONENT_VARS = 8

#: Version tag embedded in persisted component circuits.  Any change to
#: the compiler that alters the *structure* of compiled components must
#: bump this so stale ``.comp`` artifacts become clean misses instead of
#: breaking cross-run signature parity.
COMPONENT_SCHEME = 1

#: Color-refinement rounds for :func:`canonical_component`.  Refinement
#: also stops early once the variable partition is discrete or stable.
_REFINEMENT_ROUNDS = 12


class BudgetExceeded(RuntimeError):
    """The compilation exceeded its node or time budget.

    Plays the role of the OOM/timeout failures reported in the paper's
    experiments (Section 6.1).
    """


@dataclass
class CompilationBudget:
    """Resource limits for a compilation run.

    ``max_nodes`` bounds the number of circuit gates created (a memory
    proxy); ``max_seconds`` bounds wall-clock time.  ``None`` disables a
    limit.
    """

    max_nodes: int | None = None
    max_seconds: float | None = None


@dataclass
class CompilationStats:
    """Counters reported after a compilation.

    The ``component_*`` counters describe the cross-run memoization
    layer: ``component_hits`` sub-circuits were stitched from the memo,
    ``component_misses`` were not found, and ``component_compilations``
    standalone canonical compiles ran (at most one per distinct
    canonical form per run).  ``component_seconds`` is the wall-clock
    spent inside outermost canonical compiles and ``stitch_seconds``
    the time spent importing memoized circuits into the caller — both
    are attributed once (never double-counted across nesting levels).
    """

    decisions: int = 0
    cache_hits: int = 0
    cache_entries: int = 0
    components_split: int = 0
    component_hits: int = 0
    component_misses: int = 0
    component_compilations: int = 0
    component_seconds: float = 0.0
    stitch_seconds: float = 0.0
    seconds: float = 0.0
    nodes: int = 0


@dataclass
class CompilationResult:
    """A compiled d-DNNF circuit together with run statistics."""

    circuit: Circuit
    stats: CompilationStats = field(default_factory=CompilationStats)


class ComponentMemo:
    """Interface of the cross-run component-circuit memo.

    Implementations must be safe to call from multiple threads.  Keys
    are canonical clause sets (:func:`canonical_component`); values are
    compiled d-DNNF circuits over the canonical variables ``1..k``
    (labels are the plain ints).  ``publish`` may be called twice for
    the same key by concurrent compilers — the compile is deterministic,
    so both circuits are identical and either write may win.
    """

    def lookup(self, key: ClauseSet) -> Circuit | None:
        raise NotImplementedError

    def publish(self, key: ClauseSet, circuit: Circuit) -> None:
        raise NotImplementedError


class _DictMemo(ComponentMemo):
    """Run-local fallback memo (no persistence, no bound)."""

    def __init__(self) -> None:
        self._entries: dict[ClauseSet, Circuit] = {}

    def lookup(self, key: ClauseSet) -> Circuit | None:
        return self._entries.get(key)

    def publish(self, key: ClauseSet, circuit: Circuit) -> None:
        self._entries[key] = circuit


def _select_widest(clauses: ClauseSet) -> int:
    """Branch on a variable of the widest clause.

    Crucial for lineage-shaped CNFs: a projected answer yields one wide
    disjunction clause over per-derivation auxiliaries.  Branching
    inside that clause either satisfies it (decomposing the residual
    into independent derivation blocks) or shrinks it deterministically,
    keeping the number of distinct cached residuals linear.  Generic
    SAT heuristics (MOMS & co.) branch elsewhere and generate
    exponentially many long-clause remnants.

    Among the widest clause's variables, the globally most frequent one
    is chosen (stable on ties), which also favours decomposition.
    """
    widest = max(clauses, key=len)
    if len(widest) <= 2:
        return _select_moms(clauses)
    frequency: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = abs(lit)
            frequency[var] = frequency.get(var, 0) + 1
    return max((abs(lit) for lit in widest), key=lambda v: (frequency[v], -v))


def _select_moms(clauses: ClauseSet) -> int:
    """MOMS heuristic: most occurrences in minimum-size clauses."""
    min_len = min(len(c) for c in clauses)
    scores: dict[int, int] = {}
    for clause in clauses:
        if len(clause) == min_len:
            for lit in clause:
                var = abs(lit)
                scores[var] = scores.get(var, 0) + 1
    return max(scores.items(), key=lambda kv: (kv[1], -kv[0]))[0]


def _select_freq(clauses: ClauseSet) -> int:
    """Most frequent variable overall."""
    scores: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = abs(lit)
            scores[var] = scores.get(var, 0) + 1
    return max(scores.items(), key=lambda kv: (kv[1], -kv[0]))[0]


def _select_jw(clauses: ClauseSet) -> int:
    """Two-sided Jeroslow-Wang: weight 2^-|clause| per occurrence."""
    scores: dict[int, float] = {}
    for clause in clauses:
        weight = 2.0 ** -len(clause)
        for lit in clause:
            var = abs(lit)
            scores[var] = scores.get(var, 0.0) + weight
    return max(scores.items(), key=lambda kv: (kv[1], -kv[0]))[0]


HEURISTICS: dict[str, Callable[[ClauseSet], int]] = {
    "widest": _select_widest,
    "moms": _select_moms,
    "freq": _select_freq,
    "jw": _select_jw,
}


class _IdentityLabels:
    """Label table of canonical compiles: variable ``v`` is labelled
    by the plain int ``v``."""

    def get(self, var: int, default: object = None) -> int:
        return var


_IDENTITY_LABELS = _IdentityLabels()


class _RunContext:
    """State shared by every (possibly nested) compiler of one run.

    Budget, deadline, branching heuristic, memo, and stats are all
    per-*run*: a canonical component compile spawned three levels deep
    still counts against the same node budget and reports into the same
    :class:`CompilationStats`.  All hot counters are plain int bumps
    (GIL-atomic enough for diagnostics); the counters that feed CI
    assertions (``component_*``) are guarded by :attr:`lock`.
    """

    def __init__(
        self,
        budget: CompilationBudget | None,
        heuristic: str,
        memo: ComponentMemo | None,
        memoize: bool,
        min_vars: int,
    ) -> None:
        self.budget = budget or CompilationBudget()
        try:
            self.select = HEURISTICS[heuristic]
        except KeyError:
            raise ValueError(
                f"unknown heuristic {heuristic!r}; choose from {sorted(HEURISTICS)}"
            ) from None
        self.memo = memo if memo is not None else _DictMemo()
        self.memoize = memoize
        self.min_vars = min_vars
        self.stats = CompilationStats()
        self.start = time.perf_counter()
        self.deadline = (
            self.start + self.budget.max_seconds
            if self.budget.max_seconds is not None
            else None
        )
        self.lock = threading.Lock()
        #: Gates living in *finished* canonical sub-circuits of this
        #: run; the in-flight compiler adds its own ``len(circuit)`` on
        #: top when checking the node budget.
        self.foreign_nodes = 0
        #: Shared budget-check tick.  Must be run-wide, not
        #: per-compiler: nested canonical compiles are often tiny, and
        #: a per-compiler tick would let deep recursions dodge the
        #: every-64th deadline check forever.  Racy increments under
        #: parallel compilation merely shift *when* the check fires.
        self.tick = 0
        self._local = threading.local()

    def add_foreign(self, nodes: int) -> None:
        with self.lock:
            self.foreign_nodes += nodes

    # -- nesting depth (per thread), for one-shot timing attribution --

    def enter_canonical(self) -> bool:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth == 0

    def exit_canonical(self) -> None:
        self._local.depth -= 1

    def at_top(self) -> bool:
        return getattr(self._local, "depth", 0) == 0


class _Compiler:
    """One compilation scope (internal).

    The user-facing run and every canonical component compile each get
    their own ``_Compiler`` (own circuit, own residual cache) over a
    shared :class:`_RunContext`.
    """

    def __init__(
        self,
        clauses: Iterable[Clause],
        labels,
        context: _RunContext,
    ) -> None:
        self.clauses = clauses
        self.labels = labels
        self.context = context
        self.select = context.select
        self.stats = context.stats
        self.circuit = Circuit()
        self.cache: dict[ClauseSet, int] = {}
        #: canonical key -> circuit, filled by the parallel pre-pass.
        self._prebuilt: dict[ClauseSet, Circuit] = {}
        #: _canonical key -> (canonical clauses, variable order).
        self._canon_forms: dict[ClauseSet, tuple[ClauseSet, tuple[int, ...]]] = {}

    # -- bookkeeping ---------------------------------------------------

    def _check_budget(self) -> None:
        context = self.context
        context.tick += 1
        budget = context.budget
        if budget.max_nodes is not None:
            total = len(self.circuit) + context.foreign_nodes
            if total > budget.max_nodes:
                raise BudgetExceeded(
                    f"node budget exceeded ({total} > {budget.max_nodes})"
                )
        if context.deadline is not None and context.tick % 64 == 0:
            if time.perf_counter() > context.deadline:
                raise BudgetExceeded(
                    f"time budget exceeded ({budget.max_seconds}s)"
                )

    def _lit_gate(self, lit: int) -> int:
        label = self.labels.get(abs(lit), ("z", abs(lit)))
        return self.circuit.literal(label, lit > 0)

    # -- core recursion ------------------------------------------------

    def run(self, jobs: int = 1) -> int:
        forced, residual, conflict = _propagate(tuple(self.clauses), {})
        if conflict:
            return self.circuit.false()
        gates = [self._lit_gate(v if val else -v) for v, val in forced.items()]
        if residual:
            comps = _connected_components(residual)
            if len(comps) > 1:
                self.stats.components_split += 1
            if jobs > 1 and len(comps) > 1:
                self._precompile(comps, jobs)
            gates.extend(
                self._compile_component(comp, top=True) for comp in comps
            )
        return self.circuit.and_(gates)

    def _components(self, clauses: ClauseSet) -> list[int]:
        """Split into connected components and compile each."""
        comps = _connected_components(clauses)
        if len(comps) > 1:
            self.stats.components_split += 1
        return [self._compile_component(comp) for comp in comps]

    def _compile_component(self, clauses: ClauseSet, top: bool = False) -> int:
        self._check_budget()
        key = _canonical(clauses)
        cached = self.cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        if top and self._memoizable(clauses):
            gate = self._stitch(key)
        else:
            gate = self._branch(clauses)
        self.cache[key] = gate
        self.stats.cache_entries += 1
        return gate

    def _branch(self, clauses: ClauseSet) -> int:
        var = self.select(clauses)
        self.stats.decisions += 1
        branches = []
        for value in (True, False):
            forced, residual, conflict = _propagate(clauses, {var: value})
            if conflict:
                continue
            gates = [self._lit_gate(v if val else -v) for v, val in forced.items()]
            gates.append(self._lit_gate(var if value else -var))
            if residual:
                gates.extend(self._components(residual))
            branches.append(self.circuit.and_(gates))
        # A branch gate always conjoins its decision literal, so it is
        # never constant-TRUE; or_ only strips impossible (FALSE)
        # branches, which preserves determinism.
        return self.circuit.or_(branches)

    # -- cross-run memoization -----------------------------------------

    def _memoizable(self, clauses: ClauseSet) -> bool:
        """Whether a *top-level* component goes through the cross-run
        memo.  Must be a deterministic function of the clause set (plus
        the fixed knobs): warm and cold compiles of the same CNF have to
        take the same canonical-vs-inline path for byte parity."""
        ctx = self.context
        if not ctx.memoize:
            return False
        variables = {abs(lit) for clause in clauses for lit in clause}
        return len(variables) >= ctx.min_vars

    def _canonical_form(
        self, key: ClauseSet
    ) -> tuple[ClauseSet, tuple[int, ...]]:
        form = self._canon_forms.get(key)
        if form is None:
            form = canonical_component(key)
            self._canon_forms[key] = form
        return form

    def _stitch(self, key: ClauseSet) -> int:
        """Compile (or fetch) the component in canonical form and import
        the resulting sub-circuit, renaming canonical variables back."""
        canon, order = self._canonical_form(key)
        sub = self._prebuilt.pop(canon, None)
        if sub is None:
            sub = self._lookup_or_compile(canon)
        ctx = self.context
        outermost = ctx.at_top()
        started = time.perf_counter()
        gate = self._import_component(sub, order)
        if outermost:
            with ctx.lock:
                self.stats.stitch_seconds += time.perf_counter() - started
        return gate

    def _lookup_or_compile(self, canon: ClauseSet) -> Circuit:
        ctx = self.context
        sub = ctx.memo.lookup(canon)
        if sub is not None:
            with ctx.lock:
                self.stats.component_hits += 1
            return sub
        with ctx.lock:
            self.stats.component_misses += 1
        return _compile_canonical(canon, ctx)

    def _import_component(self, sub: Circuit, order: tuple[int, ...]) -> int:
        """Deterministic bottom-up import of ``sub`` into this circuit.

        Gates are visited in ``sub``'s gate-id order (stable across
        serialization round trips, whose dense renumbering is monotone),
        so the ids created here — and therefore the final circuit — are
        byte-identical no matter where ``sub`` came from: a fresh
        compile, the in-memory memo, a parallel pre-pass, or disk.
        """
        circuit = self.circuit
        labels = self.labels
        root = sub.output_gate()
        flags = sub.reachable(root)
        mapping: dict[int, int] = {}
        for gate in range(root + 1):
            if not flags[gate]:
                continue
            kind = sub.kind(gate)
            if kind == VAR:
                var = order[sub.label(gate) - 1]
                mapping[gate] = circuit.var(labels.get(var, ("z", var)))
            elif kind == TRUE:
                mapping[gate] = circuit.true()
            elif kind == FALSE:
                mapping[gate] = circuit.false()
            elif kind == NOT:
                mapping[gate] = circuit.not_(mapping[sub.children(gate)[0]])
            elif kind == AND:
                mapping[gate] = circuit.and_(
                    mapping[c] for c in sub.children(gate)
                )
            else:
                mapping[gate] = circuit.or_(
                    mapping[c] for c in sub.children(gate)
                )
        return mapping[root]

    def _precompile(self, comps: list[ClauseSet], jobs: int) -> None:
        """Compile the distinct memoizable top-level components
        concurrently, then let the serial sweep stitch them in order.

        Only fills :attr:`_prebuilt`; the deterministic import loop in
        :meth:`run` is untouched, so parallelism cannot perturb gate
        ids.  Duplicate canonical forms are compiled once.
        """
        from concurrent.futures import ThreadPoolExecutor

        pending: list[ClauseSet] = []
        seen: set[ClauseSet] = set()
        for comp in comps:
            if not self._memoizable(comp):
                continue
            canon, _ = self._canonical_form(_canonical(comp))
            if canon in seen:
                continue
            seen.add(canon)
            pending.append(canon)
        if len(pending) < 2:
            return
        with ThreadPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = [
                (canon, pool.submit(self._lookup_or_compile, canon))
                for canon in pending
            ]
            error: BaseException | None = None
            for canon, future in futures:
                try:
                    self._prebuilt[canon] = future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    if error is None:
                        error = exc
            if error is not None:
                raise error


def _compile_canonical(canon: ClauseSet, context: _RunContext) -> Circuit:
    """Compile a canonical component standalone and publish it.

    The sub-compiler gets its own circuit and residual cache but shares
    the run context (budget, deadline, memo, stats).  The component is
    connected and unit-free by construction, so compilation starts
    directly at the branching step.
    """
    outermost = context.enter_canonical()
    started = time.perf_counter()
    try:
        sub = _Compiler(canon, _IDENTITY_LABELS, context)
        sub.circuit.output = sub._branch(canon)
        context.add_foreign(len(sub.circuit))
    finally:
        elapsed = time.perf_counter() - started
        context.exit_canonical()
    with context.lock:
        context.stats.component_compilations += 1
        if outermost:
            context.stats.component_seconds += elapsed
    context.memo.publish(canon, sub.circuit)
    return sub.circuit


def plan_components(
    cnf: Cnf, min_vars: int = MEMO_MIN_COMPONENT_VARS
) -> list[ClauseSet]:
    """The distinct canonical top-level components a compile of ``cnf``
    will request from its :class:`ComponentMemo`.

    Mirrors :meth:`_Compiler.run` exactly — unit propagation, connected
    components, the ``min_vars`` memoizability cut, then
    :func:`canonical_component` — so a *component pass* that compiles
    every returned key into a shared memo guarantees the later full
    compile of ``cnf`` is pure stitching (every memo lookup hits).
    Keys are returned deduplicated, in first-occurrence order.  An
    unsatisfiable or fully unit-propagated CNF has no components.
    """
    _, residual, conflict = _propagate(tuple(cnf.clauses), {})
    if conflict or not residual:
        return []
    keys: list[ClauseSet] = []
    seen: set[ClauseSet] = set()
    for component in _connected_components(residual):
        variables = {abs(lit) for clause in component for lit in clause}
        if len(variables) < min_vars:
            continue
        canon, _ = canonical_component(_canonical(component))
        if canon not in seen:
            seen.add(canon)
            keys.append(canon)
    return keys


def compile_component(
    canon: ClauseSet,
    memo: ComponentMemo,
    budget: CompilationBudget | None = None,
    heuristic: str = "widest",
) -> bool:
    """Ensure one canonical component is available in ``memo``.

    The unit of the pipelined component-compile pass: looks ``canon``
    up and — on a miss — compiles it standalone and publishes it, just
    as a full compile's :meth:`_Compiler._stitch` would.  Returns
    ``True`` when a standalone compile actually ran, ``False`` on a
    memo (or store) hit.  The compile is byte-identical to the one the
    stitching path would have produced, so running the pass ahead of
    time cannot perturb any downstream circuit.  Budget and failure
    semantics match the inline path: :class:`BudgetExceeded` (or any
    compile error) propagates and nothing is published.
    """
    if memo.lookup(canon) is not None:
        return False
    context = _RunContext(
        budget, heuristic, memo, True, MEMO_MIN_COMPONENT_VARS
    )
    _compile_canonical(canon, context)
    return True


def canonical_component(clauses: ClauseSet) -> tuple[ClauseSet, tuple[int, ...]]:
    """Rename-invariant canonical form of a component clause set.

    Returns ``(canonical_clauses, order)`` where ``order[i]`` is the
    original variable renamed to canonical variable ``i + 1``.  Two
    clause sets that differ only by a variable bijection map to the same
    canonical clauses whenever bounded color refinement separates the
    variables (ties may yield different canonical forms — a missed memo
    hit, never a wrong one: equal canonical forms are by construction
    literally isomorphic clause sets).

    Variables are colored by iterated Weisfeiler–Leman refinement over
    the clause incidence structure: the initial color is the multiset of
    ``(clause width, sign)`` occurrences, and each round re-colors a
    variable by the multiset of its clauses' colors (a clause's color
    being the multiset of its variables' colors with signs).  Colors are
    re-ranked to small ints every round, so nothing here depends on
    Python's randomized string hashing.
    """
    variables = sorted({abs(lit) for clause in clauses for lit in clause})
    index = {var: i for i, var in enumerate(variables)}
    occurrences: list[list] = [[] for _ in variables]
    for clause in clauses:
        width = len(clause)
        for lit in clause:
            occurrences[index[abs(lit)]].append((width, lit > 0))
    colors: list = [tuple(sorted(occ)) for occ in occurrences]
    for _ in range(_REFINEMENT_ROUNDS):
        rank = {color: r for r, color in enumerate(sorted(set(colors)))}
        if len(rank) == len(variables):
            break  # discrete partition: every variable distinguished
        refined: list[list] = [[] for _ in variables]
        for clause in clauses:
            clause_color = tuple(
                sorted((rank[colors[index[abs(lit)]]], lit > 0) for lit in clause)
            )
            for lit in clause:
                refined[index[abs(lit)]].append((clause_color, lit > 0))
        new_colors = [
            (rank[colors[i]], tuple(sorted(refined[i])))
            for i in range(len(variables))
        ]
        if len(set(new_colors)) == len(rank):
            break  # stable partition: further rounds change nothing
        colors = new_colors
    rank = {color: r for r, color in enumerate(sorted(set(colors)))}
    order = tuple(
        sorted(variables, key=lambda v: (rank[colors[index[v]]], v))
    )
    renumber = {var: i + 1 for i, var in enumerate(order)}
    renamed = tuple(
        tuple(renumber[abs(lit)] if lit > 0 else -renumber[abs(lit)] for lit in clause)
        for clause in clauses
    )
    return _canonical(renamed), order


def _propagate(
    clauses: Iterable[Clause], assignment: dict[int, bool]
) -> tuple[dict[int, bool], ClauseSet, bool]:
    """Unit-propagate ``clauses`` under ``assignment``.

    Returns ``(newly_forced, residual, conflict)``.  The decision
    variables in ``assignment`` are *not* included in ``newly_forced``.
    """
    forced: dict[int, bool] = {}

    def value(var: int) -> bool | None:
        if var in assignment:
            return assignment[var]
        return forced.get(var)

    work = list(clauses)
    while True:
        changed = False
        residual: list[Clause] = []
        for clause in work:
            kept: list[int] = []
            satisfied = False
            for lit in clause:
                val = value(abs(lit))
                if val is None:
                    kept.append(lit)
                elif val == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                changed = True
                continue
            if not kept:
                return forced, (), True
            if len(kept) == 1:
                lit = kept[0]
                var, val = abs(lit), lit > 0
                existing = value(var)
                if existing is None:
                    forced[var] = val
                    changed = True
                    continue
                if existing != val:
                    return forced, (), True
                changed = True
                continue
            if len(kept) != len(clause):
                changed = True
            residual.append(tuple(kept))
        work = residual
        if not changed:
            return forced, tuple(work), False


def _connected_components(clauses: ClauseSet) -> list[ClauseSet]:
    """Partition clauses into variable-connected components."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for clause in clauses:
        first = abs(clause[0])
        for lit in clause:
            var = abs(lit)
            if var not in parent:
                parent[var] = var
        if first not in parent:
            parent[first] = first
        for lit in clause[1:]:
            union(first, abs(lit))

    groups: dict[int, list[Clause]] = {}
    for clause in clauses:
        root = find(abs(clause[0]))
        groups.setdefault(root, []).append(clause)
    # Insertion-ordered by first appearance in the (already canonical)
    # clause list, so this is deterministic; sorting would reorder
    # components and break byte-parity with previously stored circuits.
    return [tuple(group) for group in groups.values()]  # repro: allow=REP002 insertion-ordered


def _canonical(clauses: ClauseSet) -> ClauseSet:
    """Canonical cache key: sorted clauses of sorted literals."""
    return tuple(sorted(tuple(sorted(c, key=abs)) for c in clauses))


def compile_cnf(
    cnf: Cnf,
    budget: CompilationBudget | None = None,
    heuristic: str = "widest",
    *,
    memo: ComponentMemo | None = None,
    jobs: int | None = None,
    memoize_components: bool = True,
    component_min_vars: int = MEMO_MIN_COMPONENT_VARS,
) -> CompilationResult:
    """Compile a CNF into a d-DNNF circuit.

    Parameters
    ----------
    cnf:
        The input formula.  Variable labels are carried over to circuit
        variable labels; unlabelled variables become ``("z", index)``.
    budget:
        Optional :class:`CompilationBudget`; raises
        :class:`BudgetExceeded` when exhausted.
    heuristic:
        Branching heuristic: ``"widest"`` (default; see
        :func:`_select_widest`), ``"moms"``, ``"freq"`` or ``"jw"``.
    memo:
        Cross-run :class:`ComponentMemo`.  ``None`` uses a run-local
        dict, which still dedupes isomorphic components *within* this
        compile; pass the engine cache's memo to share compiled
        components across shapes, runs, and (with a persistent store)
        processes.
    jobs:
        When > 1, compile the distinct memoizable top-level components
        in a thread pool of that width before the deterministic serial
        stitch.  The output is byte-identical to ``jobs=1``.
    memoize_components:
        ``False`` restores the purely inline compiler (no
        canonicalization, no memo traffic) — the baseline the benchmarks
        compare against.
    component_min_vars:
        Minimum component size (in variables) worth memoizing.

    Returns a :class:`CompilationResult` whose circuit is deterministic
    and decomposable by construction.
    """
    limit = max(10_000, 8 * cnf.num_vars + 1000)
    old_limit = sys.getrecursionlimit()
    if old_limit < limit:
        sys.setrecursionlimit(limit)
    try:
        context = _RunContext(
            budget, heuristic, memo, memoize_components, component_min_vars
        )
        run = _Compiler(tuple(cnf.clauses), cnf.labels, context)
        run.circuit.output = run.run(jobs=max(1, int(jobs or 1)))
        context.stats.seconds = time.perf_counter() - context.start
        context.stats.nodes = len(run.circuit)
        return CompilationResult(run.circuit, context.stats)
    finally:
        if old_limit < limit:
            sys.setrecursionlimit(old_limit)


def compile_circuit(
    circuit: Circuit,
    budget: CompilationBudget | None = None,
    heuristic: str = "widest",
    *,
    memo: ComponentMemo | None = None,
    jobs: int | None = None,
) -> CompilationResult:
    """Compile an arbitrary Boolean circuit into a d-DNNF over the *same*
    variables.

    Implements the full middle path of the paper's Figure 3: Tseytin
    transformation, CNF compilation, then elimination of the auxiliary
    variables with Lemma 4.6.
    """
    from ..circuits.dnnf import eliminate_auxiliary
    from ..circuits.tseytin import tseytin_transform

    cnf = tseytin_transform(circuit)
    result = compile_cnf(cnf, budget=budget, heuristic=heuristic, memo=memo, jobs=jobs)
    keep = set(cnf.labels.values())
    cleaned = eliminate_auxiliary(result.circuit, keep)
    result_stats = result.stats
    result_stats.nodes = len(cleaned)
    return CompilationResult(cleaned, result_stats)
