"""Static analysis for the repro pipeline: artifact verification and lint.

Two independent prongs, both read-only:

* :mod:`repro.analysis.verify` — audits a persistent artifact store
  (``repro verify <dir>``) without running Algorithm 1: d-DNNF
  wellformedness, gate-tape level/bound validity, component canonical
  form, and cross-artifact consistency.
* :mod:`repro.analysis.lint` — AST-based repo-invariant lint
  (``python -m repro.analysis.lint src/``) enforcing the REP001-REP004
  rules (seeded randomness, sorted set iteration in canonicalization
  code, float-free exact arithmetic, acyclic lock order).
"""

from __future__ import annotations

__all__ = ["verify", "lint"]
