"""Static verification of persistent artifact stores (Prong A).

A pure, read-only audit of compiled artifacts that re-derives every
invariant the warm paths rely on *without* running Algorithm 1:

* **d-DNNF wellformedness** — negation normal form, decomposability
  (AND children variable-disjoint), and determinism (OR children
  logically disjoint).  Dangling gate references and cycles are
  impossible to express in the payload format and are rejected as
  ``structure`` violations by the same loader the engine uses.
* **Gate-tape validity** — the stored level schedule is a correct
  topological stratification, the label table is duplicate-free, and
  the stored v2 magnitude bounds equal the bounds re-derived from the
  fan-in structure (an honest writer always stores the exact analysis,
  so any drift — in particular an *understated* bound that could
  under-provision tier selection — is a violation).
* **Component canonical form** — the ``.comp`` scheme tag matches this
  build, the stored canonical clause set re-derives the file's digest,
  and the clause set is a fixed point of :func:`canonical_component`.
* **Cross-artifact consistency** — re-lowering the stored d-DNNF
  reproduces the stored tape instruction-for-instruction, and the
  d-DNNF variable set is covered by the CNF's endogenous label set.

Determinism is checked in two tiers.  The implied-literal pass proves
most OR gates disjoint from literal structure alone, but a gate whose
decision variable was auxiliary and then projected away by
``eliminate_auxiliary`` (Lemma 4.6) carries no such witness.  Those
gates fall through to exhaustive bit-parallel enumeration over
``Vars(g)`` when ``|Vars(g)| <= determinism_limit``; beyond the limit
the gate is counted in ``determinism_assumed`` (reported, not a
violation) rather than silently passed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..circuits.circuit import AND, FALSE, NOT, OR, VAR, Circuit, CircuitError
from ..circuits.cnf import Cnf, CnfError
from ..compiler.knowledge import COMPONENT_SCHEME, canonical_component
from ..core.numerics.tape import GateTape, TapeError, compile_tape
from ..engine.store import (
    ARTIFACT_KINDS,
    ARTIFACT_MAGIC,
    FORMAT_VERSION,
    signature_digest,
)

#: Default cap on exhaustive OR-determinism enumeration (2^limit
#: assignments, evaluated bit-parallel in one traversal per child).
#: 20 covers every undecided gate observed in benchmark-warmed stores
#: at ~1s/gate; ``repro verify --determinism-limit`` overrides.
DETERMINISM_LIMIT = 20

#: Cheaper cap for ``ArtifactCache.verify_on_load`` spot checks, which
#: sit on the warm path: structure violations are still caught, large
#: undecided OR gates are left to the offline ``repro verify`` audit.
LOAD_DETERMINISM_LIMIT = 12

#: Instruction-array fields compared by the tape/d-DNNF cross check.
_TAPE_FIELDS = ("ops", "args", "gaps", "nvars", "var_labels", "source_gates")


@dataclass(frozen=True)
class Violation:
    """One failed invariant of one artifact file."""

    file: str  #: file name within the store directory
    kind: str  #: artifact kind the file claims (by suffix)
    check: str  #: machine-readable check id (see module docstring)
    detail: str  #: human explanation with gate/field specifics

    def as_dict(self) -> dict[str, str]:
        return {
            "file": self.file,
            "kind": self.kind,
            "check": self.check,
            "detail": self.detail,
        }


@dataclass
class VerifyReport:
    """Outcome of one :func:`verify_store` audit."""

    directory: str
    files: int = 0
    kinds: dict[str, dict[str, int]] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)
    #: OR gates whose determinism was neither proven nor refuted
    #: (variable set larger than the enumeration limit).
    determinism_assumed: int = 0
    #: Artifacts with nothing to audit beyond structure (v1 tape
    #: payloads carry no stored levels/bounds).
    skipped: int = 0
    #: Orphaned temp files from interrupted atomic writes (reported,
    #: GC-able, never counted as artifacts).
    orphans: int = 0
    orphan_bytes: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "directory": self.directory,
            "ok": self.ok,
            "files": self.files,
            "kinds": self.kinds,
            "violations": [v.as_dict() for v in self.violations],
            "determinism_assumed": self.determinism_assumed,
            "skipped": self.skipped,
            "orphans": self.orphans,
            "orphan_bytes": self.orphan_bytes,
        }


# ----------------------------------------------------------------------
# Circuit invariants (shared by .dnnf / .comp audits and verify_on_load)
# ----------------------------------------------------------------------


def check_circuit(
    circuit: Circuit,
    determinism_limit: int = DETERMINISM_LIMIT,
) -> tuple[list[tuple[str, str]], int]:
    """Audit an in-memory circuit against the d-DNNF invariants.

    Returns ``(problems, assumed)`` where each problem is a
    ``(check, detail)`` pair and ``assumed`` counts OR gates whose
    determinism exceeded the enumeration limit.  Acyclicity and the
    absence of dangling references hold by :class:`Circuit`
    construction, so only NNF shape, decomposability, and determinism
    need re-derivation here.
    """
    problems: list[tuple[str, str]] = []
    try:
        root = circuit.output_gate()
    except CircuitError as exc:
        return [("structure", str(exc))], 0
    flags = circuit.reachable(root)
    var_sets = circuit.gate_var_sets(root)

    for gate in range(root + 1):
        if not flags[gate]:
            continue
        if circuit.kind(gate) == NOT:
            (child,) = circuit.children(gate)
            if circuit.kind(child) != VAR:
                problems.append(
                    ("nnf", f"NOT gate {gate} negates non-variable gate {child}")
                )

    for gate, vset in sorted(var_sets.items()):
        kind = circuit.kind(gate)
        if kind != AND:
            continue
        children = circuit.children(gate)
        if sum(len(var_sets[c]) for c in children) != len(vset):
            problems.append(
                (
                    "decomposability",
                    f"AND gate {gate} has children with overlapping "
                    f"variable sets",
                )
            )

    assumed = 0
    implied = _implied_literals(circuit, root, flags)
    for gate, vset in sorted(var_sets.items()):
        if circuit.kind(gate) != OR:
            continue
        children = circuit.children(gate)
        if len(children) < 2:
            continue
        if _literals_disjoint(children, implied):
            continue
        if len(vset) > determinism_limit:
            assumed += 1
            continue
        witness = _enumerate_overlap(circuit, gate, vset)
        if witness is not None:
            problems.append(
                (
                    "determinism",
                    f"OR gate {gate} has children {witness[0]} and "
                    f"{witness[1]} sharing a satisfying assignment",
                )
            )
    return problems, assumed


def _implied_literals(
    circuit: Circuit, root: int, flags: list[bool]
) -> list[frozenset[tuple[int, bool]] | None]:
    """Per gate, literals implied by every satisfying assignment.

    Literals are ``(var_gate, polarity)`` pairs; ``None`` marks a gate
    with no satisfying assignment (FALSE cone).  Bottom-up: variables
    imply themselves, ANDs take the union over children, ORs the
    intersection over satisfiable children.
    """
    empty: frozenset[tuple[int, bool]] = frozenset()
    lits: list[frozenset[tuple[int, bool]] | None] = [empty] * (root + 1)
    for gate in range(root + 1):
        if not flags[gate]:
            continue
        kind = circuit.kind(gate)
        if kind == VAR:
            lits[gate] = frozenset({(gate, True)})
        elif kind == FALSE:
            lits[gate] = None
        elif kind == NOT:
            (child,) = circuit.children(gate)
            if circuit.kind(child) == VAR:
                lits[gate] = frozenset({(child, False)})
        elif kind == AND:
            union: set[tuple[int, bool]] = set()
            dead = False
            for child in circuit.children(gate):
                if lits[child] is None:
                    dead = True
                    break
                union |= lits[child]
            lits[gate] = None if dead else frozenset(union)
        elif kind == OR:
            alive = [lits[c] for c in circuit.children(gate) if lits[c] is not None]
            if not alive:
                lits[gate] = None
            else:
                lits[gate] = frozenset(frozenset.intersection(*alive))
    return lits


def _literals_disjoint(
    children: tuple[int, ...],
    lits: list[frozenset[tuple[int, bool]] | None],
) -> bool:
    """True when every pair of (satisfiable) children carries a
    complementary implied-literal pair — the syntactic determinism
    witness a decision-form compiler leaves behind."""
    alive = [c for c in children if lits[c] is not None]
    for i, a in enumerate(alive):
        la = lits[a]
        for b in alive[i + 1 :]:
            lb = lits[b]
            if not any((var, not pol) in lb for var, pol in la):
                return False
    return True


def _enumerate_overlap(
    circuit: Circuit, gate: int, vset: frozenset[int]
) -> tuple[int, int] | None:
    """Exhaustively test the children of OR ``gate`` for a shared
    satisfying assignment over ``Vars(gate)``.

    Bit-parallel: assignment *j* lives in bit *j* of every mask, so
    one :meth:`Circuit.evaluate_batch` traversal per child covers all
    ``2^|Vars|`` assignments.  Returns an overlapping child pair, or
    ``None`` when the gate is deterministic.
    """
    labels = [circuit.label(v) for v in sorted(vset)]
    width = 1 << len(labels)
    assignments = {}
    for i, label in enumerate(labels):
        period = 1 << (i + 1)
        block = ((1 << (1 << i)) - 1) << (1 << i)
        assignments[label] = ((1 << width) - 1) // ((1 << period) - 1) * block
    seen = 0
    outputs: list[tuple[int, int]] = []
    for child in circuit.children(gate):
        out = circuit.evaluate_batch(assignments, width, root=child)
        if seen & out:
            overlap = seen & out
            for prior, prior_out in outputs:
                if prior_out & overlap:
                    return prior, child
            return outputs[0][0], child  # pragma: no cover - defensive
        seen |= out
        outputs.append((child, out))
    return None


# ----------------------------------------------------------------------
# Per-kind payload audits
# ----------------------------------------------------------------------


def check_cnf_payload(payload: Any) -> list[tuple[str, str]]:
    """Audit a ``.cnf`` payload: loader structure plus label ranges."""
    try:
        cnf = Cnf.from_payload(payload)
    except CnfError as exc:
        return [("structure", str(exc))]
    problems = []
    for var in sorted(cnf.labels):
        if not isinstance(var, int) or not 1 <= var <= cnf.num_vars:
            problems.append(
                ("labels", f"labelled variable {var!r} outside 1..{cnf.num_vars}")
            )
    return problems


def check_tape_payload(
    payload: Any,
) -> tuple[list[tuple[str, str]], GateTape | None, int]:
    """Audit a ``.tape`` payload.

    Structure is validated by the engine's own loader on the
    instruction arrays alone; the stored v2 analysis (levels, bounds)
    is then audited *independently* against a fresh re-derivation so a
    corrupted schedule or bound is attributed precisely.  Returns
    ``(problems, tape, skipped)`` — ``tape`` (built without adopting
    the stored analysis) feeds the cross-artifact check, ``skipped``
    is 1 for a v1 payload with no stored analysis to audit.
    """
    if not isinstance(payload, dict):
        return [("structure", "tape payload is not an object")], None, 0
    core = {key: payload[key] for key in _TAPE_FIELDS if key in payload}
    try:
        tape = GateTape.from_payload(core)
    except TapeError as exc:
        return [("structure", str(exc))], None, 0

    problems: list[tuple[str, str]] = []
    if len(set(map(repr, tape.var_labels))) != len(tape.var_labels):
        problems.append(("labels", "duplicate entries in the label table"))

    if "levels" not in payload and "bounds" not in payload:
        return problems, tape, 1  # v1 payload: nothing else stored

    levels = payload.get("levels")
    fresh_levels = tape.level_schedule()
    if not isinstance(levels, list) or len(levels) != len(tape.ops):
        problems.append(("levels", "stored level array is missing or ragged"))
    else:
        for i, level in enumerate(levels):
            if not isinstance(level, int) or level < 0:
                problems.append(("levels", f"level[{i}] is not a natural number"))
                break
            children = tape.args[i] if fresh_levels[i] else ()
            if fresh_levels[i] and any(levels[c] >= level for c in children):
                problems.append(
                    ("levels", f"level[{i}] does not dominate its children")
                )
                break

    bounds = payload.get("bounds")
    fresh = dict(
        zip(("forward_bits", "backward_bits", "diff_bits"), tape.bound_bits())
    )
    if not isinstance(bounds, dict):
        problems.append(("bounds", "stored bounds are missing or malformed"))
    else:
        for key in ("forward_bits", "backward_bits", "diff_bits"):
            if bounds.get(key) != fresh[key]:
                problems.append(
                    (
                        "bounds",
                        f"stored {key}={bounds.get(key)!r} but fan-in "
                        f"re-derivation gives {fresh[key]}",
                    )
                )
    return problems, tape, 0


def check_component_payload(
    payload: Any,
    digest: str,
    determinism_limit: int = DETERMINISM_LIMIT,
) -> tuple[list[tuple[str, str]], int]:
    """Audit a ``.comp`` payload: scheme tag, canonical-form key, and
    the embedded circuit's d-DNNF invariants."""
    if not isinstance(payload, dict):
        return [("structure", "component payload is not an object")], 0
    problems: list[tuple[str, str]] = []
    if payload.get("scheme") != COMPONENT_SCHEME:
        problems.append(
            (
                "scheme",
                f"scheme tag {payload.get('scheme')!r} is not this "
                f"compiler's {COMPONENT_SCHEME}",
            )
        )

    clauses = payload.get("clauses")
    key: tuple[tuple[int, ...], ...] | None = None
    if clauses is None:
        problems.append(
            ("component-key", "payload carries no canonical clause set")
        )
    else:
        try:
            key = tuple(
                tuple(int(lit) for lit in clause) for clause in clauses
            )
        except (TypeError, ValueError):
            problems.append(
                ("component-key", "stored clause set is not lists of ints")
            )
            key = None
    if key is not None:
        if signature_digest(key) != digest:
            problems.append(
                (
                    "component-key",
                    "stored clause set does not re-derive the file digest",
                )
            )
        elif canonical_component(key)[0] != key:
            problems.append(
                (
                    "component-canonical",
                    "stored clause set is not a canonical_component fixed "
                    "point",
                )
            )

    try:
        circuit = Circuit.from_payload(payload.get("circuit") or {})
    except CircuitError as exc:
        problems.append(("structure", str(exc)))
        return problems, 0
    circuit_problems, assumed = check_circuit(circuit, determinism_limit)
    problems.extend(circuit_problems)
    if key is not None:
        num_vars = max(
            (abs(lit) for clause in key for lit in clause), default=0
        )
        for label in sorted(circuit.variables(), key=repr):
            if not isinstance(label, int) or not 1 <= label <= num_vars:
                problems.append(
                    (
                        "labels",
                        f"component variable {label!r} outside the key's "
                        f"1..{num_vars}",
                    )
                )
    return problems, assumed


def check_loaded_tape(tape: GateTape) -> list[tuple[str, str]]:
    """Spot check for :class:`~repro.engine.cache.ArtifactCache`
    ``verify_on_load``: stored (advisory) bounds must equal the
    re-derived certificate."""
    stored = tape._analysis.get("payload_bound_bits")
    if stored is None:
        return []
    if tuple(stored) != tape.bound_bits():
        return [
            (
                "bounds",
                f"stored bound bits {tuple(stored)} differ from re-derived "
                f"{tape.bound_bits()}",
            )
        ]
    return []


# ----------------------------------------------------------------------
# Store-level audit
# ----------------------------------------------------------------------


def _read_artifact(
    path: Path, kind: str
) -> tuple[Any, list[tuple[str, str]]]:
    """Parse one artifact file exactly the way the store's loader does,
    returning ``(payload, problems)`` — payload is ``None`` whenever a
    problem made it unreadable."""
    try:
        blob = path.read_bytes()
    except OSError as exc:
        return None, [("header", f"unreadable: {exc}")]
    newline = blob.find(b"\n")
    if newline < 0:
        return None, [("header", "missing header line")]
    header = blob[:newline].decode("utf-8", errors="replace").split()
    payload = blob[newline + 1 :]
    if len(header) != 4 or header[0] != ARTIFACT_MAGIC or header[2] != kind:
        return None, [("header", "malformed header or kind mismatch")]
    if header[1] != str(FORMAT_VERSION):
        return None, [
            (
                "version",
                f"format version {header[1]} is not this build's "
                f"{FORMAT_VERSION}",
            )
        ]
    if hashlib.sha256(payload).hexdigest() != header[3]:
        return None, [("checksum", "payload does not match header checksum")]
    try:
        return json.loads(payload), []
    except ValueError:
        return None, [("payload", "payload is not valid JSON")]


def verify_store(
    directory: str | Path,
    determinism_limit: int = DETERMINISM_LIMIT,
) -> VerifyReport:
    """Audit every artifact in ``directory`` and return the report.

    Read-only: nothing is deleted, rewritten, or recompiled.  Per-kind
    file counts match :meth:`PersistentArtifactStore.kind_summary`
    exactly (same suffix discipline); in-flight/orphaned ``*.tmp``
    files are reported separately and never audited as artifacts.
    """
    directory = Path(directory)
    report = VerifyReport(directory=str(directory))
    report.kinds = {
        kind: {"files": 0, "ok": 0, "violations": 0} for kind in ARTIFACT_KINDS
    }
    suffixes = {f".{kind}": kind for kind in ARTIFACT_KINDS}

    groups: dict[str, dict[str, Path]] = {}
    try:
        candidates = sorted(directory.iterdir())
    except OSError as exc:
        raise FileNotFoundError(f"cannot scan {directory}: {exc}") from None
    for path in candidates:
        if path.suffix == ".tmp":
            report.orphans += 1
            try:
                report.orphan_bytes += path.stat().st_size
            except OSError:
                pass
            continue
        kind = suffixes.get(path.suffix)
        if kind is None:
            continue
        groups.setdefault(path.stem, {})[kind] = path

    loaded: dict[str, dict[str, Any]] = {}
    for digest in sorted(groups):
        loaded[digest] = {}
        for kind, path in sorted(groups[digest].items()):
            report.files += 1
            report.kinds[kind]["files"] += 1
            payload, problems = _read_artifact(path, kind)
            if payload is not None:
                if kind == "cnf":
                    problems += check_cnf_payload(payload)
                    if not problems:
                        loaded[digest]["cnf"] = Cnf.from_payload(payload)
                elif kind == "dnnf":
                    try:
                        circuit = Circuit.from_payload(payload)
                    except CircuitError as exc:
                        problems.append(("structure", str(exc)))
                    else:
                        circuit_problems, assumed = check_circuit(
                            circuit, determinism_limit
                        )
                        problems += circuit_problems
                        report.determinism_assumed += assumed
                        if not problems:
                            loaded[digest]["dnnf"] = circuit
                elif kind == "tape":
                    tape_problems, tape, skipped = check_tape_payload(payload)
                    problems += tape_problems
                    report.skipped += skipped
                    if tape is not None and not problems:
                        loaded[digest]["tape"] = tape
                else:
                    comp_problems, assumed = check_component_payload(
                        payload, digest, determinism_limit
                    )
                    problems += comp_problems
                    report.determinism_assumed += assumed
            if problems:
                report.kinds[kind]["violations"] += 1
                report.violations += [
                    Violation(path.name, kind, check, detail)
                    for check, detail in problems
                ]
            else:
                report.kinds[kind]["ok"] += 1

    for digest in sorted(loaded):
        artifacts = loaded[digest]
        cross: list[tuple[str, str, str]] = []  # (file, check, detail)
        circuit = artifacts.get("dnnf")
        tape = artifacts.get("tape")
        cnf = artifacts.get("cnf")
        if circuit is not None and tape is not None:
            expected = compile_tape(circuit)
            for name in _TAPE_FIELDS:
                if getattr(tape, name) != getattr(expected, name):
                    cross.append(
                        (
                            f"{digest}.tape",
                            "tape-match",
                            f"stored {name} differs from re-lowering the "
                            f"stored d-DNNF",
                        )
                    )
        if circuit is not None and cnf is not None:
            missing = circuit.reachable_vars() - set(cnf.labels.values())
            if missing:
                cross.append(
                    (
                        f"{digest}.dnnf",
                        "var-match",
                        f"d-DNNF mentions variables absent from the CNF "
                        f"label set: {sorted(missing, key=repr)[:5]}",
                    )
                )
        flagged_files: set[str] = set()
        for file, check, detail in cross:
            kind = file.rsplit(".", 1)[1]
            if file not in flagged_files:
                flagged_files.add(file)
                report.kinds[kind]["violations"] += 1
                report.kinds[kind]["ok"] -= 1
            report.violations.append(Violation(file, kind, check, detail))
    return report
