"""Repo-invariant lint (Prong B): ``python -m repro.analysis.lint src/``.

Four AST-based rules, stdlib-``ast`` only, each guarding an invariant
the pipeline's correctness or reproducibility rests on:

* **REP001 — seeded randomness.**  No unseeded ``random`` /
  ``numpy.random`` sources outside workload generators: an unseeded
  RNG makes sampling-based estimators (Monte Carlo, kernel SHAP)
  non-reproducible run to run.  Construct ``random.Random(seed)`` /
  ``numpy.random.default_rng(seed)`` instead.
* **REP002 — sorted set/dict iteration.**  In canonicalization and
  signature modules (``compiler/knowledge.py``, ``circuits/*``,
  ``engine/cache.py``), no iteration over a bare ``set``/``dict``
  unless wrapped in ``sorted(...)``: these modules produce canonical
  forms keyed into the shared store, which must be byte-identical
  across processes and ``PYTHONHASHSEED`` values.
* **REP003 — float-free exact arithmetic.**  No ``float`` literals or
  ``float(...)`` conversions in the exact-arithmetic modules
  (``core/numerics/exact.py``, ``core/shapley.py``); machine floats
  belong only to the overflow-guarded fixed-width tier, which proves
  its own bounds.
* **REP004 — acyclic lock order.**  Over ``engine/service/`` and
  ``engine/store.py``, extract the static lock-acquisition graph
  (every ``with self.<lock>`` nesting, direct and through the
  may-acquire closure of method calls) and fail on cycles or
  re-acquisition of a non-reentrant lock — the coordinator's
  compile-ahead queue made lock-order inversions a real deadlock
  risk.

Suppress a rule on one line with an inline marker comment::

    for group in groups.values():  # repro: allow=REP002 (insertion-ordered)

The marker names one or more comma-separated rule ids; everything
after them is free-form justification.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable

RULES = {
    "REP001": "unseeded random source outside workload generators",
    "REP002": "unsorted set/dict iteration in a canonicalization module",
    "REP003": "float literal/conversion in an exact-arithmetic module",
    "REP004": "lock-acquisition graph has a cycle or non-reentrant re-acquisition",
}

#: Module paths (relative to the ``repro`` package) scoped per rule.
REP001_EXEMPT_PREFIXES = ("workloads/",)
REP002_SCOPE = ("compiler/knowledge.py", "engine/cache.py")
REP002_SCOPE_PREFIXES = ("circuits/",)
REP003_SCOPE = (
    "core/numerics/exact.py",
    "core/numerics/batched.py",
    "core/shapley.py",
)
REP004_SCOPE = ("engine/store.py",)
REP004_SCOPE_PREFIXES = ("engine/service/",)

_SUPPRESS_MARK = "repro: allow="


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def _module_rel(path: str) -> str:
    """Path of a source file relative to the ``repro`` package root
    (used for rule scoping); the raw path when outside the package."""
    parts = PurePosixPath(str(path).replace("\\", "/")).parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[anchor + 1 :])
    return "/".join(parts)


def _suppressed(lines: list[str], lineno: int, rule: str) -> bool:
    if not 0 < lineno <= len(lines):
        return False
    text = lines[lineno - 1]
    marker = text.find(_SUPPRESS_MARK)
    if marker < 0:
        return False
    listed = text[marker + len(_SUPPRESS_MARK) :].split()[0]
    return rule in {item.strip() for item in listed.split(",")}


# ----------------------------------------------------------------------
# REP001 — seeded randomness
# ----------------------------------------------------------------------

#: ``random`` module functions driven by the hidden global RNG.
_GLOBAL_RNG_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "betavariate", "expovariate", "gammavariate",
    "gauss", "lognormvariate", "normalvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "getrandbits",
    "randbytes",
}


class _Rep001Visitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.findings: list[tuple[int, str]] = []
        self._random_aliases: set[str] = set()
        self._numpy_aliases: set[str] = set()
        self._nprandom_aliases: set[str] = set()
        self._from_random: dict[str, str] = {}
        self._from_nprandom: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name == "numpy":
                self._numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self._nprandom_aliases.add(alias.asname)
                else:
                    self._numpy_aliases.add("numpy")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                self._from_random[bound] = alias.name
            elif node.module == "numpy":
                if alias.name == "random":
                    self._nprandom_aliases.add(bound)
            elif node.module == "numpy.random":
                self._from_nprandom[bound] = alias.name

    @staticmethod
    def _dotted(func: ast.expr) -> tuple[str, ...] | None:
        parts: list[str] = []
        while isinstance(func, ast.Attribute):
            parts.append(func.attr)
            func = func.value
        if isinstance(func, ast.Name):
            parts.append(func.id)
            return tuple(reversed(parts))
        return None

    @staticmethod
    def _unseeded_args(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        if len(node.args) == 1 and not node.keywords:
            arg = node.args[0]
            return isinstance(arg, ast.Constant) and arg.value is None
        return False

    def _flag(self, node: ast.Call, what: str) -> None:
        self.findings.append(
            (
                node.lineno,
                f"{what}; construct it with an explicit seed so sampling "
                f"runs are reproducible",
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            self._check_dotted(node, dotted)
        self.generic_visit(node)

    def _check_dotted(self, node: ast.Call, dotted: tuple[str, ...]) -> None:
        head, tail = dotted[0], dotted[1:]
        if head in self._random_aliases and len(tail) == 1:
            attr = tail[0]
            if attr == "Random" and self._unseeded_args(node):
                self._flag(node, "unseeded random.Random()")
            elif attr == "SystemRandom":
                self._flag(node, "random.SystemRandom() (entropy-seeded)")
            elif attr == "seed" and self._unseeded_args(node):
                self._flag(node, "random.seed() without a seed value")
            elif attr in _GLOBAL_RNG_FUNCS:
                self._flag(node, f"random.{attr}() on the global RNG")
            return
        np_tail: tuple[str, ...] | None = None
        if head in self._numpy_aliases and len(tail) >= 2 and tail[0] == "random":
            np_tail = tail[1:]
        elif head in self._nprandom_aliases and len(tail) >= 1:
            np_tail = tail
        if np_tail is not None and len(np_tail) == 1:
            attr = np_tail[0]
            if attr in ("default_rng", "RandomState", "Generator"):
                if self._unseeded_args(node):
                    self._flag(node, f"unseeded numpy.random.{attr}()")
            elif attr == "seed" and self._unseeded_args(node):
                self._flag(node, "numpy.random.seed() without a seed value")
            else:
                self._flag(node, f"numpy.random.{attr}() on the global RNG")
            return
        if len(dotted) == 1:
            name = dotted[0]
            origin = self._from_random.get(name)
            if origin is not None:
                if origin == "Random" and self._unseeded_args(node):
                    self._flag(node, "unseeded Random()")
                elif origin == "SystemRandom":
                    self._flag(node, "SystemRandom() (entropy-seeded)")
                elif origin in _GLOBAL_RNG_FUNCS or origin == "seed":
                    self._flag(node, f"random.{origin}() on the global RNG")
                return
            origin = self._from_nprandom.get(name)
            if origin is not None:
                if origin in ("default_rng", "RandomState"):
                    if self._unseeded_args(node):
                        self._flag(node, f"unseeded numpy.random.{origin}()")
                else:
                    self._flag(node, f"numpy.random.{origin}() on the global RNG")


# ----------------------------------------------------------------------
# REP002 — sorted set/dict iteration in canonicalization modules
# ----------------------------------------------------------------------

#: Repo APIs whose call result is a set (iteration order = hash order).
_SET_RETURNING_METHODS = {
    "variables", "reachable_vars", "labels", "auxiliary_vars",
    "labelled_vars", "keys", "values", "items",
}
#: Repo APIs returning dicts keyed/valued by sets.
_DICT_OF_SETS_METHODS = {"gate_var_sets"}

#: Builtins that make iteration order irrelevant or deterministic.
_ORDER_NEUTRALIZERS = {"sorted", "len", "sum", "min", "max", "any", "all"}
#: Builtins that merely forward their iterable's order.
_ORDER_FORWARDERS = {"enumerate", "reversed", "zip", "list", "tuple", "iter"}


class _Rep002Visitor(ast.NodeVisitor):
    """Tracks set-like values through local assignments and flags
    ``for``/comprehension iteration whose order is hash-dependent."""

    def __init__(self) -> None:
        self.findings: list[tuple[int, str]] = []
        self._scopes: list[dict[str, str]] = [{}]

    # -- scope management ------------------------------------------------

    def _enter(self, node: ast.AST) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _enter
    visit_AsyncFunctionDef = _enter

    def _lookup(self, name: str) -> str | None:
        for scope in reversed(self._scopes):
            kind = scope.get(name)
            if kind is not None:
                return kind
        return None

    def _bind(self, target: ast.expr, kind: str | None) -> None:
        if isinstance(target, ast.Name):
            if kind is None:
                self._scopes[-1].pop(target.id, None)
            else:
                self._scopes[-1][target.id] = kind

    # -- set-likeness of an expression ----------------------------------

    def _kind_of(self, node: ast.expr) -> str | None:
        """``"set"``/``"dict"``/``"dict_of_sets"`` when ``node``'s value
        iterates in hash order, else ``None``."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.IfExp):
            return self._kind_of(node.body) or self._kind_of(node.orelse)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            left = self._kind_of(node.left)
            right = self._kind_of(node.right)
            if "set" in (left, right):
                return "set"
            return None
        if isinstance(node, ast.Subscript):
            if self._kind_of(node.value) == "dict_of_sets":
                return "set"
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return "set"
                if func.id == "dict":
                    return "dict"
                return None
            if isinstance(func, ast.Attribute):
                attr = func.attr
                if attr in ("union", "intersection", "difference",
                            "symmetric_difference", "copy"):
                    base = self._kind_of(func.value)
                    return base if base in ("set", "dict", "dict_of_sets") \
                        else ("set" if attr != "copy" else None)
                if attr in ("keys", "values", "items"):
                    base = self._kind_of(func.value)
                    if base in ("dict", "dict_of_sets"):
                        return "set"  # a view iterates like its dict
                    return None
                if attr in _DICT_OF_SETS_METHODS:
                    return "dict_of_sets"
                if attr in _SET_RETURNING_METHODS:
                    return "set"
            return None
        return None

    # -- assignments -----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = self._kind_of(node.value)
        for target in node.targets:
            self._bind(target, kind)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, self._kind_of(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)

    # -- iteration contexts ---------------------------------------------

    def _check_iter(self, node: ast.expr) -> None:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _ORDER_NEUTRALIZERS:
                return
            if name in _ORDER_FORWARDERS:
                for arg in node.args:
                    self._check_iter(arg)
                return
        kind = self._kind_of(node)
        if kind is not None:
            what = "dict" if kind in ("dict", "dict_of_sets") else "set"
            self.findings.append(
                (
                    node.lineno,
                    f"iteration over a bare {what} is hash-order dependent "
                    f"here; wrap it in sorted(...) to keep canonical forms "
                    f"PYTHONHASHSEED-independent",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self._bind(node.target, None)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in node.generators:
            self._check_iter(comp.iter)
            self._bind(comp.target, None)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


# ----------------------------------------------------------------------
# REP003 — float-free exact arithmetic
# ----------------------------------------------------------------------


class _Rep003Visitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.findings: list[tuple[int, str]] = []

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            self.findings.append(
                (
                    node.lineno,
                    f"float literal {node.value!r} in an exact-arithmetic "
                    f"module; use Fraction/int (floats belong to the "
                    f"guarded fixed-width tier)",
                )
            )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            self.findings.append(
                (
                    node.lineno,
                    "float(...) conversion in an exact-arithmetic module; "
                    "keep values in Fraction/int",
                )
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# REP004 — lock-order analysis
# ----------------------------------------------------------------------

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


@dataclass
class LockOrderGraph:
    """The static lock-acquisition graph of a set of modules."""

    #: Lock nodes, named ``Class.attr``.
    nodes: set[str] = field(default_factory=set)
    #: Nesting edges ``(outer, inner) -> "path:line"`` of one witness
    #: acquisition site (direct nesting or via the may-acquire closure
    #: of a method call made while holding ``outer``).
    edges: dict[tuple[str, str], str] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "nodes": sorted(self.nodes),
            "edges": [
                {"outer": outer, "inner": inner, "site": site}
                for (outer, inner), site in sorted(self.edges.items())
            ],
            "findings": [finding.as_dict() for finding in self.findings],
        }


def _lock_factory(node: ast.expr) -> str | None:
    """``"Lock"``/``"RLock"``/... when ``node`` is a ``threading.X()``
    (or bare imported ``X()``) lock construction."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "threading" and func.attr in _LOCK_FACTORIES:
            return func.attr
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return func.id
    return None


class _LockAnalyzer:
    def __init__(self, files: Iterable[tuple[str, str]]) -> None:
        self.graph = LockOrderGraph()
        self._lock_types: dict[str, str] = {}  # "Cls.attr" -> factory
        self._attr_owners: dict[str, set[str]] = {}  # attr -> classes
        self._methods: dict[tuple[str, str], ast.AST] = {}
        self._method_names: dict[str, set[str]] = {}  # name -> classes
        self._files: list[tuple[str, ast.Module]] = []
        for path, text in files:
            tree = ast.parse(text, filename=path)
            self._files.append((path, tree))

    # -- discovery -------------------------------------------------------

    def _discover(self) -> None:
        for _path, tree in self._files:
            for cls in tree.body:
                if not isinstance(cls, ast.ClassDef):
                    continue
                for method in cls.body:
                    if not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    self._methods[(cls.name, method.name)] = method
                    self._method_names.setdefault(method.name, set()).add(
                        cls.name
                    )
                    for node in ast.walk(method):
                        if not isinstance(node, ast.Assign):
                            continue
                        factory = _lock_factory(node.value)
                        if factory is None:
                            continue
                        for target in node.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                name = f"{cls.name}.{target.attr}"
                                self._lock_types[name] = factory
                                self._attr_owners.setdefault(
                                    target.attr, set()
                                ).add(cls.name)
        self.graph.nodes = set(self._lock_types)

    def _resolve_lock(self, node: ast.expr, cls: str) -> str | None:
        """Resolve ``self.attr`` / ``obj.attr`` to a lock node."""
        if not isinstance(node, ast.Attribute):
            return None
        attr = node.attr
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            name = f"{cls}.{attr}"
            return name if name in self._lock_types else None
        owners = self._attr_owners.get(attr)
        if owners and len(owners) == 1:
            return f"{next(iter(owners))}.{attr}"
        return None

    def _resolve_call(
        self, node: ast.Call, cls: str
    ) -> tuple[str, str] | None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            if func.value.id == "self":
                key = (cls, func.attr)
                return key if key in self._methods else None
            owners = self._method_names.get(func.attr)
            if owners and len(owners) == 1:
                return (next(iter(owners)), func.attr)
        return None

    # -- may-acquire closure --------------------------------------------

    def _closure(self) -> dict[tuple[str, str], set[str]]:
        direct: dict[tuple[str, str], set[str]] = {}
        calls: dict[tuple[str, str], set[tuple[str, str]]] = {}
        for (cls, name), method in self._methods.items():
            key = (cls, name)
            direct[key] = set()
            calls[key] = set()
            for node in ast.walk(method):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        lock = self._resolve_lock(item.context_expr, cls)
                        if lock is not None:
                            direct[key].add(lock)
                elif isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "acquire"
                    ):
                        lock = self._resolve_lock(node.func.value, cls)
                        if lock is not None:
                            direct[key].add(lock)
                    callee = self._resolve_call(node, cls)
                    if callee is not None:
                        calls[key].add(callee)
        closure = {key: set(locks) for key, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for key, callees in calls.items():
                for callee in callees:
                    extra = closure.get(callee, set()) - closure[key]
                    if extra:
                        closure[key] |= extra
                        changed = True
        return closure

    # -- lexical edge extraction ----------------------------------------

    def analyze(self) -> LockOrderGraph:
        self._discover()
        closure = self._closure()
        for path, tree in self._files:
            for cls in tree.body:
                if not isinstance(cls, ast.ClassDef):
                    continue
                for method in cls.body:
                    if isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._scan(method, cls.name, path, [], closure)
        self._detect_cycles()
        return self.graph

    def _add_edge(
        self, outer: str, inner: str, path: str, line: int
    ) -> None:
        if outer == inner:
            if self._lock_types.get(outer) == "Lock":
                self.graph.findings.append(
                    Finding(
                        path,
                        line,
                        "REP004",
                        f"non-reentrant lock {outer} may be re-acquired "
                        f"while already held",
                    )
                )
            return
        self.graph.edges.setdefault((outer, inner), f"{path}:{line}")

    def _scan(self, node, cls, path, held, closure) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_held = list(held)
            for item in node.items:
                self._scan(item.context_expr, cls, path, inner_held, closure)
                lock = self._resolve_lock(item.context_expr, cls)
                if lock is not None:
                    for outer in inner_held:
                        self._add_edge(outer, lock, path, node.lineno)
                    inner_held.append(lock)
            for child in node.body:
                self._scan(child, cls, path, inner_held, closure)
            return
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                lock = self._resolve_lock(node.func.value, cls)
                if lock is not None:
                    for outer in held:
                        self._add_edge(outer, lock, path, node.lineno)
            callee = self._resolve_call(node, cls)
            if callee is not None and held:
                for inner in sorted(closure.get(callee, ())):
                    for outer in held:
                        self._add_edge(outer, inner, path, node.lineno)
        for child in ast.iter_child_nodes(node):
            self._scan(child, cls, path, held, closure)

    def _detect_cycles(self) -> None:
        adjacency: dict[str, set[str]] = {}
        for outer, inner in self.graph.edges:
            adjacency.setdefault(outer, set()).add(inner)
        state: dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(node: str, trail: list[str]) -> list[str] | None:
            state[node] = 1
            trail.append(node)
            for nxt in sorted(adjacency.get(node, ())):
                if state.get(nxt) == 1:
                    return trail[trail.index(nxt) :] + [nxt]
                if state.get(nxt, 0) == 0:
                    cycle = visit(nxt, trail)
                    if cycle is not None:
                        return cycle
            trail.pop()
            state[node] = 2
            return None

        for node in sorted(adjacency):
            if state.get(node, 0) == 0:
                cycle = visit(node, [])
                if cycle is not None:
                    site = self.graph.edges.get(
                        (cycle[0], cycle[1]), "<unknown>"
                    )
                    path, _, line = site.partition(":")
                    self.graph.findings.append(
                        Finding(
                            path,
                            int(line or 0),
                            "REP004",
                            "lock-order cycle: " + " -> ".join(cycle),
                        )
                    )
                    return


def analyze_lock_order(files: Iterable[tuple[str, str]]) -> LockOrderGraph:
    """Extract the static lock-acquisition graph of ``files`` (pairs of
    ``(path, source)``) and report order cycles / non-reentrant
    re-acquisition as REP004 findings."""
    return _LockAnalyzer(files).analyze()


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def lint_source(path: str, text: str) -> list[Finding]:
    """Run the per-file rules (REP001-REP003) on one source file."""
    rel = _module_rel(path)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "REP000", f"syntax error: {exc.msg}")]
    lines = text.splitlines()
    findings: list[Finding] = []

    def run(rule: str, visitor) -> None:
        visitor.visit(tree)
        for line, message in visitor.findings:
            if not _suppressed(lines, line, rule):
                findings.append(Finding(path, line, rule, message))

    if not rel.startswith(REP001_EXEMPT_PREFIXES):
        run("REP001", _Rep001Visitor())
    if rel in REP002_SCOPE or rel.startswith(REP002_SCOPE_PREFIXES):
        run("REP002", _Rep002Visitor())
    if rel in REP003_SCOPE:
        run("REP003", _Rep003Visitor())
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_paths(
    paths: Iterable[str | Path],
) -> tuple[list[Finding], LockOrderGraph]:
    """Lint every ``.py`` file under ``paths``; returns the combined
    per-file findings and the REP004 lock-order graph of the in-scope
    concurrency modules."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: list[Finding] = []
    lock_files: list[tuple[str, str]] = []
    for file in files:
        text = file.read_text(encoding="utf-8")
        findings.extend(lint_source(str(file), text))
        rel = _module_rel(str(file))
        if rel in REP004_SCOPE or rel.startswith(REP004_SCOPE_PREFIXES):
            lock_files.append((str(file), text))
    graph = analyze_lock_order(lock_files)
    lines_by_path: dict[str, list[str]] = {
        path: text.splitlines() for path, text in lock_files
    }
    for finding in graph.findings:
        if not _suppressed(
            lines_by_path.get(finding.path, []), finding.line, finding.rule
        ):
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, graph


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repo-invariant lint (REP001-REP004)",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="also print the REP004 lock-acquisition graph",
    )
    args = parser.parse_args(argv)
    findings, graph = lint_paths(args.paths)
    if args.json:
        print(
            json.dumps(
                {
                    "findings": [finding.as_dict() for finding in findings],
                    "lock_order": graph.as_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        if args.graph:
            print(f"lock nodes: {', '.join(sorted(graph.nodes)) or '(none)'}")
            for (outer, inner), site in sorted(graph.edges.items()):
                print(f"  {outer} -> {inner}  ({site})")
        print(
            f"{len(findings)} finding(s); lock graph: "
            f"{len(graph.nodes)} node(s), {len(graph.edges)} edge(s)"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
