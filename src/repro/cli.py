"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Generate a benchmark database (tpch / imdb / flights) and save it as
    a CSV directory.
``queries``
    List the benchmark suite queries for a workload.
``explain``
    Run a query over a saved or generated database and print the
    top-contributing facts for an answer, with any method of the paper.
``bench``
    A quick smoke benchmark: the exact engine over one suite query,
    batched through :class:`~repro.engine.session.ExplainSession` with
    artifact caching.

Method dispatch goes through the engine registry
(:func:`repro.engine.get_engine`): ``--method`` accepts any registered
engine name and new backends show up here automatically.
"""

from __future__ import annotations

import argparse
import sys
import time

from .compiler import CompilationBudget
from .core import to_plan
from .core.attribution import attribute
from .db import lineage
from .engine import (
    ArtifactCache,
    EngineOptions,
    ExplainSession,
    PersistentArtifactStore,
    available_engines,
)
from .db.database import Database
from .db.io import load_database, save_database
from .workloads import (
    IMDB_ALL_QUERIES,
    TPCH_QUERIES,
    ImdbConfig,
    TpchConfig,
    generate_imdb,
    generate_tpch,
    imdb_query,
    tpch_query,
)
from .workloads.flights import flights_database, flights_query


def _build_db(args: argparse.Namespace) -> Database:
    if getattr(args, "data", None):
        return load_database(args.data)
    workload = args.workload
    if workload == "tpch":
        return generate_tpch(TpchConfig(scale_factor=args.scale, seed=args.seed))
    if workload == "imdb":
        return generate_imdb(ImdbConfig(seed=args.seed))
    if workload == "flights":
        return flights_database()
    raise SystemExit(f"unknown workload {workload!r}")


def _resolve_query(args: argparse.Namespace, db: Database):
    if args.sql:
        return args.sql
    if args.query:
        if args.workload == "tpch":
            return tpch_query(args.query).sql
        if args.workload == "imdb":
            return imdb_query(args.query).sql
        raise SystemExit("--query needs --workload tpch or imdb")
    if args.workload == "flights":
        return flights_query()
    raise SystemExit("pass --sql or --query")


def cmd_generate(args: argparse.Namespace) -> int:
    db = _build_db(args)
    save_database(db, args.out)
    print(f"wrote {db} to {args.out}")
    return 0


def cmd_queries(args: argparse.Namespace) -> int:
    suite = TPCH_QUERIES if args.workload == "tpch" else IMDB_ALL_QUERIES
    for spec in suite:
        description = spec.description.split(".")[0]
        print(f"{spec.name:6s} {description}")
    return 0


def _build_cache(args: argparse.Namespace) -> ArtifactCache | None:
    """The artifact cache implied by ``--cache-dir`` (None = engine
    default): a two-tier cache whose disk store persists canonical
    compiled artifacts across invocations and processes."""
    if not getattr(args, "cache_dir", None):
        return None
    return ArtifactCache(store=PersistentArtifactStore(args.cache_dir))


def cmd_explain(args: argparse.Namespace) -> int:
    db = _build_db(args)
    query = _resolve_query(args, db)
    answer = tuple(args.answer) if args.answer else None
    if answer is not None:
        # try to coerce numeric components so they match stored values
        answer = tuple(_coerce(part) for part in answer)
    try:
        result = attribute(
            db, query,
            answer=answer,
            method=args.method,
            timeout=args.timeout,
            samples_per_fact=args.samples,
            seed=args.seed,
            cache=_build_cache(args),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        available = lineage(to_plan(query, db), db).tuples()
        preview = ", ".join(str(t) for t in available[:8])
        print(f"available answers ({len(available)}): {preview} ...",
              file=sys.stderr)
        return 2
    kind = "exact Shapley values" if result.exact else f"{result.method} scores"
    print(f"answer {result.answer}: {kind} "
          f"({len(result.values)} facts, {result.seconds:.3f}s)")
    for fact, value in result.top(args.top):
        print(f"  {float(value):+.6f}  {fact}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("--jobs must be a positive integer")
    db = _build_db(args)
    query = _resolve_query(args, db)
    if args.no_cache and args.cache_dir:
        raise SystemExit("--no-cache and --cache-dir are mutually exclusive")
    store = (
        PersistentArtifactStore(args.cache_dir) if args.cache_dir else None
    )
    if args.no_cache:
        cache = ArtifactCache(max_entries=0)
    else:
        cache = ArtifactCache(store=store)
    session = ExplainSession(
        db,
        method="exact",
        options=EngineOptions(
            budget=CompilationBudget(max_seconds=args.timeout), timeout=None
        ),
        cache=cache,
        max_workers=args.jobs,
        executor=args.jobs_mode,
    )
    start = time.perf_counter()
    results = session.explain_many(query)
    elapsed = time.perf_counter() - start
    total = len(results)
    ok = sum(r.ok for r in results.values())
    print(f"{total} outputs, {ok} exact successes "
          f"({ok / total:.1%}) in {elapsed:.2f}s")
    stats = session.stats
    print(f"cache: {stats['compile_calls']} compilations for "
          f"{stats['answers_explained']} answers "
          f"({stats['unique_shapes']} distinct lineage shapes, "
          f"{stats['ddnnf_hits']} d-DNNF hits)")
    if store is not None:
        print(f"store: {stats['store_hits']} hits, "
              f"{stats['store_misses']} misses, "
              f"{stats['store_writes']} writes, "
              f"{stats['store_corruptions']} corrupt "
              f"({len(store)} artifacts in {args.cache_dir})")
    return 0


def _coerce(text: str):
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shapley values of database facts in query answering",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", choices=("tpch", "imdb", "flights"),
                       default="flights")
        p.add_argument("--data", help="CSV directory written by 'generate'")
        p.add_argument("--scale", type=float, default=0.0005,
                       help="TPC-H scale factor")
        p.add_argument("--seed", type=int, default=7)

    g = sub.add_parser("generate", help="generate and save a database")
    common(g)
    g.add_argument("--out", required=True, help="output CSV directory")
    g.set_defaults(func=cmd_generate)

    q = sub.add_parser("queries", help="list suite queries")
    q.add_argument("--workload", choices=("tpch", "imdb"), default="tpch")
    q.set_defaults(func=cmd_queries)

    e = sub.add_parser("explain", help="attribute a query answer to facts")
    common(e)
    e.add_argument("--sql", help="SQL text to run")
    e.add_argument("--query", help="suite query name (e.g. Q3, 8d)")
    e.add_argument("--answer", nargs="*", help="the answer tuple to explain")
    e.add_argument("--method", choices=available_engines(), default="hybrid")
    e.add_argument("--timeout", type=float, default=2.5)
    e.add_argument("--samples", type=int, default=20,
                   help="samples per fact for the sampling methods")
    e.add_argument("--top", type=int, default=10)
    e.add_argument("--cache-dir",
                   help="persistent artifact store directory (compiled "
                        "artifacts are reused across invocations)")
    e.set_defaults(func=cmd_explain)

    b = sub.add_parser("bench", help="quick exact-pipeline smoke benchmark")
    common(b)
    b.add_argument("--sql")
    b.add_argument("--query")
    b.add_argument("--timeout", type=float, default=2.5)
    b.add_argument("--jobs", type=int, default=None,
                   help="pool width for the batched run")
    b.add_argument("--jobs-mode", choices=("thread", "process"),
                   default="thread",
                   help="fan answers out over threads (shared in-memory "
                        "cache) or processes (workers share --cache-dir)")
    b.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache (baseline timing)")
    b.add_argument("--cache-dir",
                   help="persistent artifact store directory; a second "
                        "bench run with the same directory compiles nothing")
    b.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
