"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Generate a benchmark database (tpch / imdb / flights) and save it as
    a CSV directory.
``queries``
    List the benchmark suite queries for a workload.
``explain``
    Run a query over a saved or generated database and print the
    top-contributing facts for an answer, with any method of the paper.
``bench``
    A quick smoke benchmark: the exact engine over one suite query,
    batched through :class:`~repro.engine.session.ExplainSession` with
    artifact caching (``--json`` for machine-readable results).
``serve`` / ``worker``
    The socket shard service: ``serve`` runs a coordinator, ``worker``
    a long-lived worker that answers its task requests (workers given
    the same ``--cache-dir`` share one persistent artifact store).  See
    README.md ("Running a shard service").
``cache``
    Operate on a persistent artifact store directory without running a
    benchmark: ``stats`` / ``ls`` (counts and bytes broken down by
    artifact kind), ``gc`` (age TTL via ``--max-age``, then LRU
    eviction down to ``--kind-budget`` and ``--max-bytes``), and
    ``warm`` (pre-compile a workload's lineage shapes into the store —
    or into a fleet's shared store through a coordinator's
    compile-ahead queue).

Method dispatch goes through the engine registry
(:func:`repro.engine.get_engine`): ``--method`` accepts any registered
engine name and new backends show up here automatically.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from .compiler import CompilationBudget
from .core import to_plan
from .core.attribution import attribute
from .core.numerics import HAS_NUMPY, available_kernels
from .db import lineage
from .engine import (
    ArtifactCache,
    Coordinator,
    EngineOptions,
    ExplainSession,
    PersistentArtifactStore,
    available_engines,
    run_worker,
)
from .engine.service.protocol import parse_address
from .db.database import Database
from .db.io import load_database, save_database
from .workloads import (
    IMDB_ALL_QUERIES,
    TPCH_QUERIES,
    ImdbConfig,
    TpchConfig,
    generate_imdb,
    generate_tpch,
    imdb_query,
    tpch_query,
)
from .workloads.flights import flights_database, flights_query


def _build_db(args: argparse.Namespace) -> Database:
    if getattr(args, "data", None):
        return load_database(args.data)
    workload = args.workload
    if workload == "tpch":
        return generate_tpch(TpchConfig(scale_factor=args.scale, seed=args.seed))
    if workload == "imdb":
        return generate_imdb(ImdbConfig(seed=args.seed))
    if workload == "flights":
        return flights_database()
    raise SystemExit(f"unknown workload {workload!r}")


def _resolve_query(args: argparse.Namespace, db: Database):
    if args.sql:
        return args.sql
    if args.query:
        if args.workload == "tpch":
            return tpch_query(args.query).sql
        if args.workload == "imdb":
            return imdb_query(args.query).sql
        raise SystemExit("--query needs --workload tpch or imdb")
    if args.workload == "flights":
        return flights_query()
    raise SystemExit("pass --sql or --query")


def cmd_generate(args: argparse.Namespace) -> int:
    db = _build_db(args)
    save_database(db, args.out)
    print(f"wrote {db} to {args.out}")
    return 0


def cmd_queries(args: argparse.Namespace) -> int:
    suite = TPCH_QUERIES if args.workload == "tpch" else IMDB_ALL_QUERIES
    for spec in suite:
        description = spec.description.split(".")[0]
        print(f"{spec.name:6s} {description}")
    return 0


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, rejected at parse time (a clean
    two-line usage error instead of a deep stack trace)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _byte_size(text: str) -> int:
    """argparse type: a positive byte count, with optional k/m/g suffix
    (binary units: ``64m`` = 64 MiB)."""
    raw = text.strip().lower()
    scale = 1
    for suffix, factor in (("k", 1 << 10), ("m", 1 << 20), ("g", 1 << 30)):
        if raw.endswith(suffix):
            raw, scale = raw[: -len(suffix)], factor
            break
    try:
        value = int(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a byte size (examples: 1048576, 512k, 64m, 2g)"
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
    return value


def _kind_budget(text: str) -> tuple[str, int]:
    """argparse type: ``kind=bytes`` (e.g. ``comp=64m``), one per-kind
    byte budget for ``cache gc``."""
    kind, sep, raw = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not kind=bytes (example: comp=64m)"
        )
    from .engine.store import PersistentArtifactStore

    kind = kind.strip()
    if kind not in PersistentArtifactStore.kinds():
        raise argparse.ArgumentTypeError(
            f"unknown artifact kind {kind!r}; choose from "
            f"{PersistentArtifactStore.kinds()}"
        )
    return kind, _byte_size(raw)


def _address(text: str) -> tuple[str, int]:
    """argparse type: ``host:port``."""
    try:
        return parse_address(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _numeric_backend(args: argparse.Namespace) -> str | None:
    """The requested numeric kernel, warning once when an explicit
    ``numpy`` / ``int64`` / ``torch`` request will fall back (the
    library is not installed)."""
    backend = getattr(args, "numeric_backend", None)
    if backend in ("numpy", "int64", "torch") and not HAS_NUMPY:
        print(f"warning: NumPy is not installed; "
              f"--numeric-backend {backend} falls back to the reference "
              f"kernel", file=sys.stderr)
    elif backend == "torch":
        from .core.numerics import HAS_TORCH

        if not HAS_TORCH:
            print("warning: torch is not installed; --numeric-backend "
                  "torch falls back to the int64 machine-width kernel",
                  file=sys.stderr)
    return backend


def _build_store(args: argparse.Namespace) -> PersistentArtifactStore | None:
    if not getattr(args, "cache_dir", None):
        return None
    return PersistentArtifactStore(
        args.cache_dir, max_bytes=getattr(args, "max_store_bytes", None)
    )


def _build_cache(args: argparse.Namespace) -> ArtifactCache | None:
    """The artifact cache implied by ``--cache-dir`` (None = engine
    default): a two-tier cache whose disk store persists canonical
    compiled artifacts across invocations and processes, bounded by
    ``--max-store-bytes`` when given."""
    store = _build_store(args)
    if store is None:
        return None
    return ArtifactCache(store=store)


def cmd_explain(args: argparse.Namespace) -> int:
    if args.max_store_bytes is not None and not args.cache_dir:
        raise SystemExit("--max-store-bytes needs --cache-dir")
    db = _build_db(args)
    query = _resolve_query(args, db)
    answer = tuple(args.answer) if args.answer else None
    if answer is not None:
        # try to coerce numeric components so they match stored values
        answer = tuple(_coerce(part) for part in answer)
    try:
        result = attribute(
            db, query,
            answer=answer,
            method=args.method,
            timeout=args.timeout,
            samples_per_fact=args.samples,
            seed=args.seed,
            cache=_build_cache(args),
            numeric_backend=_numeric_backend(args),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        available = lineage(to_plan(query, db), db).tuples()
        preview = ", ".join(str(t) for t in available[:8])
        print(f"available answers ({len(available)}): {preview} ...",
              file=sys.stderr)
        return 2
    kind = "exact Shapley values" if result.exact else f"{result.method} scores"
    print(f"answer {result.answer}: {kind} "
          f"({len(result.values)} facts, {result.seconds:.3f}s)")
    for fact, value in result.top(args.top):
        print(f"  {float(value):+.6f}  {fact}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.no_cache and args.cache_dir:
        raise SystemExit("--no-cache and --cache-dir are mutually exclusive")
    if args.max_store_bytes is not None and not args.cache_dir:
        raise SystemExit("--max-store-bytes needs --cache-dir")
    if args.jobs_mode == "socket" and args.coordinator is None:
        raise SystemExit("--jobs-mode socket needs --coordinator host:port")
    if args.jobs_mode != "socket" and (
        args.coordinator is not None or args.min_workers is not None
        or args.degrade is not None or args.op_timeout is not None
    ):
        raise SystemExit(
            "--coordinator/--min-workers/--degrade/--op-timeout "
            "only apply to --jobs-mode socket"
        )
    db = _build_db(args)
    query = _resolve_query(args, db)
    store = _build_store(args)
    if args.no_cache:
        cache = ArtifactCache(max_entries=0)
    else:
        cache = ArtifactCache(store=store)
    with ExplainSession(
        db,
        method="exact",
        options=EngineOptions(
            budget=CompilationBudget(max_seconds=args.timeout), timeout=None,
            numeric_backend=_numeric_backend(args),
            compile_jobs=args.compile_jobs,
            fastpath_budget_bytes=args.fastpath_budget,
            batch_execution=not args.no_batch,
            pipeline_execution=not args.no_pipeline,
            pipeline_cost_scale=args.pipeline_cost_scale,
        ),
        cache=cache,
        max_workers=args.jobs,
        executor=args.jobs_mode,
        coordinator=args.coordinator,
        min_workers=args.min_workers,
        op_timeout=(args.op_timeout if args.op_timeout is not None else 30.0),
        degrade=args.degrade,
        # --op-timeout also bounds the dial-retry budget, so a bench
        # against an unreachable coordinator degrades (or fails) within
        # the deadline the caller asked for instead of the 10s default.
        connect_retry_for=(min(10.0, args.op_timeout)
                           if args.op_timeout is not None else 10.0),
    ) as session:
        warmed = args.repeats > 1
        if warmed:
            # One explicit warm-up iteration: the timed repeats then
            # measure the steady state instead of first-call cache and
            # compilation effects.
            session.explain_many(query)
        laps = []
        for _ in range(args.repeats):
            start = time.perf_counter()
            results = session.explain_many(query)
            laps.append(time.perf_counter() - start)
        stats = session.stats
    total = len(results)
    ok = sum(r.ok for r in results.values())
    elapsed = statistics.median(laps)
    profile = _stage_profile(results) if args.profile else None
    if profile is not None:
        # The pipeline stage breakdown comes from the session/cache
        # stats rather than per-answer timings: overlap is a batch-level
        # property (socket batches report it under remote_*).
        profile["pipeline_overlap_seconds"] = round(
            _pipeline_stat(stats, "pipeline_overlap_seconds"), 6)
        profile["component_pass_compiles"] = int(
            _pipeline_stat(stats, "component_pass_compiles"))
        profile["stitch_jobs"] = int(_pipeline_stat(stats, "stitch_jobs"))
    if args.json:
        payload = {
            "workload": args.workload,
            "transport": args.jobs_mode,
            "jobs": args.jobs,
            "outputs": total,
            "ok": ok,
            "seconds": round(elapsed, 6),
            "seconds_min": round(min(laps), 6),
            "repeats": args.repeats,
            "warmup": warmed,
            "stats": stats,
            "store_artifacts": len(store) if store is not None else None,
            # Stable digest of every answer's exact Fractions: two runs
            # (pipelined vs barrier, different transports) agree iff
            # their digests match — what 'bench compare' checks.
            "fractions_digest": _fractions_digest(results),
        }
        if profile is not None:
            payload["profile"] = profile
        print(json.dumps(payload, sort_keys=True))
        return 0
    timing = (
        f"in {elapsed:.2f}s"
        if args.repeats == 1
        else f"in median {elapsed:.2f}s / min {min(laps):.2f}s "
             f"({args.repeats} warmed repeats)"
    )
    print(f"{total} outputs, {ok} exact successes "
          f"({ok / total:.1%}) {timing}")
    if profile is not None:
        print("profile: "
              f"compile {profile['compile_seconds']:.3f}s "
              f"(component-compile {profile['component_compile_seconds']:.3f}s, "
              f"stitch {profile['stitch_seconds']:.3f}s, "
              f"tape-lower {profile['tape_lower_seconds']:.3f}s), "
              f"kernel-exec {profile['kernel_exec_seconds']:.3f}s, "
              f"batch-exec {profile['batch_exec_seconds']:.3f}s "
              f"(float64 {profile['tier_float64_seconds']:.3f}s, "
              f"int64 {profile['tier_int64_seconds']:.3f}s, "
              f"crt {profile['tier_crt_seconds']:.3f}s) "
              "(summed over the last repeat's answers)")
        print("pipeline: "
              f"{profile['pipeline_overlap_seconds']:.3f}s "
              f"compile/execute overlap, "
              f"{profile['component_pass_compiles']} one-pass component "
              f"compiles, {profile['stitch_jobs']} stitch jobs")
    print(f"cache: {stats['compile_calls']} compilations, "
          f"{stats['tape_compilations']} tape compilations for "
          f"{stats['answers_explained']} answers "
          f"({stats['unique_shapes']} distinct lineage shapes, "
          f"{stats['ddnnf_hits']} d-DNNF hits, "
          f"{stats['tape_hits']} tape hits)")
    if stats["component_hits"] or stats["component_compilations"]:
        print(f"components: {stats['component_hits']} hits, "
              f"{stats['component_misses']} misses, "
              f"{stats['component_compilations']} compilations")
    if stats["fastpath_hits"] or stats["fastpath_fallbacks"]:
        print(f"fastpath: {stats['fastpath_hits']} machine-width passes, "
              f"{stats['fastpath_fallbacks']} exact fallbacks "
              f"({stats['fastpath_overflow_fallbacks']} overflow, "
              f"{stats['fastpath_ineligible_fallbacks']} ineligible, "
              f"{stats['fastpath_budget_fallbacks']} over budget)")
    if stats["batched_groups"]:
        print(f"batched: {stats['batched_answers']} answers in "
              f"{stats['batched_groups']} same-shape group passes")
    if (_pipeline_stat(stats, "component_pass_compiles")
            or _pipeline_stat(stats, "stitch_jobs")):
        print(f"pipeline: "
              f"{int(_pipeline_stat(stats, 'component_pass_compiles'))} "
              f"one-pass component compiles, "
              f"{int(_pipeline_stat(stats, 'stitch_jobs'))} stitch jobs, "
              f"{_pipeline_stat(stats, 'pipeline_overlap_seconds'):.3f}s "
              f"compile/execute overlap")
    if store is not None:
        print(f"store: {stats['store_hits']} hits, "
              f"{stats['store_misses']} misses, "
              f"{stats['store_writes']} writes, "
              f"{stats['store_corruptions']} corrupt "
              f"({len(store)} artifacts in {args.cache_dir})")
    if "remote_compile_calls" in stats:
        print(f"workers: {stats['remote_workers']} reporting, "
              f"{stats['remote_compile_calls']} compilations, "
              f"{stats['remote_store_hits']} store hits "
              f"(cumulative since worker start)")
    return 0


def _pipeline_stat(stats: dict, key: str) -> float:
    """One pipeline counter across both reporting paths: the local
    cache's value plus — for socket batches — the fleet aggregate
    under ``remote_*``."""
    return float(stats.get(key, 0) or 0) + float(
        stats.get(f"remote_{key}", 0) or 0
    )


def _fractions_digest(results) -> str:
    """A stable hex digest of every answer's exact values.

    Answers and facts are sorted by ``repr`` and values rendered as
    exact ``Fraction`` reprs, so the digest is independent of answer
    order, transport, scheduling, and pipelining — two bench runs agree
    byte-for-byte iff their digests match.  Failed answers contribute
    their status instead of values.
    """
    import hashlib

    entries = []
    for answer, result in results.items():
        if result.values is None:
            entries.append((repr(answer), result.status))
        else:
            entries.append((repr(answer), sorted(
                (repr(fact), repr(value))
                for fact, value in result.values.items()
            )))
    entries.sort()
    return hashlib.sha256(repr(entries).encode()).hexdigest()


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Compare two ``bench --json`` payloads: per-metric speedup table
    plus a Fractions-parity flag from their digests.  Exits 1 when both
    payloads carry digests and they differ."""
    try:
        a = json.loads(Path(args.baseline).read_text())
        b = json.loads(Path(args.candidate).read_text())
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    digest_a = a.get("fractions_digest")
    digest_b = b.get("fractions_digest")
    if digest_a is None or digest_b is None:
        parity = None
    else:
        parity = digest_a == digest_b
    rows = []
    for label, key in (("seconds (median)", "seconds"),
                       ("seconds (min)", "seconds_min")):
        left, right = a.get(key), b.get(key)
        if left is None or right is None:
            continue
        speedup = (left / right) if right else float("inf")
        rows.append((label, left, right, speedup))
    if args.json:
        payload = {
            "baseline": args.baseline,
            "candidate": args.candidate,
            "speedup": {label: round(speedup, 4)
                        for label, _, _, speedup in rows},
            "baseline_seconds": a.get("seconds"),
            "candidate_seconds": b.get("seconds"),
            "outputs_match": a.get("outputs") == b.get("outputs"),
            "identical_fractions": parity,
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        name_a = Path(args.baseline).name
        name_b = Path(args.candidate).name
        print(f"{'metric':<18} {name_a:>14} {name_b:>14} {'speedup':>9}")
        for label, left, right, speedup in rows:
            print(f"{label:<18} {left:>13.4f}s {right:>13.4f}s "
                  f"{speedup:>8.2f}x")
        if a.get("outputs") != b.get("outputs"):
            print(f"outputs differ: {a.get('outputs')} vs "
                  f"{b.get('outputs')}")
        if parity is None:
            print("fractions parity: unknown (digest missing; re-run "
                  "bench --json with this version)")
        elif parity:
            print("fractions parity: identical")
        else:
            print("fractions parity: MISMATCH")
    return 1 if parity is False else 0


def _stage_profile(results) -> dict[str, float]:
    """Per-stage timing breakdown of one batch, summed over the
    answers' exact outcomes.

    ``compile_seconds`` is everything before Algorithm 1 (Tseytin +
    knowledge compilation + tape stage); the cold-path sub-stages are
    broken out of it: ``component_compile_seconds`` (compiling
    memoizable CNF components from scratch), ``stitch_seconds``
    (importing memoized/fresh component d-DNNFs into the parent), and
    ``tape_lower_seconds`` (d-DNNF → gate-tape lowering).  All three
    sub-stages go to zero on a warm store, which is what the profile is
    for."""
    stages = {"compile_seconds": 0.0, "component_compile_seconds": 0.0,
              "stitch_seconds": 0.0, "tape_lower_seconds": 0.0,
              "kernel_exec_seconds": 0.0, "batch_exec_seconds": 0.0,
              "tier_float64_seconds": 0.0, "tier_int64_seconds": 0.0,
              "tier_crt_seconds": 0.0}
    for result in results.values():
        timings = getattr(result.detail, "timings", None) or {}
        stages["compile_seconds"] += (
            timings.get("tseytin", 0.0) + timings.get("compile", 0.0)
            + timings.get("tape", 0.0))
        stages["component_compile_seconds"] += timings.get(
            "component_compile", 0.0)
        stages["stitch_seconds"] += timings.get("stitch", 0.0)
        stages["tape_lower_seconds"] += timings.get("tape_lower", 0.0)
        stages["kernel_exec_seconds"] += timings.get("shapley", 0.0)
        # Batched answers additionally report their share of the group
        # pass and which machine-width tier the shape ran on.
        stages["batch_exec_seconds"] += timings.get("batch_exec", 0.0)
        for tier in ("float64", "int64", "crt"):
            stages[f"tier_{tier}_seconds"] += timings.get(
                f"tier_{tier}", 0.0)
    return {key: round(value, 6) for key, value in stages.items()}


def cmd_serve(args: argparse.Namespace) -> int:
    coordinator = Coordinator(
        args.host,
        args.port,
        heartbeat_interval=args.heartbeat_interval or None,
        heartbeat_miss_threshold=args.heartbeat_misses,
        op_timeout=args.op_timeout or None,
        max_queue=args.max_queue,
    )
    host, port = coordinator.address
    print(f"coordinator listening on {host}:{port} "
          f"(connect workers with: repro worker --connect {host}:{port})",
          flush=True)
    try:
        coordinator.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.shutdown()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    if args.max_store_bytes is not None and not args.cache_dir:
        raise SystemExit("--max-store-bytes needs --cache-dir")
    host, port = args.connect
    where = f" over store {args.cache_dir}" if args.cache_dir else ""
    print(f"worker connecting to {host}:{port}{where}", flush=True)
    try:
        executed = run_worker(
            (host, port),
            cache_dir=args.cache_dir,
            max_store_bytes=args.max_store_bytes,
            reconnect_for=args.reconnect_for,
        )
    except OSError as error:
        print(f"error: cannot reach coordinator at {host}:{port}: {error}",
              file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0
    print(f"worker done ({executed} tasks)", flush=True)
    return 0


def _open_store(directory: str) -> PersistentArtifactStore:
    if not Path(directory).expanduser().is_dir():
        raise SystemExit(f"error: {directory!r} is not a directory")
    return PersistentArtifactStore(directory)


def cmd_cache(args: argparse.Namespace) -> int:
    store = _open_store(args.dir)
    if args.cache_command == "stats":
        kinds = store.kind_summary()
        orphans = store.orphan_summary()
        payload = {
            "directory": str(store.directory),
            "artifacts": sum(k["files"] for k in kinds.values()),
            "total_bytes": sum(k["bytes"] for k in kinds.values()),
            "kinds": kinds,
            "orphans": orphans,
        }
        if args.json:
            print(json.dumps(payload, sort_keys=True))
        else:
            per_kind = ", ".join(
                f"{kinds[kind]['files']} {kind}" for kind in kinds
            )
            print(f"{payload['artifacts']} artifacts ({per_kind}), "
                  f"{payload['total_bytes']} bytes in {payload['directory']}")
            for kind, summary in kinds.items():
                print(f"  {kind:5s} {summary['files']:>6d} files "
                      f"{summary['bytes']:>12d} bytes")
            if orphans["files"]:
                print(f"  {orphans['files']} orphaned temp file(s), "
                      f"{orphans['bytes']} bytes (interrupted writes; "
                      f"'cache gc' sweeps them)")
        return 0
    if args.cache_command == "ls":
        entries = sorted(
            store.entries(), key=lambda e: e.mtime_ns, reverse=True
        )
        if args.kind is not None:
            entries = [e for e in entries if e.kind == args.kind]
        if args.limit is not None:
            entries = entries[: args.limit]
        for entry in entries:  # most recently used first
            when = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(entry.mtime_ns / 1e9)
            )
            print(f"{entry.digest[:16]}  {entry.kind:5s} "
                  f"{entry.size:>10d}  {when}")
        return 0
    # gc
    kind_budgets = dict(args.kind_budget) if args.kind_budget else None
    if (args.max_bytes is None and kind_budgets is None
            and args.max_age is None):
        raise SystemExit(
            "error: cache gc needs at least one of --max-bytes, "
            "--kind-budget, --max-age"
        )
    report = store.gc(
        max_bytes=args.max_bytes,
        kind_budgets=kind_budgets,
        max_age_seconds=args.max_age,
    )
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True))
    else:
        print(f"evicted {report.evicted} artifacts "
              f"({report.reclaimed_bytes} bytes reclaimed); "
              f"{report.remaining_files} artifacts / "
              f"{report.remaining_bytes} bytes remain")
        if report.orphans_removed:
            print(f"swept {report.orphans_removed} orphaned temp file(s) "
                  f"({report.orphan_bytes_reclaimed} bytes)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Statically audit a persistent artifact store (read-only)."""
    from .analysis.verify import DETERMINISM_LIMIT, verify_store

    store = _open_store(args.dir)
    limit = (
        args.determinism_limit
        if args.determinism_limit is not None
        else DETERMINISM_LIMIT
    )
    report = verify_store(store.directory, determinism_limit=limit)
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True))
    else:
        for kind, summary in report.kinds.items():
            print(f"  {kind:5s} {summary['files']:>6d} files   "
                  f"{summary['ok']:>6d} ok   "
                  f"{summary['violations']:>6d} with violations")
        for violation in report.violations:
            print(f"  {violation.file}: [{violation.check}] "
                  f"{violation.detail}")
        notes = []
        if report.determinism_assumed:
            notes.append(
                f"{report.determinism_assumed} OR gate(s) above the "
                f"determinism enumeration limit (unproven, not violations)"
            )
        if report.skipped:
            notes.append(f"{report.skipped} v1 artifact(s) without stored "
                         f"analysis to audit")
        if report.orphans:
            notes.append(f"{report.orphans} orphaned temp file(s), "
                         f"{report.orphan_bytes} bytes")
        for note in notes:
            print(f"  note: {note}")
        verdict = "OK" if report.ok else "FAILED"
        print(f"{verdict}: {report.files} artifact file(s), "
              f"{len(report.violations)} violation(s)")
    return 0 if report.ok else 1


def cmd_cache_warm(args: argparse.Namespace) -> int:
    """Pre-warm a workload: compile its distinct lineage shapes into a
    store (locally) or a fleet's shared store (via a coordinator's
    compile-ahead queue) before any client asks for them."""
    if args.dir is None and args.coordinator is None:
        raise SystemExit(
            "error: cache warm needs a store directory (local warming) "
            "or --coordinator (fleet warming)"
        )
    db = _build_db(args)
    query = _resolve_query(args, db)
    cache = ArtifactCache()
    if args.dir is not None:
        # Warming may target a directory that does not exist yet — the
        # store creates it (unlike stats/ls/gc, which inspect).
        cache = ArtifactCache(store=PersistentArtifactStore(args.dir))
    executor = "socket" if args.coordinator is not None else "thread"
    with ExplainSession(
        db,
        method="exact",
        options=EngineOptions(
            budget=CompilationBudget(max_seconds=args.timeout), timeout=None,
            compile_jobs=args.compile_jobs,
        ),
        cache=cache,
        executor=executor,
        coordinator=args.coordinator,
    ) as session:
        status = session.warm_ahead(query, wait=not args.no_wait)
        stats = session.stats
    payload = {**status, "transport": executor}
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        where = (
            f"coordinator {args.coordinator[0]}:{args.coordinator[1]}"
            if args.coordinator is not None else args.dir
        )
        print(f"warmed {status['completed']}/{status['shapes']} shapes "
              f"({status['failed']} failed, {status['pending']} pending) "
              f"via {where}")
        if status.get("component_tasks"):
            print(f"one-pass component phase: "
                  f"{status['component_tasks']} distinct components "
                  f"compiled ahead of the shape representatives")
        if executor == "thread" and (
            stats["component_hits"] or stats["component_compilations"]
        ):
            print(f"components: {stats['component_hits']} hits, "
                  f"{stats['component_compilations']} compilations")
    return 0 if status["failed"] == 0 else 1


def _coerce(text: str):
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shapley values of database facts in query answering",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", choices=("tpch", "imdb", "flights"),
                       default="flights")
        p.add_argument("--data", help="CSV directory written by 'generate'")
        p.add_argument("--scale", type=float, default=0.0005,
                       help="TPC-H scale factor")
        p.add_argument("--seed", type=int, default=7)

    g = sub.add_parser("generate", help="generate and save a database")
    common(g)
    g.add_argument("--out", required=True, help="output CSV directory")
    g.set_defaults(func=cmd_generate)

    q = sub.add_parser("queries", help="list suite queries")
    q.add_argument("--workload", choices=("tpch", "imdb"), default="tpch")
    q.set_defaults(func=cmd_queries)

    e = sub.add_parser("explain", help="attribute a query answer to facts")
    common(e)
    e.add_argument("--sql", help="SQL text to run")
    e.add_argument("--query", help="suite query name (e.g. Q3, 8d)")
    e.add_argument("--answer", nargs="*", help="the answer tuple to explain")
    e.add_argument("--method", choices=available_engines(), default="hybrid")
    e.add_argument("--timeout", type=float, default=2.5)
    e.add_argument("--samples", type=int, default=20,
                   help="samples per fact for the sampling methods")
    e.add_argument("--top", type=int, default=10)
    e.add_argument("--cache-dir",
                   help="persistent artifact store directory (compiled "
                        "artifacts are reused across invocations)")
    e.add_argument("--max-store-bytes", type=_byte_size, default=None,
                   help="byte budget of --cache-dir (suffixes k/m/g); "
                        "writes past it evict LRU artifacts")
    e.add_argument("--numeric-backend",
                   choices=(*available_kernels(), "auto"), default=None,
                   help="numeric kernel of the exact counting passes "
                        "(default: the big-int reference; 'int64' is the "
                        "machine-width fast path, 'auto' the ladder "
                        "int64>numpy>python; NumPy-backed kernels fall "
                        "back to the reference when NumPy is missing)")
    e.set_defaults(func=cmd_explain)

    b = sub.add_parser("bench", help="quick exact-pipeline smoke benchmark")
    common(b)
    b.add_argument("--sql")
    b.add_argument("--query")
    b.add_argument("--timeout", type=float, default=2.5)
    b.add_argument("--jobs", type=_positive_int, default=None,
                   help="pool width for the batched run (>= 1)")
    b.add_argument("--compile-jobs", type=_positive_int, default=None,
                   help="threads compiling independent CNF components "
                        "of one shape concurrently (results are "
                        "byte-identical to the serial compile)")
    b.add_argument("--jobs-mode", choices=("thread", "process", "socket"),
                   default="thread",
                   help="fan answers out over threads (shared in-memory "
                        "cache), processes (workers share --cache-dir), or "
                        "a socket coordinator's workers (--coordinator)")
    b.add_argument("--coordinator", type=_address, default=None,
                   metavar="HOST:PORT",
                   help="coordinator address for --jobs-mode socket "
                        "(started with 'repro serve')")
    b.add_argument("--degrade", choices=("local",), default=None,
                   metavar="POLICY",
                   help="with --jobs-mode socket: fall back to in-process "
                        "execution (byte-identical results) when the "
                        "coordinator is unreachable, instead of failing; "
                        "counted under degraded_batches")
    b.add_argument("--op-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="with --jobs-mode socket: per-leg deadline on "
                        "coordinator roundtrips (default 30)")
    b.add_argument("--min-workers", type=_positive_int, default=None,
                   help="socket mode: wait until this many workers joined")
    b.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache (baseline timing)")
    b.add_argument("--cache-dir",
                   help="persistent artifact store directory; a second "
                        "bench run with the same directory compiles nothing")
    b.add_argument("--max-store-bytes", type=_byte_size, default=None,
                   help="byte budget of --cache-dir (suffixes k/m/g); "
                        "writes past it evict LRU artifacts")
    b.add_argument("--numeric-backend",
                   choices=(*available_kernels(), "auto"), default=None,
                   help="numeric kernel of the exact counting passes "
                        "(default: the big-int reference; 'int64' is the "
                        "machine-width fast path, 'auto' the ladder "
                        "int64>numpy>python; NumPy-backed kernels fall "
                        "back to the reference when NumPy is missing)")
    b.add_argument("--fastpath-budget", type=_byte_size, default=None,
                   metavar="BYTES",
                   help="byte budget of the machine-width fast path's "
                        "value buffers (suffixes k/m/g; default 64m); "
                        "shapes over budget fall back to the exact pass "
                        "and count as fastpath_budget_fallbacks")
    b.add_argument("--no-batch", action="store_true",
                   help="disable batched same-shape group execution "
                        "(per-answer passes only; results are identical "
                        "either way)")
    b.add_argument("--no-pipeline", action="store_true",
                   help="disable pipelined cold-batch execution (run the "
                        "classic warm-wave compile barrier instead; "
                        "results are identical either way — the A/B "
                        "switch for 'bench compare')")
    b.add_argument("--pipeline-cost-scale", type=float, default=None,
                   metavar="SECONDS_PER_UNIT",
                   help="seed the compile cost model's seconds-per-unit "
                        "scale instead of calibrating from the first "
                        "batch's recorded compile timings (advanced; "
                        "affects compile ordering only, never results)")
    b.add_argument("--repeats", type=_positive_int, default=1,
                   help="timed repetitions of the batch; > 1 adds one "
                        "explicit warm-up iteration first and reports "
                        "median/min over the repeats (default: 1 cold run)")
    b.add_argument("--profile", action="store_true",
                   help="print a per-stage breakdown (compile / "
                        "tape-lower / kernel-exec / batch-exec with "
                        "per-tier float64/int64/crt splits) of the "
                        "last repeat")
    b.add_argument("--json", action="store_true",
                   help="emit one machine-readable JSON object instead of "
                        "the human summary")
    b.set_defaults(func=cmd_bench)
    bsub = b.add_subparsers(dest="bench_command", required=False,
                            metavar="compare")
    bc = bsub.add_parser(
        "compare",
        help="compare two 'bench --json' files: speedup table and "
             "Fractions-parity flag (exit 1 on digest mismatch)",
    )
    bc.add_argument("baseline", help="baseline bench --json file")
    bc.add_argument("candidate", help="candidate bench --json file")
    bc.add_argument("--json", action="store_true")
    bc.set_defaults(func=cmd_bench_compare)

    s = sub.add_parser(
        "serve",
        help="run a shard-service coordinator (pair with 'repro worker')",
    )
    s.add_argument("--host", default="127.0.0.1",
                   help="interface to bind (trusted networks only: the "
                        "wire protocol is pickle)")
    s.add_argument("--port", type=int, default=7341,
                   help="port to bind (0 picks a free port)")
    s.add_argument("--heartbeat-interval", type=float, default=5.0,
                   metavar="SECONDS",
                   help="probe idle workers this often (0 disables "
                        "heartbeats; default 5)")
    s.add_argument("--heartbeat-misses", type=_positive_int, default=3,
                   help="consecutive missed heartbeats before a worker "
                        "is discarded (default 3)")
    s.add_argument("--op-timeout", type=float, default=120.0,
                   metavar="SECONDS",
                   help="base per-leg deadline on worker roundtrips; "
                        "compile and group ops stretch it by the batch's "
                        "budget and size (0 disables; default 120)")
    s.add_argument("--max-queue", type=_positive_int, default=None,
                   help="admission bound: batches queued+running beyond "
                        "this are rejected with an explicit busy reply "
                        "(default: unbounded)")
    s.set_defaults(func=cmd_serve)

    w = sub.add_parser(
        "worker",
        help="run a long-lived explanation worker against a coordinator",
    )
    w.add_argument("--connect", type=_address, required=True,
                   metavar="HOST:PORT",
                   help="coordinator address (from 'repro serve')")
    w.add_argument("--cache-dir",
                   help="persistent artifact store directory; give every "
                        "worker the same one to compile each shape once "
                        "fleet-wide")
    w.add_argument("--max-store-bytes", type=_byte_size, default=None,
                   help="byte budget of --cache-dir (suffixes k/m/g); "
                        "this worker's writes evict LRU artifacts past it")
    w.add_argument("--reconnect-for", type=float, default=60.0,
                   metavar="SECONDS",
                   help="after losing the coordinator, redial with "
                        "jittered backoff for up to this long and "
                        "re-register (0 restores die-on-disconnect; "
                        "default 60)")
    w.set_defaults(func=cmd_worker)

    c = sub.add_parser(
        "cache", help="inspect or trim a persistent artifact store"
    )
    csub = c.add_subparsers(dest="cache_command", required=True)
    cs = csub.add_parser("stats", help="artifact counts and total bytes")
    cs.add_argument("dir", help="store directory")
    cs.add_argument("--json", action="store_true")
    cs.set_defaults(func=cmd_cache)
    cl = csub.add_parser("ls", help="list artifacts, most recently used first")
    cl.add_argument("dir", help="store directory")
    cl.add_argument("--limit", type=_positive_int, default=None,
                    help="show at most this many entries")
    cl.add_argument("--kind", choices=PersistentArtifactStore.kinds(),
                    default=None, help="only list this artifact kind")
    cl.set_defaults(func=cmd_cache)
    cg = csub.add_parser(
        "gc",
        help="evict artifacts: stale ones first (--max-age), then LRU "
             "down to per-kind (--kind-budget) and total (--max-bytes) "
             "byte budgets",
    )
    cg.add_argument("dir", help="store directory")
    cg.add_argument("--max-bytes", type=_byte_size, default=None,
                    help="total byte budget to trim to (suffixes k/m/g)")
    cg.add_argument("--kind-budget", type=_kind_budget, action="append",
                    default=None, metavar="KIND=BYTES",
                    help="per-kind byte budget (repeatable, e.g. "
                         "--kind-budget comp=64m --kind-budget tape=16m)")
    cg.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                    help="evict artifacts not used for this many seconds, "
                         "regardless of budgets")
    cg.add_argument("--json", action="store_true")
    cg.set_defaults(func=cmd_cache)
    cw = csub.add_parser(
        "warm",
        help="pre-compile a workload's lineage shapes into a store "
             "(or a fleet via a coordinator's compile-ahead queue)",
    )
    common(cw)
    cw.add_argument("dir", nargs="?", default=None,
                    help="store directory to warm (created if missing); "
                         "omit when warming a fleet with --coordinator")
    cw.add_argument("--sql", help="SQL text to warm")
    cw.add_argument("--query", help="suite query name (e.g. Q3, 8d)")
    cw.add_argument("--timeout", type=float, default=2.5,
                    help="compilation budget per shape (seconds)")
    cw.add_argument("--compile-jobs", type=_positive_int, default=None,
                    help="threads compiling independent CNF components "
                         "of one shape concurrently")
    cw.add_argument("--coordinator", type=_address, default=None,
                    metavar="HOST:PORT",
                    help="queue the shapes on this coordinator's "
                         "compile-ahead warmer instead of compiling "
                         "locally (workers build into their shared store)")
    cw.add_argument("--no-wait", action="store_true",
                    help="with --coordinator: return once queued instead "
                         "of waiting for the warmer to drain")
    cw.add_argument("--json", action="store_true")
    cw.set_defaults(func=cmd_cache_warm)

    v = sub.add_parser(
        "verify",
        help="statically audit a store's artifacts (d-DNNF invariants, "
             "tape levels/bounds, component canonical form, cross-"
             "artifact consistency); read-only, exits non-zero on any "
             "violation",
    )
    v.add_argument("dir", help="store directory to audit")
    v.add_argument("--determinism-limit", type=_positive_int, default=None,
                   help="exhaustively enumerate OR gates with up to this "
                        "many variables when literal structure alone "
                        "cannot prove determinism (default 20; larger "
                        "gates are reported as unproven, not violations)")
    v.add_argument("--json", action="store_true")
    v.set_defaults(func=cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
