"""A pure-Python TPC-H data generator (dbgen clone).

Generates all eight TPC-H tables with the benchmark's cardinality
ratios (25 nations / 5 regions, ~10 orders per customer, 1-7 lineitems
per order, 4 partsupp rows per part) at an arbitrary *scale factor*.
Scale factor 1.0 corresponds to the official 10k suppliers / 150k
customers / 1.5M orders; the reproduction benches run at micro scales
(e.g. 0.001) because Shapley computation consumes per-answer lineage,
whose shape — join fan-out and alternation — is preserved at any scale.

The generator is fully deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..db.database import Database
from ..db.schema import RelationSchema, Schema

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]
RETURN_FLAGS = ["R", "A", "N"]
ORDER_STATUS = ["O", "F", "P"]

_MONTH_DAYS = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]

# At micro scale factors a uniform nation draw would leave the
# nation-selective queries (Q5's ASIA, Q7's FRANCE/GERMANY, Q11's
# GERMANY) empty, so the generator skews toward a handful of nations —
# the lineage *shape* those queries exercise is unchanged.
_POPULAR_NATIONS = ["FRANCE", "GERMANY", "CHINA", "INDIA", "JAPAN", "UNITED STATES"]
_NATION_WEIGHTS = [
    8 if name in _POPULAR_NATIONS else 1 for name, _ in NATIONS
]


def _nation_key(rng: random.Random) -> int:
    return rng.choices(range(len(NATIONS)), weights=_NATION_WEIGHTS, k=1)[0]


def _random_date(rng: random.Random, first_year: int = 1992, last_year: int = 1998) -> str:
    """A uniform ISO date string; ISO strings compare correctly."""
    year = rng.randint(first_year, last_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, _MONTH_DAYS[month - 1])
    return f"{year:04d}-{month:02d}-{day:02d}"


def tpch_schema() -> Schema:
    """The TPC-H schema (columns used by the paper's query suite)."""
    return Schema.of(
        RelationSchema.of("region", ("r_regionkey", int), ("r_name", str)),
        RelationSchema.of(
            "nation", ("n_nationkey", int), ("n_name", str), ("n_regionkey", int)
        ),
        RelationSchema.of(
            "supplier",
            ("s_suppkey", int), ("s_name", str), ("s_nationkey", int),
            ("s_acctbal", float),
        ),
        RelationSchema.of(
            "part",
            ("p_partkey", int), ("p_name", str), ("p_brand", str),
            ("p_type", str), ("p_size", int), ("p_container", str),
            ("p_retailprice", float),
        ),
        RelationSchema.of(
            "partsupp",
            ("ps_partkey", int), ("ps_suppkey", int), ("ps_availqty", int),
            ("ps_supplycost", float),
        ),
        RelationSchema.of(
            "customer",
            ("c_custkey", int), ("c_name", str), ("c_nationkey", int),
            ("c_mktsegment", str), ("c_acctbal", float),
        ),
        RelationSchema.of(
            "orders",
            ("o_orderkey", int), ("o_custkey", int), ("o_orderstatus", str),
            ("o_totalprice", float), ("o_orderdate", str),
            ("o_orderpriority", str),
        ),
        RelationSchema.of(
            "lineitem",
            ("l_orderkey", int), ("l_partkey", int), ("l_suppkey", int),
            ("l_linenumber", int), ("l_quantity", int),
            ("l_extendedprice", float), ("l_discount", float),
            ("l_returnflag", str), ("l_shipdate", str), ("l_shipmode", str),
            ("l_shipinstruct", str),
        ),
    )


@dataclass(frozen=True)
class TpchConfig:
    """Sizing knobs for the generator.

    ``scale_factor = 1.0`` reproduces the official TPC-H cardinalities.
    ``endogenous_relations`` mirrors the experimental setup where the
    large "fact" tables are endogenous and the small dimension tables
    (nation, region) are exogenous.
    """

    scale_factor: float = 0.001
    seed: int = 7
    endogenous_relations: tuple[str, ...] = (
        "supplier", "part", "partsupp", "customer", "orders", "lineitem",
    )

    def cardinality(self, base: int, minimum: int = 2) -> int:
        return max(minimum, round(base * self.scale_factor))


def generate_tpch(config: TpchConfig | None = None) -> Database:
    """Generate a TPC-H database at the configured scale."""
    config = config or TpchConfig()
    rng = random.Random(config.seed)
    schema = tpch_schema()
    db = Database(schema)
    endo = set(config.endogenous_relations)

    def is_endo(relation: str) -> bool:
        return relation in endo

    for key, name in enumerate(REGIONS):
        db.add("region", key, name, endogenous=is_endo("region"))
    for key, (name, region) in enumerate(NATIONS):
        db.add("nation", key, name, region, endogenous=is_endo("nation"))

    n_supplier = config.cardinality(10_000)
    n_part = config.cardinality(200_000, minimum=5)
    n_customer = config.cardinality(150_000, minimum=5)
    n_orders = config.cardinality(1_500_000, minimum=10)

    for key in range(1, n_supplier + 1):
        db.add(
            "supplier",
            key,
            f"Supplier#{key:09d}",
            _nation_key(rng),
            round(rng.uniform(-999.99, 9999.99), 2),
            endogenous=is_endo("supplier"),
        )

    for key in range(1, n_part + 1):
        # Brand/container/size draws are skewed toward the combinations
        # Q16 and Q19 filter on (Brand#12/23/34, SM/MED/LG cases, small
        # sizes) so those queries stay non-empty at micro scale.
        first_digit = rng.choices("12345", weights=(4, 4, 4, 1, 1), k=1)[0]
        second_digit = rng.choices("12345", weights=(1, 4, 4, 4, 1), k=1)[0]
        brand = f"Brand#{first_digit}{second_digit}"
        ptype = " ".join(
            (
                rng.choice(TYPE_SYLLABLE_1),
                rng.choice(TYPE_SYLLABLE_2),
                rng.choice(TYPE_SYLLABLE_3),
            )
        )
        syllable_1 = rng.choices(CONTAINER_SYLLABLE_1, weights=(4, 4, 4, 1, 1), k=1)[0]
        syllable_2 = rng.choices(CONTAINER_SYLLABLE_2, weights=(4, 4, 1, 1, 4, 4, 1, 1), k=1)[0]
        container = f"{syllable_1} {syllable_2}"
        db.add(
            "part",
            key,
            f"part {key}",
            brand,
            ptype,
            rng.choices(range(1, 51), weights=[4] * 15 + [1] * 35, k=1)[0],
            container,
            round(900 + key / 10 % 1000 + 100 * (key % 10), 2),
            endogenous=is_endo("part"),
        )

    # Four suppliers per part, as in dbgen.
    for part_key in range(1, n_part + 1):
        for i in range(4):
            supp_key = (part_key + i * max(1, n_supplier // 4)) % n_supplier + 1
            db.add(
                "partsupp",
                part_key,
                supp_key,
                rng.randint(1, 9999),
                round(rng.uniform(1.0, 1000.0), 2),
                endogenous=is_endo("partsupp"),
            )

    for key in range(1, n_customer + 1):
        db.add(
            "customer",
            key,
            f"Customer#{key:09d}",
            _nation_key(rng),
            rng.choice(SEGMENTS),
            round(rng.uniform(-999.99, 9999.99), 2),
            endogenous=is_endo("customer"),
        )

    for key in range(1, n_orders + 1):
        db.add(
            "orders",
            key,
            rng.randint(1, n_customer),
            rng.choice(ORDER_STATUS),
            round(rng.uniform(1000.0, 400000.0), 2),
            _random_date(rng, 1992, 1998),
            rng.choice(PRIORITIES),
            endogenous=is_endo("orders"),
        )
        for line_number in range(1, rng.randint(1, 7) + 1):
            quantity = rng.randint(1, 50)
            db.add(
                "lineitem",
                key,
                rng.randint(1, n_part),
                rng.randint(1, n_supplier),
                line_number,
                quantity,
                round(quantity * rng.uniform(900.0, 2000.0), 2),
                round(rng.uniform(0.0, 0.1), 2),
                rng.choice(RETURN_FLAGS),
                _random_date(rng, 1992, 1998),
                rng.choices(SHIP_MODES, weights=(4, 4, 1, 1, 1, 1, 1), k=1)[0],
                rng.choices(SHIP_INSTRUCTIONS, weights=(5, 1, 1, 1), k=1)[0],
                endogenous=is_endo("lineitem"),
            )
    return db
