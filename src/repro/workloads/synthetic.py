"""Synthetic provenance generators for controlled experiments.

The paper's scaling figures vary properties of the provenance (number
of distinct facts, CNF clauses, d-DNNF size).  These generators produce
lineage-shaped circuits with controllable parameters, plus adversarial
CNFs used for failure injection in the budget/hybrid tests.
"""

from __future__ import annotations

import random
from typing import Hashable

from ..circuits.circuit import Circuit
from ..circuits.cnf import Cnf


def random_monotone_dnf(
    n_vars: int,
    n_terms: int,
    term_width: int,
    seed: int = 0,
) -> Circuit:
    """A random monotone DNF — the shape of SPJU lineage (each term is
    one derivation joining ``term_width`` facts)."""
    rng = random.Random(seed)
    circuit = Circuit()
    labels = [f"x{i}" for i in range(n_vars)]
    terms = []
    for _ in range(n_terms):
        width = min(term_width, n_vars)
        chosen = rng.sample(labels, width)
        terms.append(circuit.and_([circuit.var(v) for v in chosen]))
    circuit.output = circuit.or_(terms)
    return circuit


def random_monotone_cnf(
    n_vars: int,
    n_clauses: int,
    clause_width: int,
    seed: int = 0,
) -> Circuit:
    """A random monotone CNF circuit (AND of positive-literal ORs) —
    the shape of conjunctive-query lineage with unions pushed below the
    joins.  Seeded and deterministic; used by the numeric-kernel parity
    suite."""
    rng = random.Random(seed)
    circuit = Circuit()
    labels = [f"x{i}" for i in range(n_vars)]
    clauses = []
    for _ in range(n_clauses):
        width = min(clause_width, n_vars)
        chosen = rng.sample(labels, width)
        clauses.append(circuit.or_([circuit.var(v) for v in chosen]))
    circuit.output = circuit.and_(clauses)
    return circuit


def chained_dnf(n_links: int) -> Circuit:
    """The path-shaped lineage ``(x0 & x1) | (x1 & x2) | ...`` — compact
    circuits whose d-DNNFs stay linear (easy cases)."""
    circuit = Circuit()
    terms = []
    for i in range(n_links):
        terms.append(
            circuit.and_((circuit.var(f"x{i}"), circuit.var(f"x{i + 1}")))
        )
    circuit.output = circuit.or_(terms)
    return circuit


def bipartite_join_dnf(left: int, right: int) -> Circuit:
    """The complete-bipartite lineage ``OR_{i,j} (a_i & b_j)`` produced
    by a projected two-way join; its compiled form is tiny
    (``(OR a_i) & (OR b_j)`` after decomposition) — a best case."""
    circuit = Circuit()
    terms = []
    for i in range(left):
        for j in range(right):
            terms.append(
                circuit.and_((circuit.var(f"a{i}"), circuit.var(f"b{j}")))
            )
    circuit.output = circuit.or_(terms)
    return circuit


def intractable_cnf(n_vars: int = 60, seed: int = 3, ratio: float = 2.0) -> Cnf:
    """A random 3-CNF in the hard *counting* regime (ratio ~ 2).

    Near-threshold 3-CNFs are easy to count (few models, strong unit
    propagation); the hardness peak for #SAT/compilation sits at lower
    ratios, where the model count is astronomically large but the
    formula is far from monotone.  Compiling these blows up with high
    probability — the stand-in for the paper's out-of-memory failures
    when exercising budgets and the hybrid fallback.
    """
    rng = random.Random(seed)
    n_clauses = int(n_vars * ratio)
    cnf = Cnf(n_vars, labels={i: f"x{i}" for i in range(1, n_vars + 1)})
    for _ in range(n_clauses):
        chosen = rng.sample(range(1, n_vars + 1), 3)
        clause = tuple(v if rng.random() < 0.5 else -v for v in chosen)
        cnf.add_clause(clause)
    return cnf


def intractable_circuit(n_vars: int = 60, seed: int = 3) -> Circuit:
    """The :func:`intractable_cnf` formula as a circuit (AND of ORs)."""
    cnf = intractable_cnf(n_vars, seed)
    circuit = Circuit()
    clauses = []
    for clause in cnf.clauses:
        literals = [
            circuit.literal(cnf.labels[abs(lit)], lit > 0) for lit in clause
        ]
        clauses.append(circuit.or_(literals))
    circuit.output = circuit.and_(clauses)
    return circuit


def shared_block_circuits(
    n_circuits: int,
    n_blocks: int = 4,
    block_vars: int = 10,
    block_terms: int = 5,
    term_width: int = 3,
    pool_size: int | None = None,
    seed: int = 0,
) -> list[Circuit]:
    """A family of lineage circuits that pairwise differ as whole shapes
    but share large isomorphic sub-blocks.

    Models the fig7/IMDB situation the cross-shape component memo is
    built for: different answers' lineages are *not* isomorphic as whole
    circuits (so the d-DNNF/tape caches miss), yet they assemble the
    same join-union building blocks.  Each circuit is the AND of
    ``n_blocks`` blocks over disjoint fresh variables — a block is a
    monotone DNF (OR of ``block_terms`` ANDs of ``term_width`` vars
    drawn from the block's ``block_vars`` variables), so after Tseytin
    each block is one connected component.  Block *structures* come
    from a pool of ``pool_size`` random templates (default
    ``n_blocks + n_circuits - 1``) and circuit ``i`` uses templates
    ``i .. i+n_blocks-1``: consecutive circuits overlap in all but one
    block, while no two circuits use the same combination.

    Variable labels are unique per circuit and per block, so any
    cross-circuit component reuse is purely structural — exactly what
    the rename-invariant canonical signature must catch.
    """
    if pool_size is None:
        pool_size = n_blocks + n_circuits - 1
    rng = random.Random(seed)
    templates = []
    for _ in range(pool_size):
        terms = []
        for _ in range(block_terms):
            width = min(term_width, block_vars)
            terms.append(tuple(rng.sample(range(block_vars), width)))
        templates.append(tuple(terms))
    circuits = []
    for index in range(n_circuits):
        circuit = Circuit()
        blocks = []
        for offset in range(n_blocks):
            template = templates[(index + offset) % pool_size]
            prefix = f"c{index}_b{offset}"
            blocks.append(circuit.or_([
                circuit.and_([
                    circuit.var(f"{prefix}_v{v}") for v in term
                ])
                for term in template
            ]))
        circuit.output = circuit.and_(blocks)
        circuits.append(circuit)
    return circuits


def random_variable_labels(circuit: Circuit) -> list[Hashable]:
    """Sorted variable labels of a synthetic circuit (stable player
    order for the Shapley APIs)."""
    return sorted(circuit.reachable_vars(), key=repr)
