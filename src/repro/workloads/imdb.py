"""A synthetic IMDB generator for the JOB (Join Order Benchmark) schema.

The paper's IMDB experiments run JOB-style join queries (Leis et al.)
over the real 1.2 GB IMDB snapshot, which is not redistributable here.
This generator produces a faithful *synthetic* stand-in: the JOB schema
subset the queries touch, dimension tables seeded with the exact
constant values the queries filter on, and Zipf-skewed fan-outs for the
many-to-many relationship tables (cast, keywords, companies) — the
skew is what makes IMDB provenance large and occasionally hard, which
is the property the experiments exercise.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..db.database import Database
from ..db.schema import RelationSchema, Schema

INFO_TYPES = [
    "top 250 rank", "bottom 10 rank", "rating", "release dates",
    "mini biography", "trivia", "genres", "budget",
]

COMPANY_TYPES = ["production companies", "distributors", "special effects companies"]

KIND_TYPES = ["movie", "tv series", "video game", "episode"]

LINK_TYPES = ["features", "followed by", "follows", "remake of", "spin off"]

ROLE_TYPES = ["actor", "actress", "producer", "writer", "costume designer", "director"]

COUNTRY_CODES = ["[us]", "[gb]", "[de]", "[fr]", "[jp]", "[pl]", "[in]"]

KEYWORDS = [
    "superhero", "sequel", "character-name-in-title", "based-on-novel",
    "love", "revenge", "murder", "marvel-comics", "violence", "friendship",
    "dystopia", "time-travel", "robot", "magic", "war",
]

COMPANY_STEMS = [
    "Warner Bros", "Universal Film", "Paramount", "Columbia Film",
    "Metro-Goldwyn-Mayer", "Twentieth Century Fox Film", "Gaumont Film",
    "Studio Canal Film", "Polygram Film", "New Line Film",
]

NOTES = [
    "(presents)", "(co-production)", "(as Metro-Goldwyn-Mayer Pictures)",
    "(in association with)", "(uncredited)", "(voice)", "",
]


def imdb_schema() -> Schema:
    """The JOB schema subset used by the paper's 32 IMDB queries."""
    return Schema.of(
        RelationSchema.of(
            "title",
            ("t_id", int), ("t_title", str), ("t_kind_id", int),
            ("t_production_year", int),
        ),
        RelationSchema.of("kind_type", ("kt_id", int), ("kt_kind", str)),
        RelationSchema.of(
            "company_name",
            ("cn_id", int), ("cn_name", str), ("cn_country_code", str),
        ),
        RelationSchema.of("company_type", ("ct_id", int), ("ct_kind", str)),
        RelationSchema.of(
            "movie_companies",
            ("mc_movie_id", int), ("mc_company_id", int),
            ("mc_company_type_id", int), ("mc_note", str),
        ),
        RelationSchema.of("info_type", ("it_id", int), ("it_info", str)),
        RelationSchema.of(
            "movie_info",
            ("mi_movie_id", int), ("mi_info_type_id", int), ("mi_info", str),
        ),
        RelationSchema.of(
            "movie_info_idx",
            ("mii_movie_id", int), ("mii_info_type_id", int), ("mii_info", str),
        ),
        RelationSchema.of("keyword", ("k_id", int), ("k_keyword", str)),
        RelationSchema.of(
            "movie_keyword", ("mk_movie_id", int), ("mk_keyword_id", int)
        ),
        RelationSchema.of(
            "name", ("n_id", int), ("n_name", str), ("n_gender", str)
        ),
        RelationSchema.of(
            "cast_info",
            ("ci_person_id", int), ("ci_movie_id", int), ("ci_role_id", int),
            ("ci_note", str),
        ),
        RelationSchema.of("role_type", ("rt_id", int), ("rt_role", str)),
        RelationSchema.of("aka_name", ("an_person_id", int), ("an_name", str)),
        RelationSchema.of("link_type", ("lt_id", int), ("lt_link", str)),
        RelationSchema.of(
            "movie_link",
            ("ml_movie_id", int), ("ml_linked_movie_id", int),
            ("ml_link_type_id", int),
        ),
        RelationSchema.of(
            "person_info",
            ("pi_person_id", int), ("pi_info_type_id", int), ("pi_info", str),
        ),
    )


@dataclass(frozen=True)
class ImdbConfig:
    """Sizing knobs.  Defaults give a database whose per-answer lineage
    sizes span the easy-to-hard range of the paper's Figure 4."""

    movies: int = 220
    people: int = 300
    companies: int = 30
    seed: int = 11
    #: relationship/"fact" tables are endogenous, dimension tables
    #: exogenous — matching the spirit of the paper's setup.
    endogenous_relations: tuple[str, ...] = (
        "title", "movie_companies", "movie_info", "movie_info_idx",
        "movie_keyword", "cast_info", "aka_name", "movie_link",
        "person_info",
    )


def _zipf_choice(rng: random.Random, n: int) -> int:
    """A 1-based Zipf(1)-ish draw over ``1..n`` (popularity skew)."""
    # Inverse-CDF sampling on 1/k weights is overkill; rejection on a
    # harmonic-ish transform is cheap and good enough for skew.
    while True:
        value = int(n ** rng.random())
        if 1 <= value <= n:
            return value


def generate_imdb(config: ImdbConfig | None = None) -> Database:
    """Generate the synthetic IMDB database."""
    config = config or ImdbConfig()
    rng = random.Random(config.seed)
    db = Database(imdb_schema())
    endo = set(config.endogenous_relations)

    def is_endo(relation: str) -> bool:
        return relation in endo

    for i, info in enumerate(INFO_TYPES, start=1):
        db.add("info_type", i, info, endogenous=is_endo("info_type"))
    for i, kind in enumerate(COMPANY_TYPES, start=1):
        db.add("company_type", i, kind, endogenous=is_endo("company_type"))
    for i, kind in enumerate(KIND_TYPES, start=1):
        db.add("kind_type", i, kind, endogenous=is_endo("kind_type"))
    for i, link in enumerate(LINK_TYPES, start=1):
        db.add("link_type", i, link, endogenous=is_endo("link_type"))
    for i, role in enumerate(ROLE_TYPES, start=1):
        db.add("role_type", i, role, endogenous=is_endo("role_type"))
    for i, keyword in enumerate(KEYWORDS, start=1):
        db.add("keyword", i, keyword, endogenous=is_endo("keyword"))

    # Country codes are skewed toward the codes the queries filter on
    # ([us], [de]) so selective queries stay non-empty at small scale.
    country_weights = (8, 3, 4, 2, 1, 1, 1)
    for i in range(1, config.companies + 1):
        stem = COMPANY_STEMS[(i - 1) % len(COMPANY_STEMS)]
        db.add(
            "company_name",
            i,
            f"{stem} {i}",
            rng.choices(COUNTRY_CODES, weights=country_weights, k=1)[0],
            endogenous=is_endo("company_name"),
        )

    for i in range(1, config.movies + 1):
        db.add(
            "title",
            i,
            f"Movie {i}",
            rng.choice((1, 1, 1, 2, 4)),  # mostly movies
            rng.randint(1950, 2015),
            endogenous=is_endo("title"),
        )

    for i in range(1, config.people + 1):
        db.add(
            "name",
            i,
            f"Person {i}",
            rng.choice(("m", "f")),
            endogenous=is_endo("name"),
        )
        if rng.random() < 0.5:
            db.add(
                "aka_name", i, f"Alias {i}", endogenous=is_endo("aka_name")
            )
        if rng.random() < 0.4:
            db.add(
                "person_info",
                i,
                INFO_TYPES.index("mini biography") + 1,
                f"bio of person {i}",
                endogenous=is_endo("person_info"),
            )

    # Relationship tables with Zipf-skewed movie popularity.
    for _ in range(config.movies * 4):
        movie = _zipf_choice(rng, config.movies)
        person = _zipf_choice(rng, config.people)
        db.add(
            "cast_info",
            person,
            movie,
            rng.randrange(len(ROLE_TYPES)) + 1,
            rng.choice(NOTES),
            endogenous=is_endo("cast_info"),
        )

    for _ in range(config.movies * 3):
        movie = _zipf_choice(rng, config.movies)
        db.add(
            "movie_keyword",
            movie,
            rng.randrange(len(KEYWORDS)) + 1,
            endogenous=is_endo("movie_keyword"),
        )

    for _ in range(config.movies * 2):
        movie = _zipf_choice(rng, config.movies)
        db.add(
            "movie_companies",
            movie,
            rng.randint(1, config.companies),
            rng.randrange(len(COMPANY_TYPES)) + 1,
            rng.choice(NOTES),
            endogenous=is_endo("movie_companies"),
        )

    for movie in range(1, config.movies + 1):
        if rng.random() < 0.7:
            db.add(
                "movie_info",
                movie,
                INFO_TYPES.index("rating") + 1,
                f"{rng.randint(10, 99) / 10}",
                endogenous=is_endo("movie_info"),
            )
        if rng.random() < 0.5:
            db.add(
                "movie_info",
                movie,
                INFO_TYPES.index("release dates") + 1,
                f"{rng.randint(1950, 2015)}-01-01",
                endogenous=is_endo("movie_info"),
            )
        if rng.random() < 0.4:
            db.add(
                "movie_info_idx",
                movie,
                INFO_TYPES.index("top 250 rank") + 1,
                str(rng.randint(1, 250)),
                endogenous=is_endo("movie_info_idx"),
            )

    for _ in range(config.movies):
        source = _zipf_choice(rng, config.movies)
        target = _zipf_choice(rng, config.movies)
        if source != target:
            db.add(
                "movie_link",
                source,
                target,
                rng.randrange(len(LINK_TYPES)) + 1,
                endogenous=is_endo("movie_link"),
            )
    return db
