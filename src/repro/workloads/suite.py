"""Query-suite plumbing shared by the TPC-H and IMDB workloads.

A :class:`QuerySpec` pairs a named SQL query with its provenance-level
metadata; :func:`describe` computes the "#Joined tables" and "#Filter
conditions" columns of the paper's Table 1 from the compiled plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..db.algebra import Operator, count_filters, count_joins
from ..db.database import Database
from ..db.sql import plan_sql


@dataclass(frozen=True)
class QuerySpec:
    """A benchmark query: display name + SQL text + free-form notes."""

    name: str
    sql: str
    description: str = ""

    def plan(self, database: Database) -> Operator:
        return plan_sql(self.sql, database.schema)


@dataclass(frozen=True)
class QueryShape:
    """The structural columns of Table 1."""

    name: str
    joined_tables: int
    filter_conditions: int


def describe(spec: QuerySpec, database: Database) -> QueryShape:
    """Compute Table 1's structural columns for one query."""
    plan = spec.plan(database)
    return QueryShape(
        name=spec.name,
        joined_tables=count_joins(plan) + 1,
        filter_conditions=count_filters(plan),
    )
