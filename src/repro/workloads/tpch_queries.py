"""SPJ adaptations of the TPC-H queries used in the paper's Table 1.

Following Section 6, the queries are based on the official TPC-H suite
with nested sub-queries and aggregations removed (ProvSQL — and our
engine — computes Boolean provenance for SPJU queries only) and a final
projection kept so each output tuple has non-trivial provenance.  The
eight queries below mirror the eight TPC-H rows of Table 1
(Q3, Q5, Q7, Q10, Q11, Q16, Q18, Q19).
"""

from __future__ import annotations

from .suite import QuerySpec

TPCH_QUERIES: list[QuerySpec] = [
    QuerySpec(
        "Q3",
        """
        SELECT o.o_orderkey
        FROM customer c, orders o, lineitem l
        WHERE c.c_mktsegment = 'BUILDING'
          AND c.c_custkey = o.o_custkey
          AND l.l_orderkey = o.o_orderkey
          AND o.o_orderdate < '1995-03-15'
          AND l.l_shipdate > '1995-03-15'
        """,
        "Shipping priority: orders from building-segment customers "
        "not yet shipped at the cutoff date.",
    ),
    QuerySpec(
        "Q5",
        """
        SELECT n.n_name
        FROM customer c, orders o, lineitem l, supplier s, nation n, region r
        WHERE c.c_custkey = o.o_custkey
          AND l.l_orderkey = o.o_orderkey
          AND l.l_suppkey = s.s_suppkey
          AND c.c_nationkey = s.s_nationkey
          AND s.s_nationkey = n.n_nationkey
          AND n.n_regionkey = r.r_regionkey
          AND r.r_name = 'ASIA'
          AND o.o_orderdate >= '1994-01-01'
          AND o.o_orderdate < '1995-01-01'
        """,
        "Local supplier volume: nations with local supplier-customer "
        "order flows inside ASIA.  Projecting onto the nation makes the "
        "per-answer provenance very large (a hard case in the paper).",
    ),
    QuerySpec(
        "Q7",
        """
        SELECT n1.n_name
        FROM supplier s, lineitem l, orders o, customer c,
             nation n1, nation n2
        WHERE s.s_suppkey = l.l_suppkey
          AND o.o_orderkey = l.l_orderkey
          AND c.c_custkey = o.o_custkey
          AND s.s_nationkey = n1.n_nationkey
          AND c.c_nationkey = n2.n_nationkey
          AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
            OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
          AND l.l_shipdate >= '1995-01-01'
          AND l.l_shipdate <= '1996-12-31'
        """,
        "Volume shipping between FRANCE and GERMANY; self-join on "
        "nation (another hard case in the paper).",
    ),
    QuerySpec(
        "Q10",
        """
        SELECT c.c_custkey
        FROM customer c, orders o, lineitem l, nation n
        WHERE c.c_custkey = o.o_custkey
          AND l.l_orderkey = o.o_orderkey
          AND o.o_orderdate >= '1993-10-01'
          AND o.o_orderdate < '1994-01-01'
          AND l.l_returnflag = 'R'
          AND c.c_nationkey = n.n_nationkey
        """,
        "Returned-item reporting: customers who returned items.",
    ),
    QuerySpec(
        "Q11",
        """
        SELECT ps.ps_partkey
        FROM partsupp ps, supplier s, nation n
        WHERE ps.ps_suppkey = s.s_suppkey
          AND s.s_nationkey = n.n_nationkey
          AND n.n_name = 'GERMANY'
          AND ps.ps_availqty > 100
        """,
        "Important stock identification restricted to GERMANY.",
    ),
    QuerySpec(
        "Q16",
        """
        SELECT p.p_brand
        FROM partsupp ps, part p, supplier s
        WHERE p.p_partkey = ps.ps_partkey
          AND ps.ps_suppkey = s.s_suppkey
          AND p.p_brand <> 'Brand#45'
          AND p.p_type NOT LIKE 'MEDIUM POLISHED%'
          AND p.p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
        """,
        "Parts/supplier relationship by brand; projecting onto the "
        "brand aggregates many parts into each answer's provenance.",
    ),
    QuerySpec(
        "Q18",
        """
        SELECT c.c_custkey
        FROM customer c, orders o, lineitem l
        WHERE c.c_custkey = o.o_custkey
          AND o.o_orderkey = l.l_orderkey
          AND l.l_quantity > 45
        """,
        "Large-volume customers (aggregation replaced by a quantity "
        "threshold, as in the paper's de-nesting).",
    ),
    QuerySpec(
        "Q19",
        """
        SELECT p.p_brand
        FROM lineitem l, part p
        WHERE p.p_partkey = l.l_partkey
          AND ((p.p_brand = 'Brand#12'
                AND p.p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
                AND l.l_quantity >= 1 AND l.l_quantity <= 11
                AND p.p_size >= 1 AND p.p_size <= 5
                AND l.l_shipmode IN ('AIR', 'REG AIR')
                AND l.l_shipinstruct = 'DELIVER IN PERSON')
            OR (p.p_brand = 'Brand#23'
                AND p.p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
                AND l.l_quantity >= 10 AND l.l_quantity <= 20
                AND p.p_size >= 1 AND p.p_size <= 10
                AND l.l_shipmode IN ('AIR', 'REG AIR')
                AND l.l_shipinstruct = 'DELIVER IN PERSON')
            OR (p.p_brand = 'Brand#34'
                AND p.p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
                AND l.l_quantity >= 20 AND l.l_quantity <= 30
                AND p.p_size >= 1 AND p.p_size <= 15
                AND l.l_shipmode IN ('AIR', 'REG AIR')
                AND l.l_shipinstruct = 'DELIVER IN PERSON'))
        """,
        "Discounted revenue: two tables but 21 filter conditions; the "
        "paper's slowest Algorithm 1 case (a single wide answer).",
    ),
]


def tpch_query(name: str) -> QuerySpec:
    """Look up one of the eight suite queries by name (e.g. ``"Q3"``)."""
    for spec in TPCH_QUERIES:
        if spec.name == name:
            return spec
    raise KeyError(f"no TPC-H query named {name!r}")
