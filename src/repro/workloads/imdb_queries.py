"""JOB-style IMDB queries, after the paper's modifications.

The paper bases its 32 IMDB queries on the join queries of the Join
Order Benchmark (Leis et al.) and adds a final projection over one of
the join attributes "to make provenance more complex and thus more
challenging".  The nine queries below correspond to the nine IMDB rows
of Table 1 (1a, 6b, 7c, 8d, 11a, 11d, 13c, 15d, 16a); table counts
match the paper's "#Joined tables" column.
"""

from __future__ import annotations

from .suite import QuerySpec

IMDB_QUERIES: list[QuerySpec] = [
    QuerySpec(
        "1a",
        """
        SELECT t.t_id
        FROM company_type ct, info_type it, movie_companies mc,
             movie_info_idx mii, title t
        WHERE ct.ct_kind = 'production companies'
          AND it.it_info = 'top 250 rank'
          AND mc.mc_note NOT LIKE '%(as Metro-Goldwyn-Mayer Pictures)%'
          AND mc.mc_movie_id = t.t_id
          AND mii.mii_movie_id = t.t_id
          AND mc.mc_company_type_id = ct.ct_id
          AND mii.mii_info_type_id = it.it_id
        """,
        "Top-250 movies with a production company (JOB 1a).",
    ),
    QuerySpec(
        "6b",
        """
        SELECT n.n_id
        FROM cast_info ci, keyword k, movie_keyword mk, name n, title t
        WHERE k.k_keyword IN ('superhero', 'sequel')
          AND mk.mk_keyword_id = k.k_id
          AND mk.mk_movie_id = t.t_id
          AND ci.ci_movie_id = t.t_id
          AND ci.ci_person_id = n.n_id
          AND t.t_production_year > 2000
        """,
        "People cast in recent superhero/sequel movies (JOB 6b).",
    ),
    QuerySpec(
        "7c",
        """
        SELECT n.n_id
        FROM aka_name an, cast_info ci, info_type it, link_type lt,
             movie_link ml, name n, person_info pi, title t
        WHERE an.an_person_id = n.n_id
          AND n.n_id = pi.pi_person_id
          AND ci.ci_person_id = n.n_id
          AND t.t_id = ci.ci_movie_id
          AND ml.ml_linked_movie_id = t.t_id
          AND lt.lt_id = ml.ml_link_type_id
          AND it.it_id = pi.pi_info_type_id
          AND it.it_info = 'mini biography'
          AND lt.lt_link IN ('features', 'followed by')
          AND n.n_gender = 'm'
          AND t.t_production_year >= 1980
        """,
        "Biographied men cast in linked movies (JOB 7c).",
    ),
    QuerySpec(
        "8d",
        """
        SELECT n.n_id
        FROM aka_name an, cast_info ci, company_name cn,
             movie_companies mc, name n, role_type rt, title t
        WHERE cn.cn_country_code = '[us]'
          AND rt.rt_role = 'actress'
          AND n.n_gender = 'f'
          AND an.an_person_id = n.n_id
          AND n.n_id = ci.ci_person_id
          AND ci.ci_movie_id = t.t_id
          AND t.t_id = mc.mc_movie_id
          AND mc.mc_company_id = cn.cn_id
          AND ci.ci_role_id = rt.rt_id
        """,
        "US-produced actresses with alias names (JOB 8d; the paper's "
        "largest output set).",
    ),
    QuerySpec(
        "11a",
        """
        SELECT t.t_id
        FROM company_name cn, company_type ct, keyword k, link_type lt,
             movie_companies mc, movie_keyword mk, movie_link ml, title t
        WHERE cn.cn_country_code <> '[pl]'
          AND (cn.cn_name LIKE '%Film%' OR cn.cn_name LIKE '%Warner%')
          AND ct.ct_kind = 'production companies'
          AND k.k_keyword = 'sequel'
          AND lt.lt_link LIKE '%follow%'
          AND t.t_production_year >= 1950
          AND t.t_production_year <= 2010
          AND ml.ml_movie_id = t.t_id
          AND mk.mk_movie_id = t.t_id
          AND mc.mc_movie_id = t.t_id
          AND lt.lt_id = ml.ml_link_type_id
          AND mk.mk_keyword_id = k.k_id
          AND mc.mc_company_id = cn.cn_id
          AND mc.mc_company_type_id = ct.ct_id
        """,
        "Sequels with follow-links from non-Polish film companies (JOB 11a).",
    ),
    QuerySpec(
        "11d",
        """
        SELECT t.t_id
        FROM company_name cn, company_type ct, keyword k, link_type lt,
             movie_companies mc, movie_keyword mk, movie_link ml, title t
        WHERE ct.ct_kind = 'production companies'
          AND k.k_keyword = 'sequel'
          AND mc.mc_note <> ''
          AND ml.ml_movie_id = t.t_id
          AND mk.mk_movie_id = t.t_id
          AND mc.mc_movie_id = t.t_id
          AND lt.lt_id = ml.ml_link_type_id
          AND mk.mk_keyword_id = k.k_id
          AND mc.mc_company_id = cn.cn_id
          AND mc.mc_company_type_id = ct.ct_id
        """,
        "Looser variant of 11a (JOB 11d) — larger per-answer provenance.",
    ),
    QuerySpec(
        "13c",
        """
        SELECT t.t_id
        FROM company_name cn, company_type ct, info_type it1,
             info_type it2, kind_type kt, movie_companies mc,
             movie_info mi, movie_info_idx mii, title t
        WHERE cn.cn_country_code = '[de]'
          AND ct.ct_kind = 'production companies'
          AND kt.kt_kind = 'movie'
          AND it1.it_info = 'rating'
          AND it2.it_info = 'top 250 rank'
          AND mc.mc_movie_id = t.t_id
          AND mi.mi_movie_id = t.t_id
          AND mii.mii_movie_id = t.t_id
          AND kt.kt_id = t.t_kind_id
          AND mi.mi_info_type_id = it1.it_id
          AND mii.mii_info_type_id = it2.it_id
          AND mc.mc_company_id = cn.cn_id
          AND mc.mc_company_type_id = ct.ct_id
        """,
        "German-produced rated movies with release info (JOB 13c).",
    ),
    QuerySpec(
        "15d",
        """
        SELECT t.t_id
        FROM cast_info ci, company_name cn, info_type it, keyword k,
             movie_companies mc, movie_info mi, movie_keyword mk,
             name n, title t
        WHERE cn.cn_country_code = '[us]'
          AND it.it_info = 'rating'
          AND t.t_production_year > 1990
          AND ci.ci_movie_id = t.t_id
          AND mk.mk_movie_id = t.t_id
          AND mi.mi_movie_id = t.t_id
          AND mc.mc_movie_id = t.t_id
          AND ci.ci_person_id = n.n_id
          AND mk.mk_keyword_id = k.k_id
          AND mi.mi_info_type_id = it.it_id
          AND mc.mc_company_id = cn.cn_id
        """,
        "Recent rated US movies with cast and keywords (JOB 15d-style; "
        "nine joined tables).",
    ),
    QuerySpec(
        "16a",
        """
        SELECT n.n_id
        FROM aka_name an, cast_info ci, company_name cn, keyword k,
             movie_companies mc, movie_keyword mk, name n, title t
        WHERE cn.cn_country_code = '[us]'
          AND k.k_keyword = 'character-name-in-title'
          AND an.an_person_id = n.n_id
          AND n.n_id = ci.ci_person_id
          AND ci.ci_movie_id = t.t_id
          AND t.t_id = mk.mk_movie_id
          AND mk.mk_keyword_id = k.k_id
          AND t.t_id = mc.mc_movie_id
          AND mc.mc_company_id = cn.cn_id
        """,
        "Cast of US title-character movies (JOB 16a).",
    ),
]

#: Additional JOB-family queries beyond the nine Table 1 rows — the
#: paper's full IMDB suite has 32 queries; these widen our coverage of
#: the same join templates (2a, 3b, 4a, 5c, 9d, 10a, 12b, 14a, 17e, 18a).
IMDB_EXTRA_QUERIES: list[QuerySpec] = [
    QuerySpec(
        "2a",
        """
        SELECT t.t_id
        FROM company_name cn, keyword k, movie_companies mc,
             movie_keyword mk, title t
        WHERE cn.cn_country_code = '[de]'
          AND k.k_keyword = 'character-name-in-title'
          AND mc.mc_movie_id = t.t_id
          AND mk.mk_movie_id = t.t_id
          AND mk.mk_keyword_id = k.k_id
          AND mc.mc_company_id = cn.cn_id
        """,
        "German-produced title-character movies (JOB 2a).",
    ),
    QuerySpec(
        "3b",
        """
        SELECT t.t_id
        FROM keyword k, movie_info mi, movie_keyword mk, title t
        WHERE k.k_keyword = 'sequel'
          AND mi.mi_info LIKE '19%'
          AND t.t_production_year > 1990
          AND mk.mk_movie_id = t.t_id
          AND mi.mi_movie_id = t.t_id
          AND mk.mk_keyword_id = k.k_id
        """,
        "Recent sequels with 20th-century release info (JOB 3b).",
    ),
    QuerySpec(
        "4a",
        """
        SELECT t.t_id
        FROM info_type it, keyword k, movie_info_idx mii,
             movie_keyword mk, title t
        WHERE it.it_info = 'top 250 rank'
          AND k.k_keyword IN ('superhero', 'revenge')
          AND mii.mii_movie_id = t.t_id
          AND mk.mk_movie_id = t.t_id
          AND mk.mk_keyword_id = k.k_id
          AND mii.mii_info_type_id = it.it_id
        """,
        "Ranked superhero/revenge movies (JOB 4a).",
    ),
    QuerySpec(
        "5c",
        """
        SELECT t.t_id
        FROM company_type ct, info_type it, movie_companies mc,
             movie_info mi, title t
        WHERE ct.ct_kind = 'production companies'
          AND mc.mc_note NOT LIKE '%(as Metro-Goldwyn-Mayer Pictures)%'
          AND it.it_info = 'rating'
          AND t.t_production_year > 1980
          AND mc.mc_movie_id = t.t_id
          AND mi.mi_movie_id = t.t_id
          AND mi.mi_info_type_id = it.it_id
          AND mc.mc_company_type_id = ct.ct_id
        """,
        "Rated post-1980 productions (JOB 5c).",
    ),
    QuerySpec(
        "9d",
        """
        SELECT n.n_id
        FROM aka_name an, cast_info ci, company_name cn,
             movie_companies mc, name n, role_type rt, title t
        WHERE cn.cn_country_code = '[us]'
          AND rt.rt_role = 'actor'
          AND n.n_gender = 'm'
          AND an.an_person_id = n.n_id
          AND n.n_id = ci.ci_person_id
          AND ci.ci_movie_id = t.t_id
          AND t.t_id = mc.mc_movie_id
          AND mc.mc_company_id = cn.cn_id
          AND ci.ci_role_id = rt.rt_id
        """,
        "US-produced actors with alias names (JOB 9d).",
    ),
    QuerySpec(
        "10a",
        """
        SELECT t.t_id
        FROM cast_info ci, company_name cn, company_type ct,
             movie_companies mc, role_type rt, title t
        WHERE ci.ci_note LIKE '%(voice)%'
          AND cn.cn_country_code = '[us]'
          AND rt.rt_role = 'actor'
          AND ci.ci_movie_id = t.t_id
          AND t.t_id = mc.mc_movie_id
          AND mc.mc_company_id = cn.cn_id
          AND mc.mc_company_type_id = ct.ct_id
          AND ci.ci_role_id = rt.rt_id
        """,
        "US movies with voiced actor roles (JOB 10a).",
    ),
    QuerySpec(
        "12b",
        """
        SELECT t.t_id
        FROM company_name cn, company_type ct, info_type it1,
             info_type it2, kind_type kt, movie_companies mc,
             movie_info mi, movie_info_idx mii, title t
        WHERE cn.cn_country_code = '[us]'
          AND ct.ct_kind = 'production companies'
          AND kt.kt_kind = 'movie'
          AND it1.it_info = 'rating'
          AND it2.it_info = 'top 250 rank'
          AND mc.mc_movie_id = t.t_id
          AND mi.mi_movie_id = t.t_id
          AND mii.mii_movie_id = t.t_id
          AND kt.kt_id = t.t_kind_id
          AND mi.mi_info_type_id = it1.it_id
          AND mii.mii_info_type_id = it2.it_id
          AND mc.mc_company_id = cn.cn_id
          AND mc.mc_company_type_id = ct.ct_id
        """,
        "US-produced rated+ranked movies (JOB 12b; nine tables).",
    ),
    QuerySpec(
        "14a",
        """
        SELECT t.t_id
        FROM info_type it1, info_type it2, keyword k, kind_type kt,
             movie_info mi, movie_info_idx mii, movie_keyword mk, title t
        WHERE kt.kt_kind = 'movie'
          AND k.k_keyword IN ('murder', 'revenge', 'violence')
          AND it1.it_info = 'rating'
          AND it2.it_info = 'top 250 rank'
          AND t.t_production_year > 1990
          AND mi.mi_movie_id = t.t_id
          AND mii.mii_movie_id = t.t_id
          AND mk.mk_movie_id = t.t_id
          AND kt.kt_id = t.t_kind_id
          AND mi.mi_info_type_id = it1.it_id
          AND mii.mii_info_type_id = it2.it_id
          AND mk.mk_keyword_id = k.k_id
        """,
        "Recent ranked crime-keyword movies (JOB 14a).",
    ),
    QuerySpec(
        "17e",
        """
        SELECT n.n_id
        FROM cast_info ci, company_name cn, keyword k,
             movie_companies mc, movie_keyword mk, name n, title t
        WHERE cn.cn_country_code = '[us]'
          AND k.k_keyword = 'character-name-in-title'
          AND n.n_id = ci.ci_person_id
          AND ci.ci_movie_id = t.t_id
          AND t.t_id = mk.mk_movie_id
          AND mk.mk_keyword_id = k.k_id
          AND t.t_id = mc.mc_movie_id
          AND mc.mc_company_id = cn.cn_id
        """,
        "Cast of US title-character movies, no alias requirement (JOB 17e).",
    ),
    QuerySpec(
        "18a",
        """
        SELECT t.t_id
        FROM cast_info ci, info_type it1, info_type it2,
             movie_info mi, movie_info_idx mii, name n, title t
        WHERE n.n_gender = 'm'
          AND it1.it_info = 'rating'
          AND it2.it_info = 'top 250 rank'
          AND ci.ci_movie_id = t.t_id
          AND mi.mi_movie_id = t.t_id
          AND mii.mii_movie_id = t.t_id
          AND ci.ci_person_id = n.n_id
          AND mi.mi_info_type_id = it1.it_id
          AND mii.mii_info_type_id = it2.it_id
        """,
        "Ranked movies with male cast (JOB 18a).",
    ),
]

#: The full IMDB suite (Table 1 rows + the extra JOB-family queries).
IMDB_ALL_QUERIES: list[QuerySpec] = IMDB_QUERIES + IMDB_EXTRA_QUERIES


def imdb_query(name: str) -> QuerySpec:
    """Look up any suite query by name (e.g. ``"8d"``, ``"14a"``)."""
    for spec in IMDB_ALL_QUERIES:
        if spec.name == name:
            return spec
    raise KeyError(f"no IMDB query named {name!r}")
