"""The paper's running example (Figure 1): flights and airports.

The ``Flights`` relation is endogenous, ``Airports`` exogenous, and the
Boolean UCQ asks whether there is a route from a "USA" airport to a
"FR" airport with at most one connection.  Example 2.1 works out the
exact Shapley values, reproduced here as ground truth for tests:

========  ==============  =========
fact       value           ≈
========  ==============  =========
a1         43/105          0.4095
a2..a5     23/210          0.1095
a6, a7     8/105           0.0762
a8         0               0
========  ==============  =========
"""

from __future__ import annotations

from fractions import Fraction

from ..db.conjunctive import UnionOfConjunctiveQueries, cq
from ..db.database import Database, Fact
from ..db.schema import RelationSchema, Schema

FLIGHTS = [
    ("JFK", "CDG"),  # a1
    ("EWR", "LHR"),  # a2
    ("BOS", "LHR"),  # a3
    ("LHR", "CDG"),  # a4
    ("LHR", "ORY"),  # a5
    ("LAX", "MUC"),  # a6
    ("MUC", "ORY"),  # a7
    ("LHR", "MUC"),  # a8
]

AIRPORTS = [
    ("JFK", "USA"),  # b1
    ("EWR", "USA"),  # b2
    ("BOS", "USA"),  # b3
    ("LAX", "USA"),  # b4
    ("LHR", "EN"),   # b5
    ("MUC", "GR"),   # b6
    ("ORY", "FR"),   # b7
    ("CDG", "FR"),   # b8
]


def flights_schema() -> Schema:
    """Schema of Figure 1a."""
    return Schema.of(
        RelationSchema.of("Flights", ("src", str), ("dest", str)),
        RelationSchema.of("Airports", ("name", str), ("country", str)),
    )


def flights_database() -> Database:
    """The database of Figure 1a (Flights endogenous, Airports exogenous)."""
    db = Database(flights_schema())
    db.add_many("Flights", FLIGHTS, endogenous=True)
    db.add_many("Airports", AIRPORTS, endogenous=False)
    return db


def fact(name: str) -> Fact:
    """The fact the paper calls ``a1``..``a8`` / ``b1``..``b8``."""
    if name.startswith("a"):
        return Fact("Flights", FLIGHTS[int(name[1:]) - 1])
    if name.startswith("b"):
        return Fact("Airports", AIRPORTS[int(name[1:]) - 1])
    raise ValueError(f"unknown fact name {name!r}")


def direct_query():
    """q1: a direct USA -> FR flight (Figure 1c)."""
    return cq(None, "Airports(x, 'USA')", "Airports(y, 'FR')", "Flights(x, y)")


def one_stop_query():
    """q2: a USA -> FR route with exactly one connection (Figure 1c)."""
    return cq(
        None,
        "Airports(x, 'USA')",
        "Airports(z, 'FR')",
        "Flights(x, y)",
        "Flights(y, z)",
    )


def flights_query() -> UnionOfConjunctiveQueries:
    """q = q1 OR q2: at most one connection (the running example)."""
    return UnionOfConjunctiveQueries.of(direct_query(), one_stop_query())


#: Exact Shapley values from Example 2.1, keyed by the paper's names.
EXPECTED_SHAPLEY = {
    "a1": Fraction(43, 105),
    "a2": Fraction(23, 210),
    "a3": Fraction(23, 210),
    "a4": Fraction(23, 210),
    "a5": Fraction(23, 210),
    "a6": Fraction(8, 105),
    "a7": Fraction(8, 105),
    "a8": Fraction(0),
}

#: Exact Shapley values for q2 alone, from Example 5.3.
EXPECTED_SHAPLEY_Q2 = {
    "a1": Fraction(0),
    "a2": Fraction(11, 60),
    "a3": Fraction(11, 60),
    "a4": Fraction(11, 60),
    "a5": Fraction(11, 60),
    "a6": Fraction(2, 15),
    "a7": Fraction(2, 15),
    "a8": Fraction(0),
}
