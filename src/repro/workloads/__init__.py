"""Benchmark workloads: flights running example, TPC-H, IMDB, synthetic."""

from .flights import (
    EXPECTED_SHAPLEY,
    EXPECTED_SHAPLEY_Q2,
    flights_database,
    flights_query,
)
from .imdb import ImdbConfig, generate_imdb, imdb_schema
from .imdb_queries import (
    IMDB_ALL_QUERIES,
    IMDB_EXTRA_QUERIES,
    IMDB_QUERIES,
    imdb_query,
)
from .suite import QueryShape, QuerySpec, describe
from .synthetic import (
    bipartite_join_dnf,
    chained_dnf,
    intractable_circuit,
    intractable_cnf,
    random_monotone_cnf,
    random_monotone_dnf,
    shared_block_circuits,
)
from .tpch import TpchConfig, generate_tpch, tpch_schema
from .tpch_queries import TPCH_QUERIES, tpch_query

__all__ = [
    "EXPECTED_SHAPLEY", "EXPECTED_SHAPLEY_Q2", "flights_database",
    "flights_query",
    "ImdbConfig", "generate_imdb", "imdb_schema",
    "IMDB_ALL_QUERIES", "IMDB_EXTRA_QUERIES", "IMDB_QUERIES", "imdb_query",
    "QueryShape", "QuerySpec", "describe",
    "bipartite_join_dnf", "chained_dnf", "intractable_circuit",
    "intractable_cnf", "random_monotone_cnf", "random_monotone_dnf",
    "shared_block_circuits",
    "TpchConfig", "generate_tpch", "tpch_schema",
    "TPCH_QUERIES", "tpch_query",
]
