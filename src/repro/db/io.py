"""Loading and saving databases as CSV directories.

A database is stored as one CSV per relation plus a ``_schema.json``
manifest recording attribute names/types and each relation's default
endogenous status.  This is the interchange format used by the CLI
(``python -m repro generate/explain``) and the natural way to run the
library on your own data.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .database import Database
from .schema import Attribute, RelationSchema, Schema

_TYPES: dict[str, type] = {"int": int, "float": float, "str": str, "bool": bool}
_TYPE_NAMES = {t: n for n, t in _TYPES.items()}


def save_database(database: Database, directory: str | Path) -> None:
    """Write ``database`` into ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, object] = {"relations": {}}
    for name in database.schema.names():
        relation = database.schema.relation(name)
        attrs = []
        for attribute in relation.attributes:
            attrs.append(
                {
                    "name": attribute.name,
                    "type": _TYPE_NAMES.get(attribute.dtype, "str")
                    if attribute.dtype is not None
                    else None,
                }
            )
        facts = database.relation(name)
        endogenous = [database.is_endogenous(f) for f in facts]
        manifest["relations"][name] = {
            "attributes": attrs,
            # a relation is recorded endogenous iff all its facts are;
            # mixed relations store the per-row flag in the CSV
            "mixed": len(set(endogenous)) > 1,
            "endogenous": bool(endogenous) and all(endogenous),
        }
        with (directory / f"{name}.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            header = [a.name for a in relation.attributes]
            if manifest["relations"][name]["mixed"]:
                header.append("__endogenous")
            writer.writerow(header)
            for fact, endo in zip(facts, endogenous):
                row = list(fact.values)
                if manifest["relations"][name]["mixed"]:
                    row.append(int(endo))
                writer.writerow(row)
    with (directory / "_schema.json").open("w") as handle:
        json.dump(manifest, handle, indent=2)


def load_database(directory: str | Path) -> Database:
    """Load a database previously written by :func:`save_database`."""
    directory = Path(directory)
    manifest_path = directory / "_schema.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no _schema.json manifest in {directory}")
    with manifest_path.open() as handle:
        manifest = json.load(handle)

    schema = Schema()
    converters: dict[str, list] = {}
    for name, info in manifest["relations"].items():
        attrs = []
        conv = []
        for spec in info["attributes"]:
            dtype = _TYPES.get(spec["type"]) if spec["type"] else None
            attrs.append(Attribute(spec["name"], dtype))
            conv.append(dtype or str)
        schema.add(RelationSchema(name, tuple(attrs)))
        converters[name] = conv

    database = Database(schema)
    for name, info in manifest["relations"].items():
        path = directory / f"{name}.csv"
        if not path.exists():
            continue
        conv = converters[name]
        mixed = info.get("mixed", False)
        default_endo = info.get("endogenous", True)
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            for row in reader:
                if mixed:
                    *values, endo_flag = row
                    endogenous = bool(int(endo_flag))
                else:
                    values = row
                    endogenous = default_endo
                typed = [_convert(c, v) for c, v in zip(conv, values)]
                database.add(name, *typed, endogenous=endogenous)
    return database


def _convert(dtype: type, text: str):
    if dtype is bool:
        return text in ("1", "True", "true")
    return dtype(text)
