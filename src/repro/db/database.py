"""Facts and databases with an endogenous/exogenous partition.

Following the paper (Section 2), a database ``D`` is a finite set of
facts partitioned into exogenous facts ``Dx`` (taken for granted) and
endogenous facts ``Dn`` (whose contribution we want to quantify).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .schema import Schema, SchemaError


class Fact:
    """A single database fact ``R(a1, ..., ak)``.

    Facts compare and hash by (relation, values); the
    endogenous/exogenous status lives in the :class:`Database`, not in
    the fact itself, so the same fact object can be shared freely.  Facts
    double as the *variable labels* of provenance circuits.
    """

    __slots__ = ("relation", "values", "_hash")

    def __init__(self, relation: str, values: Sequence[object]) -> None:
        self.relation = relation
        self.values = tuple(values)
        self._hash = hash((relation, self.values))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fact)
            and self.relation == other.relation
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"

    def __lt__(self, other: "Fact") -> bool:
        # A stable order for deterministic iteration in reports/tests.
        if not isinstance(other, Fact):
            return NotImplemented
        return (self.relation, _sort_key(self.values)) < (
            other.relation,
            _sort_key(other.values),
        )


def _sort_key(values: tuple) -> tuple:
    return tuple((type(v).__name__, repr(v)) for v in values)


class Database:
    """An in-memory relational database under set semantics.

    Facts are added with :meth:`add` (endogenous by default, matching the
    paper's experiments where whole relations are designated endogenous
    or exogenous).  The class supports cheap construction of
    sub-databases (:meth:`restrict_endogenous`), which the naive Shapley
    definition (Equation 1) evaluates over.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._relations: dict[str, dict[Fact, None]] = {
            name: {} for name in schema.names()
        }
        self._endogenous: set[Fact] = set()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, relation: str, *values: object, endogenous: bool = True) -> Fact:
        """Insert a fact, validating against the schema.

        Re-inserting an existing fact is a no-op (set semantics) but
        updates its endogenous status.
        """
        rel_schema = self.schema.relation(relation)
        rel_schema.validate(values)
        fact = Fact(relation, values)
        self._relations[relation][fact] = None
        if endogenous:
            self._endogenous.add(fact)
        else:
            self._endogenous.discard(fact)
        return fact

    def add_many(
        self, relation: str, rows: Iterable[Sequence[object]], endogenous: bool = True
    ) -> list[Fact]:
        """Bulk :meth:`add`."""
        return [self.add(relation, *row, endogenous=endogenous) for row in rows]

    def remove(self, fact: Fact) -> None:
        """Delete a fact from the database."""
        rel = self._relations.get(fact.relation)
        if rel is None or fact not in rel:
            raise SchemaError(f"fact {fact!r} not in database")
        del rel[fact]
        self._endogenous.discard(fact)

    def set_endogenous(self, fact: Fact, endogenous: bool = True) -> None:
        """Flip the endogenous status of one fact."""
        if fact not in self:
            raise SchemaError(f"fact {fact!r} not in database")
        if endogenous:
            self._endogenous.add(fact)
        else:
            self._endogenous.discard(fact)

    def mark_relation(self, relation: str, endogenous: bool) -> None:
        """Designate a whole relation endogenous or exogenous, as done for
        the tables in the paper's experiments."""
        for fact in self._relations[self.schema.relation(relation).name]:
            self.set_endogenous(fact, endogenous)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def relation(self, name: str) -> list[Fact]:
        """All facts of a relation (stable insertion order)."""
        return list(self._relations[self.schema.relation(name).name])

    def facts(self) -> Iterator[Fact]:
        """Iterate over every fact in the database."""
        for rel in self._relations.values():
            yield from rel

    def __contains__(self, fact: Fact) -> bool:
        rel = self._relations.get(fact.relation)
        return rel is not None and fact in rel

    def __len__(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def is_endogenous(self, fact: Fact) -> bool:
        """True iff the fact is endogenous."""
        return fact in self._endogenous

    def endogenous_facts(self) -> list[Fact]:
        """The set ``Dn``, in stable order."""
        return [f for f in self.facts() if f in self._endogenous]

    def exogenous_facts(self) -> list[Fact]:
        """The set ``Dx``, in stable order."""
        return [f for f in self.facts() if f not in self._endogenous]

    # ------------------------------------------------------------------
    # Sub-databases
    # ------------------------------------------------------------------

    def restrict_endogenous(self, endogenous_subset: Iterable[Fact]) -> "Database":
        """Return the database ``Dx ∪ E`` for ``E ⊆ Dn``.

        This is the sub-database the coalition game of Equation (1)
        evaluates queries over.
        """
        subset = set(endogenous_subset)
        result = Database(self.schema)
        for fact in self.facts():
            if fact in self._endogenous and fact not in subset:
                continue
            result._relations[fact.relation][fact] = None
            if fact in self._endogenous:
                result._endogenous.add(fact)
        return result

    def copy(self) -> "Database":
        """A shallow copy (facts are shared, containers are fresh)."""
        result = Database(self.schema)
        for name, rel in self._relations.items():
            result._relations[name] = dict(rel)
        result._endogenous = set(self._endogenous)
        return result

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}={len(r)}" for n, r in self._relations.items())
        return f"Database({sizes}; endo={len(self._endogenous)})"
