"""Conjunctive queries and unions of conjunctive queries.

This layer mirrors the logical view of queries used throughout the
paper's theory sections: Boolean (U)CQs with constants, the
self-join-free test, and the *hierarchical* property that characterizes
tractability for both probabilistic query evaluation and Shapley
computation on sjf-CQs (Dalvi & Suciu; Livshits et al.).

Queries convert to relational algebra (:meth:`ConjunctiveQuery.to_algebra`)
for evaluation by the provenance engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from .algebra import (
    Col,
    Comparison,
    Const,
    Join,
    Operator,
    Project,
    Scan,
    Select,
    Union,
    conjunction,
)
from .schema import Schema


@dataclass(frozen=True)
class Var:
    """A query variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


Term = object  # Var, or any constant value


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t1, ..., tk)`` with variables/constants."""

    relation: str
    terms: tuple

    def variables(self) -> list[Var]:
        return [t for t in self.terms if isinstance(t, Var)]

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``q(head) :- atom1, ..., atomk``.

    ``head`` lists the free variables (empty for a Boolean query).
    """

    head: tuple
    atoms: tuple[Atom, ...]

    @classmethod
    def of(
        cls, head: Sequence[Var] | None, atoms: Iterable[Atom]
    ) -> "ConjunctiveQuery":
        return cls(tuple(head or ()), tuple(atoms))

    # -- basic structure ------------------------------------------------

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def variables(self) -> set[Var]:
        out: set[Var] = set()
        for atom in self.atoms:
            out.update(atom.variables())
        return out

    def existential_variables(self) -> set[Var]:
        return self.variables() - set(self.head)

    def is_self_join_free(self) -> bool:
        """No relation name occurs in two different atoms."""
        names = [a.relation for a in self.atoms]
        return len(names) == len(set(names))

    # -- the hierarchical property --------------------------------------

    def is_hierarchical(self) -> bool:
        """Test the hierarchical property over *existential* variables.

        ``at(x)`` is the set of atoms containing variable ``x``; the
        query is hierarchical iff for every two existential variables
        the sets ``at(x)`` and ``at(y)`` are comparable or disjoint.
        For self-join-free CQs this characterizes both PQE tractability
        (Dalvi & Suciu) and Shapley tractability (Livshits et al.).
        """
        exist = self.existential_variables()
        at: dict[Var, set[int]] = {v: set() for v in exist}
        for index, atom in enumerate(self.atoms):
            for var in atom.variables():
                if var in at:
                    at[var].add(index)
        for x, y in combinations(sorted(exist, key=lambda v: v.name), 2):
            ax, ay = at[x], at[y]
            if ax & ay and not (ax <= ay or ay <= ax):
                return False
        return True

    # -- compilation to algebra -----------------------------------------

    def to_algebra(self, schema: Schema) -> Operator:
        """Translate into relational algebra over qualified columns.

        Each atom ``i`` scans its relation under alias ``a{i}``;
        constants and repeated variables within an atom become
        selections, shared variables across atoms become equi-join
        pairs.  Atoms are joined greedily along shared variables to
        avoid cross products wherever possible.
        """
        if not self.atoms:
            raise ValueError("conjunctive query needs at least one atom")

        plans: list[Operator] = []
        var_columns: list[dict[Var, str]] = []
        for index, atom in enumerate(self.atoms):
            alias = f"a{index}"
            rel_schema = schema.relation(atom.relation)
            if len(atom.terms) != rel_schema.arity:
                raise ValueError(
                    f"atom {atom!r} has arity {len(atom.terms)}, "
                    f"relation has {rel_schema.arity}"
                )
            plan: Operator = Scan(atom.relation, alias)
            predicates = []
            columns: dict[Var, str] = {}
            for position, term in enumerate(atom.terms):
                qualified = f"{alias}.{rel_schema.attribute_names[position]}"
                if isinstance(term, Var):
                    if term in columns:
                        predicates.append(
                            Comparison("=", Col(columns[term]), Col(qualified))
                        )
                    else:
                        columns[term] = qualified
                else:
                    predicates.append(Comparison("=", Col(qualified), Const(term)))
            pred = conjunction(predicates)
            if pred is not None:
                plan = Select(plan, pred)
            plans.append(plan)
            var_columns.append(columns)

        # Greedy join order along shared variables.
        remaining = list(range(len(self.atoms)))
        current = remaining.pop(0)
        plan = plans[current]
        bound: dict[Var, str] = dict(var_columns[current])
        while remaining:
            chosen = None
            for candidate in remaining:
                if set(var_columns[candidate]) & set(bound):
                    chosen = candidate
                    break
            if chosen is None:
                chosen = remaining[0]  # unavoidable cross product
            remaining.remove(chosen)
            pairs = tuple(
                (bound[v], col)
                for v, col in var_columns[chosen].items()
                if v in bound
            )
            plan = Join(plan, plans[chosen], pairs)
            for v, col in var_columns[chosen].items():
                bound.setdefault(v, col)

        head_columns = []
        for var in self.head:
            if var not in bound:
                raise ValueError(f"head variable {var!r} not bound by any atom")
            head_columns.append(bound[var])
        return Project(plan, tuple(head_columns))

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self.head)
        body = ", ".join(repr(a) for a in self.atoms)
        return f"q({head}) :- {body}"


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A UCQ: disjuncts with heads of equal arity."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    @classmethod
    def of(cls, *disjuncts: ConjunctiveQuery) -> "UnionOfConjunctiveQueries":
        if not disjuncts:
            raise ValueError("UCQ needs at least one disjunct")
        arities = {len(d.head) for d in disjuncts}
        if len(arities) != 1:
            raise ValueError(f"disjuncts have different head arities: {arities}")
        return cls(tuple(disjuncts))

    @property
    def is_boolean(self) -> bool:
        return self.disjuncts[0].is_boolean

    def to_algebra(self, schema: Schema) -> Operator:
        plans = tuple(d.to_algebra(schema) for d in self.disjuncts)
        if len(plans) == 1:
            return plans[0]
        return Union(plans)

    def __repr__(self) -> str:
        return " ∨ ".join(repr(d) for d in self.disjuncts)


def parse_atom(text: str) -> Atom:
    """Parse ``R(x, 'const', 3)`` — variables are bare lowercase
    identifiers, quoted strings and numbers are constants."""
    text = text.strip()
    open_paren = text.index("(")
    if not text.endswith(")"):
        raise ValueError(f"malformed atom {text!r}")
    relation = text[:open_paren].strip()
    body = text[open_paren + 1 : -1]
    terms: list[object] = []
    for raw in _split_terms(body):
        token = raw.strip()
        if not token:
            raise ValueError(f"empty term in atom {text!r}")
        if token.startswith("'") and token.endswith("'"):
            terms.append(token[1:-1])
        elif token.lstrip("+-").replace(".", "", 1).isdigit():
            terms.append(float(token) if "." in token else int(token))
        else:
            terms.append(Var(token))
    return Atom(relation, tuple(terms))


def _split_terms(body: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    for ch in body:
        if ch == "'":
            in_string = not in_string
            current.append(ch)
        elif ch == "," and depth == 0 and not in_string:
            parts.append("".join(current))
            current = []
        else:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            current.append(ch)
    if current or not parts:
        parts.append("".join(current))
    return [p for p in parts if p.strip()]


def cq(head: Sequence[str] | str | None, *atom_texts: str) -> ConjunctiveQuery:
    """Convenience constructor:
    ``cq(["x"], "R(x, y)", "S(y, 'paris')")``."""
    if head is None:
        head_vars: tuple = ()
    elif isinstance(head, str):
        head_vars = (Var(head),)
    else:
        head_vars = tuple(Var(h) for h in head)
    return ConjunctiveQuery(head_vars, tuple(parse_atom(t) for t in atom_texts))
