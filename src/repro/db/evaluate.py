"""Semiring-annotated evaluation of relational algebra.

``evaluate(plan, db, semiring)`` returns an :class:`AnnotatedRelation`
mapping each output tuple to its semiring annotation.  With
:class:`~repro.db.semiring.CircuitSemiring` this computes exactly the
Boolean provenance ``Lin(q[x̄/t̄], D)`` (one circuit gate per output
tuple) that the paper obtains from ProvSQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..circuits.circuit import Circuit
from .algebra import (
    AlgebraError,
    And,
    Between,
    Col,
    Comparison,
    Const,
    Expression,
    InList,
    Join,
    Like,
    Not,
    Operator,
    Or,
    Predicate,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    _COMPARATORS,
)
from .database import Database, Fact
from .semiring import CircuitSemiring, Semiring


@dataclass
class AnnotatedRelation:
    """A relation whose rows carry semiring annotations."""

    columns: tuple[str, ...]
    rows: dict[tuple, object]

    def __len__(self) -> int:
        return len(self.rows)

    def tuples(self) -> list[tuple]:
        return list(self.rows)

    def annotation(self, row: tuple) -> object:
        return self.rows[row]

    def column_index(self, name: str) -> int:
        """Resolve a (possibly unqualified) column name to an index."""
        if name in self.columns:
            return self.columns.index(name)
        matches = [
            i for i, col in enumerate(self.columns)
            if col.rsplit(".", 1)[-1] == name
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise AlgebraError(f"unknown column {name!r}; have {self.columns}")
        raise AlgebraError(f"ambiguous column {name!r}; have {self.columns}")


def resolve_column(columns: tuple[str, ...], name: str) -> int:
    """Resolve ``name`` against qualified ``columns`` (unique suffix
    match allowed for unqualified names)."""
    if name in columns:
        return columns.index(name)
    matches = [i for i, col in enumerate(columns) if col.rsplit(".", 1)[-1] == name]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise AlgebraError(f"unknown column {name!r}; have {columns}")
    raise AlgebraError(f"ambiguous column {name!r}; have {columns}")


# ----------------------------------------------------------------------
# Predicate compilation
# ----------------------------------------------------------------------

def compile_expression(expr: Expression, columns: tuple[str, ...]) -> Callable[[tuple], object]:
    """Compile an expression into a row -> value function."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Col):
        index = resolve_column(columns, expr.name)
        return lambda row: row[index]
    raise AlgebraError(f"unknown expression {expr!r}")


def compile_predicate(
    predicate: Predicate, columns: tuple[str, ...]
) -> Callable[[tuple], bool]:
    """Compile a predicate into a row -> bool function."""
    if isinstance(predicate, Comparison):
        op = _COMPARATORS[predicate.op]
        left = compile_expression(predicate.left, columns)
        right = compile_expression(predicate.right, columns)
        return lambda row: op(left(row), right(row))
    if isinstance(predicate, Like):
        expr = compile_expression(predicate.expr, columns)
        regex = predicate.regex()
        if predicate.negated:
            return lambda row: regex.match(str(expr(row))) is None
        return lambda row: regex.match(str(expr(row))) is not None
    if isinstance(predicate, InList):
        expr = compile_expression(predicate.expr, columns)
        values = set(predicate.values)
        if predicate.negated:
            return lambda row: expr(row) not in values
        return lambda row: expr(row) in values
    if isinstance(predicate, Between):
        expr = compile_expression(predicate.expr, columns)
        low = compile_expression(predicate.low, columns)
        high = compile_expression(predicate.high, columns)
        return lambda row: low(row) <= expr(row) <= high(row)
    if isinstance(predicate, And):
        parts = [compile_predicate(p, columns) for p in predicate.parts]
        return lambda row: all(p(row) for p in parts)
    if isinstance(predicate, Or):
        parts = [compile_predicate(p, columns) for p in predicate.parts]
        return lambda row: any(p(row) for p in parts)
    if isinstance(predicate, Not):
        inner = compile_predicate(predicate.part, columns)
        return lambda row: not inner(row)
    raise AlgebraError(f"unknown predicate {predicate!r}")


# ----------------------------------------------------------------------
# Operator evaluation
# ----------------------------------------------------------------------

def evaluate(plan: Operator, db: Database, semiring: Semiring) -> AnnotatedRelation:
    """Evaluate ``plan`` over ``db`` in the given semiring."""
    if isinstance(plan, Scan):
        rel_schema = db.schema.relation(plan.relation)
        prefix = plan.prefix
        columns = tuple(f"{prefix}.{a}" for a in rel_schema.attribute_names)
        rows: dict[tuple, object] = {}
        for fact in db.relation(plan.relation):
            annotation = semiring.var(fact)
            if fact.values in rows:
                rows[fact.values] = semiring.plus(rows[fact.values], annotation)
            else:
                rows[fact.values] = annotation
        return AnnotatedRelation(columns, rows)

    if isinstance(plan, Select):
        child = evaluate(plan.child, db, semiring)
        test = compile_predicate(plan.predicate, child.columns)
        rows = {row: ann for row, ann in child.rows.items() if test(row)}
        return AnnotatedRelation(child.columns, rows)

    if isinstance(plan, Project):
        child = evaluate(plan.child, db, semiring)
        indices = [resolve_column(child.columns, c) for c in plan.columns]
        rows = {}
        for row, annotation in child.rows.items():
            key = tuple(row[i] for i in indices)
            if key in rows:
                rows[key] = semiring.plus(rows[key], annotation)
            else:
                rows[key] = annotation
        return AnnotatedRelation(tuple(plan.columns), rows)

    if isinstance(plan, Rename):
        child = evaluate(plan.child, db, semiring)
        mapping = dict(plan.mapping)
        columns = tuple(mapping.get(c, c) for c in child.columns)
        return AnnotatedRelation(columns, child.rows)

    if isinstance(plan, Join):
        left = evaluate(plan.left, db, semiring)
        right = evaluate(plan.right, db, semiring)
        return _hash_join(left, right, plan.pairs, semiring)

    if isinstance(plan, Union):
        if not plan.children:
            raise AlgebraError("Union needs at least one child")
        first = evaluate(plan.children[0], db, semiring)
        rows = dict(first.rows)
        for child_plan in plan.children[1:]:
            child = evaluate(child_plan, db, semiring)
            if len(child.columns) != len(first.columns):
                raise AlgebraError(
                    f"Union arity mismatch: {first.columns} vs {child.columns}"
                )
            for row, annotation in child.rows.items():
                if row in rows:
                    rows[row] = semiring.plus(rows[row], annotation)
                else:
                    rows[row] = annotation
        return AnnotatedRelation(first.columns, rows)

    raise AlgebraError(f"unknown operator {plan!r}")


def _hash_join(
    left: AnnotatedRelation,
    right: AnnotatedRelation,
    pairs: Iterable[tuple[str, str]],
    semiring: Semiring,
) -> AnnotatedRelation:
    pairs = tuple(pairs)
    left_idx = [resolve_column(left.columns, l) for l, _ in pairs]
    right_idx = [resolve_column(right.columns, r) for _, r in pairs]
    columns = left.columns + right.columns
    rows: dict[tuple, object] = {}
    # Build on the smaller side.
    if len(right.rows) <= len(left.rows):
        table: dict[tuple, list] = {}
        for row, annotation in right.rows.items():
            key = tuple(row[i] for i in right_idx)
            table.setdefault(key, []).append((row, annotation))
        for lrow, lann in left.rows.items():
            key = tuple(lrow[i] for i in left_idx)
            for rrow, rann in table.get(key, ()):
                out = lrow + rrow
                combined = semiring.times(lann, rann)
                if out in rows:
                    rows[out] = semiring.plus(rows[out], combined)
                else:
                    rows[out] = combined
    else:
        table = {}
        for row, annotation in left.rows.items():
            key = tuple(row[i] for i in left_idx)
            table.setdefault(key, []).append((row, annotation))
        for rrow, rann in right.rows.items():
            key = tuple(rrow[i] for i in right_idx)
            for lrow, lann in table.get(key, ()):
                out = lrow + rrow
                combined = semiring.times(lann, rann)
                if out in rows:
                    rows[out] = semiring.plus(rows[out], combined)
                else:
                    rows[out] = combined
    return AnnotatedRelation(columns, rows)


# ----------------------------------------------------------------------
# Lineage extraction (the ProvSQL role)
# ----------------------------------------------------------------------

@dataclass
class LineageResult:
    """Boolean provenance of every output tuple of a query.

    ``relation.rows`` maps each output tuple to a gate of ``circuit``.
    When built with ``endogenous_only=True``, each gate represents the
    endogenous lineage ``ELin(q[x̄/t̄], Dx, Dn)`` directly.
    """

    relation: AnnotatedRelation
    circuit: Circuit

    def tuples(self) -> list[tuple]:
        return list(self.relation.rows)

    def lineage_of(self, row: tuple) -> Circuit:
        """A pruned, standalone circuit for one output tuple."""
        gate = self.relation.rows[row]
        view = Circuit()
        view._kinds = self.circuit._kinds
        view._children = self.circuit._children
        view._labels = self.circuit._labels
        view._var_gates = self.circuit._var_gates
        view._cache = self.circuit._cache
        view.output = gate
        return view.condition({})

    def facts_of(self, row: tuple) -> set[Fact]:
        """Distinct facts appearing in one output tuple's lineage."""
        gate = self.relation.rows[row]
        return self.circuit.reachable_vars(gate)


def lineage(
    plan: Operator, db: Database, endogenous_only: bool = False
) -> LineageResult:
    """Compute the Boolean provenance of every answer of ``plan``.

    This plays the role of ProvSQL in the paper's Figure 3.  With
    ``endogenous_only=True`` exogenous facts are fixed to TRUE during
    evaluation (the partial evaluation step of the figure happens
    inline, which is equivalent and cheaper).
    """
    semiring = CircuitSemiring(database=db, endogenous_only=endogenous_only)
    relation = evaluate(plan, db, semiring)
    return LineageResult(relation, semiring.circuit)


def boolean_answer(plan: Operator, db: Database) -> bool:
    """Evaluate the plan as a Boolean query: is the output non-empty?"""
    from .semiring import BooleanSemiring

    return len(evaluate(plan, db, BooleanSemiring()).rows) > 0
