"""A small SQL front-end for SPJU queries.

Supports exactly the query class the paper's implementation handles
(the SPJU fragment of ProvSQL):

.. code-block:: sql

    SELECT [DISTINCT] cols FROM t1 [AS a1], t2 ... [WHERE cond]
    [UNION SELECT ...]

with conditions built from comparisons (=, <>, !=, <, <=, >, >=),
AND/OR/NOT, LIKE, IN and BETWEEN.  The planner pushes single-table
predicates to scans and turns cross-table equalities into equi-joins
with a greedy connected join order, so benchmark queries never
materialize a full cross product.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .algebra import (
    AlgebraError,
    And,
    Between,
    Col,
    Comparison,
    Const,
    Expression,
    InList,
    Join,
    Like,
    Not,
    Operator,
    Or,
    Predicate,
    Project,
    Scan,
    Select,
    Union,
    conjunction,
    conjuncts,
)
from .schema import Schema


class SqlError(ValueError):
    """Raised on syntax or resolution errors."""


KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "OR", "NOT", "UNION",
    "AS", "LIKE", "IN", "BETWEEN",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", ".")


@dataclass
class Token:
    kind: str  # KEYWORD, IDENT, NUMBER, STRING, SYMBOL, EOF
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            chunks: list[str] = []
            while True:
                if j >= n:
                    raise SqlError(f"unterminated string at {i}")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(text[j])
                j += 1
            tokens.append(Token("STRING", "".join(chunks), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        matched = False
        for sym in SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token("SYMBOL", sym, i))
                i += len(sym)
                matched = True
                break
        if matched:
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        raise SqlError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("EOF", "", n))
    return tokens


@dataclass
class SelectStatement:
    """One parsed SELECT block."""

    columns: list[str]  # empty means '*'
    tables: list[tuple[str, str]]  # (relation, alias)
    predicate: Predicate | None
    distinct: bool = False


@dataclass
class ParsedQuery:
    """A parsed query: one or more SELECT blocks combined by UNION."""

    selects: list[SelectStatement] = field(default_factory=list)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- helpers ---------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            raise SqlError(
                f"expected {value or kind} at position {token.position}, "
                f"got {token.value!r}"
            )
        return self.advance()

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    # -- grammar ---------------------------------------------------------

    def parse_query(self) -> ParsedQuery:
        query = ParsedQuery()
        query.selects.append(self.parse_select())
        while self.accept("KEYWORD", "UNION"):
            query.selects.append(self.parse_select())
        self.expect("EOF")
        return query

    def parse_select(self) -> SelectStatement:
        self.expect("KEYWORD", "SELECT")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        columns: list[str] = []
        if self.accept("SYMBOL", "*"):
            pass
        else:
            columns.append(self.parse_column_ref())
            while self.accept("SYMBOL", ","):
                columns.append(self.parse_column_ref())
        self.expect("KEYWORD", "FROM")
        tables = [self.parse_table()]
        while self.accept("SYMBOL", ","):
            tables.append(self.parse_table())
        predicate = None
        if self.accept("KEYWORD", "WHERE"):
            predicate = self.parse_or()
        return SelectStatement(columns, tables, predicate, distinct)

    def parse_column_ref(self) -> str:
        name = self.expect("IDENT").value
        if self.accept("SYMBOL", "."):
            name = f"{name}.{self.expect('IDENT').value}"
        if self.accept("KEYWORD", "AS"):
            self.expect("IDENT")  # output names are cosmetic; ignored
        return name

    def parse_table(self) -> tuple[str, str]:
        name = self.expect("IDENT").value
        alias = name
        if self.accept("KEYWORD", "AS"):
            alias = self.expect("IDENT").value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return name, alias

    def parse_or(self) -> Predicate:
        parts = [self.parse_and()]
        while self.accept("KEYWORD", "OR"):
            parts.append(self.parse_and())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def parse_and(self) -> Predicate:
        parts = [self.parse_unary()]
        while self.accept("KEYWORD", "AND"):
            parts.append(self.parse_unary())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def parse_unary(self) -> Predicate:
        if self.accept("KEYWORD", "NOT"):
            return Not(self.parse_unary())
        if self.accept("SYMBOL", "("):
            inner = self.parse_or()
            self.expect("SYMBOL", ")")
            return inner
        return self.parse_predicate()

    def parse_operand(self) -> Expression:
        token = self.peek()
        if token.kind == "STRING":
            self.advance()
            return Const(token.value)
        if token.kind == "NUMBER":
            self.advance()
            text = token.value
            return Const(float(text) if "." in text else int(text))
        if token.kind == "IDENT":
            name = self.advance().value
            if self.accept("SYMBOL", "."):
                name = f"{name}.{self.expect('IDENT').value}"
            return Col(name)
        raise SqlError(f"expected operand at {token.position}, got {token.value!r}")

    def parse_predicate(self) -> Predicate:
        left = self.parse_operand()
        negated = bool(self.accept("KEYWORD", "NOT"))
        if self.accept("KEYWORD", "LIKE"):
            pattern = self.expect("STRING").value
            return Like(left, pattern, negated=negated)
        if self.accept("KEYWORD", "IN"):
            self.expect("SYMBOL", "(")
            values: list[object] = []
            while True:
                token = self.peek()
                if token.kind == "STRING":
                    values.append(self.advance().value)
                elif token.kind == "NUMBER":
                    text = self.advance().value
                    values.append(float(text) if "." in text else int(text))
                else:
                    raise SqlError(f"expected literal in IN list at {token.position}")
                if not self.accept("SYMBOL", ","):
                    break
            self.expect("SYMBOL", ")")
            return InList(left, tuple(values), negated=negated)
        if self.accept("KEYWORD", "BETWEEN"):
            low = self.parse_operand()
            self.expect("KEYWORD", "AND")
            high = self.parse_operand()
            pred: Predicate = Between(left, low, high)
            return Not(pred) if negated else pred
        if negated:
            raise SqlError("NOT must be followed by LIKE/IN/BETWEEN here")
        token = self.peek()
        if token.kind == "SYMBOL" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_operand()
            return Comparison(token.value, left, right)
        raise SqlError(f"expected comparison at {token.position}, got {token.value!r}")


def parse_sql(text: str) -> ParsedQuery:
    """Parse SQL text into a :class:`ParsedQuery`."""
    return _Parser(tokenize(text)).parse_query()


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------

def plan_sql(text: str, schema: Schema) -> Operator:
    """Parse and plan a SQL query into relational algebra."""
    parsed = parse_sql(text)
    plans = [_plan_select(stmt, schema) for stmt in parsed.selects]
    if len(plans) == 1:
        return plans[0]
    return Union(tuple(plans))


def _plan_select(stmt: SelectStatement, schema: Schema) -> Operator:
    # Column catalog: alias -> list of qualified column names.
    catalog: dict[str, list[str]] = {}
    for relation, alias in stmt.tables:
        rel_schema = schema.relation(relation)
        if alias in catalog:
            raise SqlError(f"duplicate table alias {alias!r}")
        catalog[alias] = [f"{alias}.{a}" for a in rel_schema.attribute_names]

    def resolve(name: str) -> str:
        if "." in name:
            alias, _, attr = name.partition(".")
            if alias not in catalog:
                raise SqlError(f"unknown table alias {alias!r}")
            qualified = f"{alias}.{attr}"
            if qualified not in catalog[alias]:
                raise SqlError(f"unknown column {name!r}")
            return qualified
        matches = [
            col for cols in catalog.values() for col in cols
            if col.rsplit(".", 1)[-1] == name
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise SqlError(f"unknown column {name!r}")
        raise SqlError(f"ambiguous column {name!r}: {matches}")

    def qualify_expr(expr: Expression) -> Expression:
        if isinstance(expr, Col):
            return Col(resolve(expr.name))
        return expr

    def qualify(pred: Predicate) -> Predicate:
        if isinstance(pred, Comparison):
            return Comparison(pred.op, qualify_expr(pred.left), qualify_expr(pred.right))
        if isinstance(pred, Like):
            return Like(qualify_expr(pred.expr), pred.pattern, pred.negated)
        if isinstance(pred, InList):
            return InList(qualify_expr(pred.expr), pred.values, pred.negated)
        if isinstance(pred, Between):
            return Between(
                qualify_expr(pred.expr), qualify_expr(pred.low), qualify_expr(pred.high)
            )
        if isinstance(pred, And):
            return And(tuple(qualify(p) for p in pred.parts))
        if isinstance(pred, Or):
            return Or(tuple(qualify(p) for p in pred.parts))
        if isinstance(pred, Not):
            return Not(qualify(pred.part))
        raise SqlError(f"unsupported predicate {pred!r}")

    def aliases_of(pred: Predicate) -> set[str]:
        return {col.split(".", 1)[0] for col in pred.columns()}

    # Classify conjuncts.
    single_table: dict[str, list[Predicate]] = {alias: [] for alias in catalog}
    join_edges: list[tuple[str, str, str, str]] = []  # (a1, c1, a2, c2)
    residual: list[Predicate] = []
    for conjunct in conjuncts(stmt.predicate):
        pred = qualify(conjunct)
        aliases = aliases_of(pred)
        if len(aliases) == 1:
            single_table[next(iter(aliases))].append(pred)
        elif (
            isinstance(pred, Comparison)
            and pred.op == "="
            and isinstance(pred.left, Col)
            and isinstance(pred.right, Col)
            and len(aliases) == 2
        ):
            left_alias = pred.left.name.split(".", 1)[0]
            join_edges.append(
                (left_alias, pred.left.name,
                 pred.right.name.split(".", 1)[0], pred.right.name)
            )
        else:
            residual.append(pred)

    # Per-table plans with pushed-down selections.
    table_plans: dict[str, Operator] = {}
    for relation, alias in stmt.tables:
        plan: Operator = Scan(relation, alias)
        pred = conjunction(single_table[alias])
        if pred is not None:
            plan = Select(plan, pred)
        table_plans[alias] = plan

    # Greedy connected join order.
    order = [alias for _, alias in stmt.tables]
    joined = {order[0]}
    plan = table_plans[order[0]]
    pending = order[1:]
    used_edges: set[int] = set()
    while pending:
        chosen = None
        for candidate in pending:
            if any(
                (a1 in joined and a2 == candidate) or (a2 in joined and a1 == candidate)
                for a1, _, a2, _ in join_edges
            ):
                chosen = candidate
                break
        if chosen is None:
            chosen = pending[0]
        pending.remove(chosen)
        pairs: list[tuple[str, str]] = []
        for index, (a1, c1, a2, c2) in enumerate(join_edges):
            if index in used_edges:
                continue
            if a1 in joined and a2 == chosen:
                pairs.append((c1, c2))
                used_edges.add(index)
            elif a2 in joined and a1 == chosen:
                pairs.append((c2, c1))
                used_edges.add(index)
        plan = Join(plan, table_plans[chosen], tuple(pairs))
        joined.add(chosen)

    # Join edges within already-joined tables (e.g. cycles) and leftovers.
    leftovers: list[Predicate] = []
    for index, (a1, c1, a2, c2) in enumerate(join_edges):
        if index not in used_edges:
            leftovers.append(Comparison("=", Col(c1), Col(c2)))
    leftovers.extend(residual)
    pred = conjunction(leftovers)
    if pred is not None:
        plan = Select(plan, pred)

    # Projection.
    if stmt.columns:
        projected = tuple(resolve(c) for c in stmt.columns)
    else:
        projected = tuple(col for _, alias in stmt.tables for col in catalog[alias])
    return Project(plan, projected)
