"""Relational engine with semiring provenance (the ProvSQL substitute)."""

from .algebra import (
    AlgebraError,
    And,
    Between,
    Col,
    Comparison,
    Const,
    InList,
    Join,
    Like,
    Not,
    Operator,
    Or,
    Predicate,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    conjunction,
    conjuncts,
    count_filters,
    count_joins,
)
from .conjunctive import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    Var,
    cq,
    parse_atom,
)
from .database import Database, Fact
from .evaluate import (
    AnnotatedRelation,
    LineageResult,
    boolean_answer,
    evaluate,
    lineage,
)
from .schema import Attribute, RelationSchema, Schema, SchemaError
from .semiring import (
    BooleanSemiring,
    CircuitSemiring,
    CountingSemiring,
    PolynomialSemiring,
    ProbabilitySemiring,
    Semiring,
    TropicalSemiring,
    WhySemiring,
)
from .sql import ParsedQuery, SqlError, parse_sql, plan_sql

__all__ = [
    "AlgebraError", "And", "Between", "Col", "Comparison", "Const", "InList",
    "Join", "Like", "Not", "Operator", "Or", "Predicate", "Project", "Rename",
    "Scan", "Select", "Union", "conjunction", "conjuncts", "count_filters",
    "count_joins",
    "Atom", "ConjunctiveQuery", "UnionOfConjunctiveQueries", "Var", "cq",
    "parse_atom",
    "Database", "Fact",
    "AnnotatedRelation", "LineageResult", "boolean_answer", "evaluate",
    "lineage",
    "Attribute", "RelationSchema", "Schema", "SchemaError",
    "BooleanSemiring", "CircuitSemiring", "CountingSemiring",
    "PolynomialSemiring", "ProbabilitySemiring", "Semiring",
    "TropicalSemiring", "WhySemiring",
    "ParsedQuery", "SqlError", "parse_sql", "plan_sql",
]
