"""Relational schemas.

A :class:`Schema` is a collection of named relations; each
:class:`RelationSchema` has a name and an ordered list of attributes with
optional Python types used for validation on insert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


class SchemaError(ValueError):
    """Raised on schema violations (unknown relation, bad arity...)."""


@dataclass(frozen=True)
class Attribute:
    """A named attribute with an optional expected Python type."""

    name: str
    dtype: type | None = None

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` if ``value`` has the wrong type."""
        if self.dtype is not None and not isinstance(value, self.dtype):
            raise SchemaError(
                f"attribute {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )


@dataclass(frozen=True)
class RelationSchema:
    """A relation name together with its attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    @classmethod
    def of(cls, name: str, *attr_specs: str | tuple[str, type]) -> "RelationSchema":
        """Build a relation schema from attribute names or (name, type)
        pairs: ``RelationSchema.of("R", "a", ("b", int))``."""
        attrs = []
        for spec in attr_specs:
            if isinstance(spec, str):
                attrs.append(Attribute(spec))
            else:
                attrs.append(Attribute(spec[0], spec[1]))
        return cls(name, tuple(attrs))

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def validate(self, values: Sequence[object]) -> None:
        """Check arity and attribute types of a candidate tuple."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} has arity {self.arity}, "
                f"got {len(values)} values"
            )
        for attribute, value in zip(self.attributes, values):
            attribute.validate(value)

    def position(self, attribute_name: str) -> int:
        """Index of an attribute by name."""
        for i, attribute in enumerate(self.attributes):
            if attribute.name == attribute_name:
                return i
        raise SchemaError(f"no attribute {attribute_name!r} in {self.name!r}")


@dataclass
class Schema:
    """A database schema: a collection of relation schemas."""

    relations: dict[str, RelationSchema] = field(default_factory=dict)

    @classmethod
    def of(cls, *relation_schemas: RelationSchema) -> "Schema":
        schema = cls()
        for rel in relation_schemas:
            schema.add(rel)
        return schema

    def add(self, relation: RelationSchema) -> None:
        if relation.name in self.relations:
            raise SchemaError(f"duplicate relation {relation.name!r}")
        self.relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def names(self) -> Iterable[str]:
        return self.relations.keys()
