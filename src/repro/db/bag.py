"""Bag semantics via copy identifiers (the paper's Section 7 remark).

The framework is defined for set semantics, but the paper observes that
bag databases are handled *as-is* by differentiating each copy of a
tuple with an identifier attribute.  This module implements exactly
that encoding: :func:`bag_schema` appends a hidden copy-id attribute to
selected relations and :class:`BagTable` inserts multiplicities as
distinguishable facts, each of which is then an independent player in
the Shapley game.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .database import Database, Fact
from .schema import Attribute, RelationSchema, Schema

#: Name of the hidden copy-id attribute appended to bag relations.
COPY_ATTRIBUTE = "__copy"


def bag_relation(relation: RelationSchema) -> RelationSchema:
    """A copy of ``relation`` with the hidden copy-id attribute."""
    if relation.attribute_names and relation.attribute_names[-1] == COPY_ATTRIBUTE:
        return relation
    return RelationSchema(
        relation.name, relation.attributes + (Attribute(COPY_ATTRIBUTE, int),)
    )


def bag_schema(schema: Schema, relations: Iterable[str] | None = None) -> Schema:
    """A schema where the chosen relations carry copy identifiers.

    ``relations=None`` converts every relation.
    """
    chosen = set(relations) if relations is not None else set(schema.names())
    out = Schema()
    for name in schema.names():
        relation = schema.relation(name)
        out.add(bag_relation(relation) if name in chosen else relation)
    return out


class BagTable:
    """Insert facts with multiplicities into a bag-encoded relation.

    Each inserted copy becomes its own :class:`~repro.db.database.Fact`
    (distinguished by the hidden copy id), so Shapley values attribute
    contribution *per copy* — summing a tuple's copies gives the
    tuple-level contribution.
    """

    def __init__(self, database: Database, relation: str) -> None:
        self.database = database
        self.relation = relation
        rel_schema = database.schema.relation(relation)
        if rel_schema.attribute_names[-1] != COPY_ATTRIBUTE:
            raise ValueError(
                f"relation {relation!r} is not bag-encoded; build the "
                "database with bag_schema()"
            )
        self._next_copy: dict[tuple, int] = {}

    def add(
        self,
        *values: object,
        multiplicity: int = 1,
        endogenous: bool = True,
    ) -> list[Fact]:
        """Insert ``multiplicity`` distinguishable copies of a tuple."""
        if multiplicity < 1:
            raise ValueError("multiplicity must be at least 1")
        key = tuple(values)
        start = self._next_copy.get(key, 0)
        facts = []
        for copy in range(start, start + multiplicity):
            facts.append(
                self.database.add(
                    self.relation, *values, copy, endogenous=endogenous
                )
            )
        self._next_copy[key] = start + multiplicity
        return facts

    def copies_of(self, *values: object) -> list[Fact]:
        """All currently inserted copies of a tuple."""
        key = tuple(values)
        count = self._next_copy.get(key, 0)
        facts = []
        for copy in range(count):
            fact = Fact(self.relation, key + (copy,))
            if fact in self.database:
                facts.append(fact)
        return facts


def tuple_contribution(values_by_fact, copies: Sequence[Fact]):
    """Aggregate per-copy Shapley values into a tuple-level score."""
    total = None
    for fact in copies:
        value = values_by_fact.get(fact, 0)
        total = value if total is None else total + value
    return total if total is not None else 0
