"""Provenance semirings.

Query evaluation (:mod:`repro.db.evaluate`) is parameterized by a
commutative semiring in the style of Green, Karvounarakis & Tannen's
provenance-semiring framework — the same design as ProvSQL, which the
paper uses to capture lineage.  The semiring used by the Shapley
pipeline is :class:`CircuitSemiring`, which annotates each output tuple
with a gate of a shared Boolean circuit; the other semirings are useful
in their own right (and for testing the engine against independent
semantics).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Generic, Hashable, Mapping, TypeVar

from ..circuits.circuit import Circuit
from .database import Fact

T = TypeVar("T")


class Semiring(Generic[T]):
    """A commutative semiring with a valuation of database facts.

    Subclasses provide ``zero``, ``one``, ``plus``, ``times`` and
    ``var`` (the annotation of a base fact).  ``plus`` aggregates
    alternative derivations (projection/union); ``times`` combines joint
    derivations (join).
    """

    def zero(self) -> T:
        raise NotImplementedError

    def one(self) -> T:
        raise NotImplementedError

    def plus(self, a: T, b: T) -> T:
        raise NotImplementedError

    def times(self, a: T, b: T) -> T:
        raise NotImplementedError

    def var(self, fact: Fact) -> T:
        raise NotImplementedError


class BooleanSemiring(Semiring[bool]):
    """Plain query evaluation: annotations are just truth values."""

    def zero(self) -> bool:
        return False

    def one(self) -> bool:
        return True

    def plus(self, a: bool, b: bool) -> bool:
        return a or b

    def times(self, a: bool, b: bool) -> bool:
        return a and b

    def var(self, fact: Fact) -> bool:
        return True


class CountingSemiring(Semiring[int]):
    """Number of distinct derivations of each output tuple (N, +, x)."""

    def zero(self) -> int:
        return 0

    def one(self) -> int:
        return 1

    def plus(self, a: int, b: int) -> int:
        return a + b

    def times(self, a: int, b: int) -> int:
        return a * b

    def var(self, fact: Fact) -> int:
        return 1


class WhySemiring(Semiring[frozenset]):
    """Why-provenance: sets of witness fact-sets (Buneman et al.)."""

    def zero(self) -> frozenset:
        return frozenset()

    def one(self) -> frozenset:
        return frozenset((frozenset(),))

    def plus(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def times(self, a: frozenset, b: frozenset) -> frozenset:
        return frozenset(x | y for x in a for y in b)

    def var(self, fact: Fact) -> frozenset:
        return frozenset((frozenset((fact,)),))


class TropicalSemiring(Semiring[float]):
    """Min-plus semiring: cheapest derivation under per-fact weights."""

    INF = float("inf")

    def __init__(self, weights: Mapping[Fact, float] | None = None, default: float = 1.0):
        self.weights = dict(weights) if weights else {}
        self.default = default

    def zero(self) -> float:
        return self.INF

    def one(self) -> float:
        return 0.0

    def plus(self, a: float, b: float) -> float:
        return min(a, b)

    def times(self, a: float, b: float) -> float:
        return a + b

    def var(self, fact: Fact) -> float:
        return self.weights.get(fact, self.default)


# A provenance polynomial is a mapping monomial -> coefficient, where a
# monomial maps each fact to its exponent.
Monomial = tuple  # tuple of (fact, exponent) pairs, sorted by repr
Polynomial = Mapping[Monomial, int]


class PolynomialSemiring(Semiring[dict]):
    """Full provenance polynomials N[X] (most informative semiring)."""

    def zero(self) -> dict:
        return {}

    def one(self) -> dict:
        return {(): 1}

    def plus(self, a: dict, b: dict) -> dict:
        out = dict(a)
        for mono, coeff in b.items():
            out[mono] = out.get(mono, 0) + coeff
        return out

    def times(self, a: dict, b: dict) -> dict:
        out: dict[Monomial, int] = {}
        for mono_a, coeff_a in a.items():
            for mono_b, coeff_b in b.items():
                merged: dict[Fact, int] = dict(mono_a)
                for fact, exp in mono_b:
                    merged[fact] = merged.get(fact, 0) + exp
                key = tuple(sorted(merged.items(), key=lambda kv: repr(kv[0])))
                out[key] = out.get(key, 0) + coeff_a * coeff_b
        return out

    def var(self, fact: Fact) -> dict:
        return {((fact, 1),): 1}


class CircuitSemiring(Semiring[int]):
    """Boolean-circuit provenance (lineage), the paper's workhorse.

    Annotations are gate ids of a shared :class:`Circuit`.  When
    ``endogenous_only`` is true, exogenous facts are annotated with the
    constant TRUE gate, so the resulting lineage is directly the
    *endogenous lineage* ``ELin(q, Dx, Dn)`` of Section 4 (equivalently:
    ``Lin`` conditioned on ``Dx -> 1``).
    """

    def __init__(self, database=None, endogenous_only: bool = False) -> None:
        self.circuit = Circuit()
        self.database = database
        self.endogenous_only = endogenous_only

    def zero(self) -> int:
        return self.circuit.false()

    def one(self) -> int:
        return self.circuit.true()

    def plus(self, a: int, b: int) -> int:
        return self.circuit.or_((a, b))

    def times(self, a: int, b: int) -> int:
        return self.circuit.and_((a, b))

    def var(self, fact: Fact) -> int:
        if (
            self.endogenous_only
            and self.database is not None
            and not self.database.is_endogenous(fact)
        ):
            return self.circuit.true()
        return self.circuit.var(fact)


class ProbabilitySemiring(Semiring[Fraction]):
    """Naive "probability semiring" (only correct on one-occurrence
    provenance; kept for pedagogy and tests of *in*correctness).

    Probabilistic query evaluation is **not** semiring-compatible in
    general — that is precisely why the paper goes through knowledge
    compilation.  :mod:`repro.probdb` implements the correct approaches.
    """

    def __init__(self, probabilities: Mapping[Fact, Fraction]):
        self.probabilities = dict(probabilities)

    def zero(self) -> Fraction:
        return Fraction(0)

    def one(self) -> Fraction:
        return Fraction(1)

    def plus(self, a: Fraction, b: Fraction) -> Fraction:
        return a + b - a * b

    def times(self, a: Fraction, b: Fraction) -> Fraction:
        return a * b

    def var(self, fact: Fact) -> Fraction:
        return Fraction(self.probabilities.get(fact, 1))
