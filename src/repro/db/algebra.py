"""Relational algebra: expressions, predicates and operators.

Operators form a tree evaluated by :mod:`repro.db.evaluate`.  Columns
are referred to by *qualified names* ``alias.attribute`` (the alias
defaults to the relation name), which keeps self-joins unambiguous —
important because several paper queries (e.g. TPC-H Q7) self-join.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Sequence


class AlgebraError(ValueError):
    """Raised on malformed algebra trees (unknown columns, arity...)."""


# ----------------------------------------------------------------------
# Scalar expressions
# ----------------------------------------------------------------------

class Expression:
    """Base class of scalar expressions appearing in predicates."""

    def columns(self) -> set[str]:
        """Qualified column names referenced by the expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Col(Expression):
    """A column reference; ``name`` may be qualified or bare."""

    name: str

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant."""

    value: object

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return repr(self.value)


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------

class Predicate:
    """Base class of Boolean conditions on a single tuple."""

    def columns(self) -> set[str]:
        raise NotImplementedError


_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left op right`` for op in =, !=, <>, <, <=, >, >=."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise AlgebraError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Like(Predicate):
    """SQL LIKE with ``%`` and ``_`` wildcards."""

    expr: Expression
    pattern: str
    negated: bool = False

    def columns(self) -> set[str]:
        return self.expr.columns()

    def regex(self) -> re.Pattern:
        parts: list[str] = []
        for ch in self.pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        return re.compile("^" + "".join(parts) + "$", re.DOTALL)

    def __repr__(self) -> str:
        neg = " NOT" if self.negated else ""
        return f"({self.expr!r}{neg} LIKE {self.pattern!r})"


@dataclass(frozen=True)
class InList(Predicate):
    """``expr IN (v1, ..., vk)``."""

    expr: Expression
    values: tuple
    negated: bool = False

    def columns(self) -> set[str]:
        return self.expr.columns()

    def __repr__(self) -> str:
        neg = " NOT" if self.negated else ""
        return f"({self.expr!r}{neg} IN {self.values!r})"


@dataclass(frozen=True)
class Between(Predicate):
    """``expr BETWEEN lo AND hi`` (inclusive, as in SQL)."""

    expr: Expression
    low: Expression
    high: Expression

    def columns(self) -> set[str]:
        return self.expr.columns() | self.low.columns() | self.high.columns()

    def __repr__(self) -> str:
        return f"({self.expr!r} BETWEEN {self.low!r} AND {self.high!r})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    parts: tuple[Predicate, ...]

    def columns(self) -> set[str]:
        return set().union(*(p.columns() for p in self.parts)) if self.parts else set()

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    parts: tuple[Predicate, ...]

    def columns(self) -> set[str]:
        return set().union(*(p.columns() for p in self.parts)) if self.parts else set()

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negated predicate (on attribute values only — facts themselves
    are never negated, keeping provenance monotone)."""

    part: Predicate

    def columns(self) -> set[str]:
        return self.part.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.part!r})"


def conjuncts(predicate: Predicate | None) -> list[Predicate]:
    """Flatten nested :class:`And` into a list of conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        result: list[Predicate] = []
        for part in predicate.parts:
            result.extend(conjuncts(part))
        return result
    return [predicate]


def conjunction(parts: Sequence[Predicate]) -> Predicate | None:
    """Combine predicates into an :class:`And` (None if empty)."""
    parts = [p for p in parts if p is not None]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------

class Operator:
    """Base class of relational-algebra operators."""

    def default_name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(Operator):
    """Read a base relation; columns are qualified as ``alias.attr``."""

    relation: str
    alias: str | None = None

    @property
    def prefix(self) -> str:
        return self.alias or self.relation

    def __repr__(self) -> str:
        if self.alias and self.alias != self.relation:
            return f"Scan({self.relation} AS {self.alias})"
        return f"Scan({self.relation})"


@dataclass(frozen=True)
class Select(Operator):
    """Filter rows by a predicate."""

    child: Operator
    predicate: Predicate

    def __repr__(self) -> str:
        return f"Select({self.predicate!r}, {self.child!r})"


@dataclass(frozen=True)
class Project(Operator):
    """Project onto the given qualified columns (set semantics: duplicate
    rows are merged, their annotations combined with semiring plus)."""

    child: Operator
    columns: tuple[str, ...]

    def __repr__(self) -> str:
        return f"Project([{', '.join(self.columns)}], {self.child!r})"


@dataclass(frozen=True)
class Rename(Operator):
    """Rename output columns through a mapping old -> new."""

    child: Operator
    mapping: tuple[tuple[str, str], ...]

    def __repr__(self) -> str:
        pairs = ", ".join(f"{o}->{n}" for o, n in self.mapping)
        return f"Rename({pairs}, {self.child!r})"


@dataclass(frozen=True)
class Join(Operator):
    """Equi-join on pairs of qualified columns; with no pairs this is a
    cross product."""

    left: Operator
    right: Operator
    pairs: tuple[tuple[str, str], ...] = ()

    def __repr__(self) -> str:
        cond = " AND ".join(f"{l}={r}" for l, r in self.pairs) or "TRUE"
        return f"Join({cond}, {self.left!r}, {self.right!r})"


@dataclass(frozen=True)
class Union(Operator):
    """Set union of children with compatible arity; columns are taken
    from the first child."""

    children: tuple[Operator, ...]

    def __repr__(self) -> str:
        return "Union(" + ", ".join(repr(c) for c in self.children) + ")"


def walk(operator: Operator):
    """Yield every operator in the tree (pre-order)."""
    yield operator
    if isinstance(operator, (Select, Project, Rename)):
        yield from walk(operator.child)
    elif isinstance(operator, Join):
        yield from walk(operator.left)
        yield from walk(operator.right)
    elif isinstance(operator, Union):
        for child in operator.children:
            yield from walk(child)


def count_joins(operator: Operator) -> int:
    """Number of Join operators (used in Table 1's '#Joined tables'-style
    reporting)."""
    return sum(1 for op in walk(operator) if isinstance(op, Join))


def count_filters(operator: Operator) -> int:
    """Number of atomic filter conditions in the tree."""
    total = 0
    for op in walk(operator):
        if isinstance(op, Select):
            total += _count_atoms(op.predicate)
        elif isinstance(op, Join):
            total += len(op.pairs)
    return total


def _count_atoms(predicate: Predicate) -> int:
    if isinstance(predicate, (And, Or)):
        return sum(_count_atoms(p) for p in predicate.parts)
    if isinstance(predicate, Not):
        return _count_atoms(predicate.part)
    return 1
