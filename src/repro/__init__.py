"""repro — Shapley values of database facts in query answering.

A from-scratch reproduction of:

    Daniel Deutch, Nave Frost, Benny Kimelfeld, Mikaël Monet.
    "Computing the Shapley Value of Facts in Query Answering",
    SIGMOD 2022 (arXiv:2112.08874).

The package contains the paper's contribution (:mod:`repro.core`) and
every substrate it relies on, reimplemented in pure Python:

* :mod:`repro.db` — an in-memory relational engine with semiring
  provenance (the ProvSQL role);
* :mod:`repro.circuits` — Boolean circuits, CNF, Tseytin, d-DNNF
  algorithms;
* :mod:`repro.compiler` — a top-down knowledge compiler (the c2d role)
  plus an OBDD backend;
* :mod:`repro.probdb` — tuple-independent probabilistic databases with
  naive, lifted, and intensional query evaluation;
* :mod:`repro.workloads` — TPC-H and IMDB/JOB-style data generators and
  the paper's query suites;
* :mod:`repro.bench` — the experiment harness reproducing every table
  and figure of the paper (driven by ``benchmarks/``).

Quick start
-----------
>>> from repro import attribute
>>> from repro.workloads.flights import flights_database, flights_query
>>> db = flights_database()
>>> result = attribute(db, flights_query(), answer=(), method="exact")
>>> result.top(3)
"""

from .core.attribution import Attribution, attribute
from .core.hybrid import HybridResult, hybrid_shapley
from .core.pipeline import ShapleyExplainer
from .engine import (
    ArtifactCache,
    EngineOptions,
    EngineResult,
    ExplainSession,
    PersistentArtifactStore,
    available_engines,
    get_engine,
    register_engine,
)

__version__ = "1.0.0"

__all__ = [
    "Attribution",
    "attribute",
    "HybridResult",
    "hybrid_shapley",
    "ShapleyExplainer",
    "ArtifactCache",
    "EngineOptions",
    "EngineResult",
    "ExplainSession",
    "PersistentArtifactStore",
    "available_engines",
    "get_engine",
    "register_engine",
    "__version__",
]
