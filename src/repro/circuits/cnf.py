"""CNF formulas with DIMACS-style literals and label bookkeeping.

A :class:`Cnf` stores clauses as tuples of signed integers (positive =
positive literal), exactly like the DIMACS format, together with a
bidirectional mapping between integer variables and the original circuit
variable labels.  The knowledge compiler (:mod:`repro.compiler`) and the
CNF Proxy heuristic (:mod:`repro.core.cnf_proxy`) both consume this
representation.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence


class CnfError(ValueError):
    """Raised on malformed CNF input."""


class Cnf:
    """A formula in conjunctive normal form.

    Parameters
    ----------
    num_vars:
        Number of variables; variables are ``1..num_vars``.
    clauses:
        Iterable of clauses, each a sequence of non-zero signed ints.
    labels:
        Optional mapping from variable index to an external label (e.g. a
        database fact).  Variables without a label are *auxiliary* (for
        instance, introduced by the Tseytin transformation).
    """

    __slots__ = ("num_vars", "clauses", "labels", "_by_label")

    def __init__(
        self,
        num_vars: int,
        clauses: Iterable[Sequence[int]] = (),
        labels: Mapping[int, Hashable] | None = None,
    ) -> None:
        self.num_vars = num_vars
        self.clauses: list[tuple[int, ...]] = []
        for clause in clauses:
            self.add_clause(clause)
        self.labels: dict[int, Hashable] = dict(labels) if labels else {}
        self._by_label: dict[Hashable, int] = {lbl: v for v, lbl in self.labels.items()}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_clause(self, clause: Sequence[int]) -> None:
        """Append a clause, validating its literals."""
        lits = tuple(clause)
        for lit in lits:
            if lit == 0 or abs(lit) > self.num_vars:
                raise CnfError(f"literal {lit} out of range 1..{self.num_vars}")
        self.clauses.append(lits)

    def new_var(self, label: Hashable | None = None) -> int:
        """Allocate a fresh variable, optionally labelled."""
        self.num_vars += 1
        var = self.num_vars
        if label is not None:
            self.labels[var] = label
            self._by_label[label] = var
        return var

    def set_label(self, var: int, label: Hashable) -> None:
        """Attach an external label to variable ``var``."""
        self.labels[var] = label
        self._by_label[label] = var

    def var_for_label(self, label: Hashable) -> int | None:
        """Return the variable carrying ``label``, or None."""
        return self._by_label.get(label)

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    def auxiliary_vars(self) -> set[int]:
        """Variables without an external label (e.g. Tseytin variables)."""
        return {v for v in range(1, self.num_vars + 1) if v not in self.labels}

    def labelled_vars(self) -> set[int]:
        """Variables carrying an external label."""
        return set(self.labels)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def evaluate(self, true_vars: Iterable[int]) -> bool:
        """Evaluate under the assignment where ``true_vars`` are true."""
        truth = true_vars if isinstance(true_vars, (set, frozenset)) else set(true_vars)
        for clause in self.clauses:
            satisfied = False
            for lit in clause:
                if (lit > 0) == (abs(lit) in truth):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def evaluate_labelled(self, true_labels: Iterable[Hashable]) -> bool:
        """Evaluate a label assignment, existentially checking auxiliary
        variables by brute force (only sensible for small formulas)."""
        base = {self._by_label[lbl] for lbl in true_labels if lbl in self._by_label}
        aux = sorted(self.auxiliary_vars())
        if not aux:
            return self.evaluate(base)
        for mask in range(1 << len(aux)):
            chosen = base | {aux[i] for i in range(len(aux)) if mask >> i & 1}
            if self.evaluate(chosen):
                return True
        return False

    def condition(self, assignment: Mapping[int, bool]) -> "Cnf":
        """Return a copy with some variables fixed (clauses simplified).

        Satisfied clauses are dropped, false literals removed.  The
        variable numbering is preserved.
        """
        result = Cnf(self.num_vars, labels=self.labels)
        for clause in self.clauses:
            kept: list[int] = []
            satisfied = False
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    kept.append(lit)
            if not satisfied:
                result.add_clause(kept)
        return result

    def unit_propagate(self) -> tuple[dict[int, bool], list[tuple[int, ...]], bool]:
        """Run unit propagation to fixpoint.

        Returns ``(forced, residual_clauses, conflict)`` where ``forced``
        maps variables to their implied values, ``residual_clauses`` are
        the simplified remaining clauses and ``conflict`` is True if an
        empty clause was derived.
        """
        forced: dict[int, bool] = {}
        clauses = list(self.clauses)
        changed = True
        while changed:
            changed = False
            remaining: list[tuple[int, ...]] = []
            for clause in clauses:
                kept: list[int] = []
                satisfied = False
                for lit in clause:
                    var = abs(lit)
                    if var in forced:
                        if forced[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        kept.append(lit)
                if satisfied:
                    changed = True
                    continue
                if not kept:
                    return forced, [], True
                if len(kept) == 1:
                    lit = kept[0]
                    var = abs(lit)
                    value = lit > 0
                    if var in forced:
                        if forced[var] != value:
                            return forced, [], True
                    else:
                        forced[var] = value
                    changed = True
                    continue
                if len(kept) != len(clause):
                    changed = True
                remaining.append(tuple(kept))
            clauses = remaining
        return forced, clauses, False

    # ------------------------------------------------------------------
    # Payload serialization (engine artifact store)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-serializable rendering for :meth:`from_payload`.

        Labels are stored as ``[var, label]`` pairs (JSON objects only
        allow string keys); they must themselves be JSON-serializable,
        which holds for the canonical formulas the engine layer persists
        (labels are small ints there).
        """
        return {
            "num_vars": self.num_vars,
            "clauses": [list(clause) for clause in self.clauses],
            "labels": [[var, lbl] for var, lbl in self.labels.items()],
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Cnf":
        """Rebuild a formula written by :meth:`to_payload`, raising
        :class:`CnfError` on malformed input."""
        try:
            num_vars = payload["num_vars"]
            clauses = payload["clauses"]
            labels = payload["labels"]
        except (KeyError, TypeError) as exc:
            raise CnfError(f"malformed CNF payload: {exc}") from None
        if not isinstance(num_vars, int) or num_vars < 0:
            raise CnfError(f"malformed CNF payload: num_vars={num_vars!r}")
        try:
            label_map = {var: lbl for var, lbl in labels}
            return cls(num_vars, clauses, label_map)
        except (TypeError, ValueError) as exc:
            raise CnfError(f"malformed CNF payload: {exc}") from None

    # ------------------------------------------------------------------
    # DIMACS I/O
    # ------------------------------------------------------------------

    def to_dimacs(self) -> str:
        """Serialize to DIMACS CNF text."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "Cnf":
        """Parse DIMACS CNF text."""
        num_vars = None
        clauses: list[list[int]] = []
        current: list[int] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise CnfError(f"bad problem line: {line!r}")
                num_vars = int(parts[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    clauses.append(current)
                    current = []
                else:
                    current.append(lit)
        if current:
            clauses.append(current)
        if num_vars is None:
            raise CnfError("missing 'p cnf' problem line")
        return cls(num_vars, clauses)

    def __repr__(self) -> str:
        return f"Cnf(vars={self.num_vars}, clauses={len(self.clauses)})"
