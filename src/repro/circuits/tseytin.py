"""Tseytin transformation of Boolean circuits into equisatisfiable CNF.

This is the bridge between the provenance circuit produced by the
relational engine and the knowledge compiler, exactly as in Figure 3 of
the paper.  The resulting :class:`~repro.circuits.cnf.Cnf` has one
labelled variable per circuit variable plus one *auxiliary* variable per
internal gate, and satisfies the three properties used by Lemma 4.6:

1. its variables are the circuit variables plus the auxiliary set ``Z``;
2. every satisfying assignment of the circuit extends to exactly one
   satisfying assignment of the CNF;
3. non-satisfying assignments of the circuit extend to none.
"""

from __future__ import annotations

from .circuit import AND, FALSE, NOT, OR, TRUE, VAR, Circuit, CircuitError
from .cnf import Cnf


def tseytin_transform(circuit: Circuit, root: int | None = None) -> Cnf:
    """Transform ``circuit`` into an equisatisfiable CNF.

    NOT gates do not allocate auxiliary variables: each gate is
    represented by a signed literal and negation just flips the sign, so
    the encoding matches the compact form used in the paper's Example 5.3
    (clauses like ``(¬z2 ∨ a2)``).

    Constant gates are handled by constant propagation: the circuit is
    conditioned on the empty assignment first, which removes all TRUE and
    FALSE gates except possibly at the root.  A constant root yields the
    trivially true CNF (no clauses) or the trivially false one (a single
    empty clause is not representable, so we emit two contradictory unit
    clauses over a fresh auxiliary variable).
    """
    if root is None:
        root = circuit.output_gate()
    pruned = circuit if root == circuit.output else _with_output(circuit, root)
    # Constant-propagate, then flatten nested same-kind gates: lineage
    # circuits chain binary ORs, and flattening recovers the compact
    # n-ary encoding of the paper's Example 5.3 (fewer auxiliary
    # variables, fewer clauses).
    simplified = pruned.condition({}).flatten()
    out = simplified.output_gate()

    cnf = Cnf(0)
    kind = simplified.kind(out)
    if kind == TRUE:
        return cnf
    if kind == FALSE:
        z = cnf.new_var()
        cnf.add_clause((z,))
        cnf.add_clause((-z,))
        return cnf

    # Literal (signed CNF variable) representing each reachable gate.
    reachable = simplified.reachable(out)
    lit: dict[int, int] = {}
    for gate in range(out + 1):
        if reachable[gate] and simplified.kind(gate) == VAR:
            lit[gate] = cnf.new_var(simplified.label(gate))
    for gate in range(out + 1):
        if not reachable[gate]:
            continue
        gkind = simplified.kind(gate)
        if gkind == VAR:
            continue
        if gkind == NOT:
            child = simplified.children(gate)[0]
            lit[gate] = -lit[child]
        elif gkind == AND:
            children = simplified.children(gate)
            if any(c not in lit for c in children):
                continue  # unreachable gate referencing unreachable child
            z = cnf.new_var()
            lit[gate] = z
            long_clause = [z]
            for child in children:
                cnf.add_clause((-z, lit[child]))
                long_clause.append(-lit[child])
            cnf.add_clause(tuple(long_clause))
        elif gkind == OR:
            children = simplified.children(gate)
            if any(c not in lit for c in children):
                continue
            z = cnf.new_var()
            lit[gate] = z
            long_clause = [-z]
            for child in children:
                cnf.add_clause((z, -lit[child]))
                long_clause.append(lit[child])
            cnf.add_clause(tuple(long_clause))
        else:
            raise CircuitError(f"unexpected constant gate {gate} after simplification")
    cnf.add_clause((lit[out],))
    return cnf


def _with_output(circuit: Circuit, root: int) -> Circuit:
    """Return a shallow view of ``circuit`` whose output is ``root``."""
    view = Circuit()
    view._kinds = circuit._kinds  # shared, read-only use
    view._children = circuit._children
    view._labels = circuit._labels
    view._var_gates = circuit._var_gates
    view._cache = circuit._cache
    view.output = root
    return view
