"""Algorithms on deterministic and decomposable (d-D) circuits.

This module implements everything Section 4 of the paper needs from
knowledge-compiled circuits:

* validity checks for decomposability and determinism;
* model counting and weighted model counting (probability computation);
* the per-gate ``#SAT_k`` dynamic program of Lemma 4.5 — the engine of
  Algorithm 1;
* smoothing (used by the fast all-facts Shapley mode);
* the Tseytin-variable elimination of Lemma 4.6;
* reading and writing the c2d ``.nnf`` file format.

All counting is done with exact Python integers; weighted counts accept
`fractions.Fraction` weights for exact probability computation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable, Iterator, Mapping

from .circuit import AND, FALSE, NOT, OR, TRUE, VAR, Circuit, CircuitError


class NotDecomposableError(CircuitError):
    """The circuit has an AND gate with overlapping children."""


class NotDeterministicError(CircuitError):
    """The circuit has an OR gate with jointly satisfiable children."""


# ----------------------------------------------------------------------
# Structural checks
# ----------------------------------------------------------------------

def check_decomposable(circuit: Circuit, root: int | None = None) -> bool:
    """Return True iff every reachable AND gate is decomposable."""
    if root is None:
        root = circuit.output_gate()
    var_sets = circuit.gate_var_sets(root)
    for gate, vset in sorted(var_sets.items()):  # REP002: sorted iteration
        if circuit.kind(gate) != AND:
            continue
        children = circuit.children(gate)
        total = 0
        for child in children:
            total += len(var_sets[child])
        if total != len(vset):
            return False
    return True


def assert_decomposable(circuit: Circuit, root: int | None = None) -> None:
    """Raise :class:`NotDecomposableError` if the circuit is not
    decomposable."""
    if not check_decomposable(circuit, root):
        raise NotDecomposableError("circuit has a non-decomposable AND gate")


def check_deterministic_exhaustive(
    circuit: Circuit, root: int | None = None, limit: int = 20
) -> bool:
    """Exhaustively verify determinism of every reachable OR gate.

    Exponential in the number of variables below each OR gate — intended
    for tests on small circuits.  Gates with more than ``limit`` variables
    raise a ``ValueError`` rather than silently taking forever.
    """
    if root is None:
        root = circuit.output_gate()
    var_sets = circuit.gate_var_sets(root)
    labels_of = {
        g: circuit.label(g)  # REP002: sorted iteration
        for g in sorted(var_sets) if circuit.kind(g) == VAR
    }
    for gate, vset in sorted(var_sets.items()):  # REP002: sorted iteration
        if circuit.kind(gate) != OR:
            continue
        children = circuit.children(gate)
        if len(children) < 2:
            continue
        vlist = [labels_of[v] for v in vset]
        if len(vlist) > limit:
            raise ValueError(f"OR gate {gate} has {len(vlist)} vars > limit {limit}")
        for mask in range(1 << len(vlist)):
            assignment = {vlist[i] for i in range(len(vlist)) if mask >> i & 1}
            satisfied = sum(
                1 for child in children if circuit.evaluate(assignment, root=child)
            )
            if satisfied > 1:
                return False
    return True


def check_decision_form(circuit: Circuit, root: int | None = None) -> bool:
    """Check the *decision* syntactic form that guarantees determinism.

    Every reachable OR gate must either have < 2 children, or have exactly
    two children of the shapes ``(x ∧ ...)`` and ``(¬x ∧ ...)`` (in either
    order) for a common decision variable ``x``.  The knowledge compiler's
    output satisfies this by construction; c2d-style ``.nnf`` files record
    the decision variable explicitly.
    """
    if root is None:
        root = circuit.output_gate()
    flags = circuit.reachable(root)
    for gate in range(root + 1):
        if not flags[gate] or circuit.kind(gate) != OR:
            continue
        children = circuit.children(gate)
        if len(children) < 2:
            continue
        if len(children) != 2:
            return False
        if _decision_var(circuit, children[0], children[1]) is None:
            return False
    return True


def _decision_var(circuit: Circuit, left: int, right: int) -> int | None:
    """Return the VAR gate on which ``left``/``right`` branch, if any."""
    pos = _top_literals(circuit, left, positive=True)
    neg = _top_literals(circuit, right, positive=False)
    common = pos & neg
    if common:
        return next(iter(common))
    pos = _top_literals(circuit, right, positive=True)
    neg = _top_literals(circuit, left, positive=False)
    common = pos & neg
    if common:
        return next(iter(common))
    return None


def _top_literals(circuit: Circuit, gate: int, positive: bool) -> set[int]:
    """VAR gates appearing as direct (possibly negated) conjuncts of
    ``gate`` with the requested polarity."""
    result: set[int] = set()

    def visit(g: int) -> None:
        kind = circuit.kind(g)
        if kind == VAR and positive:
            result.add(g)
        elif kind == NOT and not positive:
            child = circuit.children(g)[0]
            if circuit.kind(child) == VAR:
                result.add(child)
        elif kind == AND:
            for child in circuit.children(g):
                visit(child)

    visit(gate)
    return result


# ----------------------------------------------------------------------
# Counting
# ----------------------------------------------------------------------

def count_models_by_size(
    circuit: Circuit, root: int | None = None, kernel=None
) -> tuple[list[int], int]:
    """Compute ``[#SAT_0(C), ..., #SAT_v(C)]`` over ``Vars(C)``.

    This is the ``ComputeAll#SATk`` subroutine of Algorithm 1 (the
    bottom-up induction of Lemma 4.5), generalized to unbounded fan-in:

    * variable gate: ``[0, 1]``;
    * NOT gate: ``C(|V|, l) - alpha_l`` (same variable set as the child);
    * deterministic OR: sum over children of the child counts convolved
      with binomials over the *gap* variables (``Vars(g) \\ Vars(c)``);
    * decomposable AND: convolution of the children counts.

    The traversal is lowered to a
    :class:`~repro.core.numerics.tape.GateTape` and the arithmetic runs
    on a numeric kernel (``kernel`` — a
    :class:`~repro.core.numerics.base.Kernel`, a registered backend
    name, or ``None`` for the exact big-int reference).  Every backend
    returns identical exact counts.

    Returns ``(counts, num_vars)`` where ``counts[l] = #SAT_l`` and
    ``num_vars = |Vars(C)|``.  Determinism/decomposability are assumed
    (checked elsewhere); results are meaningless otherwise.
    """
    # Imported lazily: repro.core depends on repro.circuits at import
    # time, so the reverse edge must resolve at call time only.
    from ..core.numerics import NonDecomposableTape, compile_tape
    from ..core.numerics.base import Kernel, get_kernel

    if not isinstance(kernel, Kernel):
        kernel = get_kernel(kernel)
    tape = compile_tape(circuit, root)
    try:
        return tape.root_counts(kernel)
    except NonDecomposableTape as exc:
        raise NotDecomposableError(str(exc)) from None


def complete_counts(counts: list[int], extra: int, kernel=None) -> list[int]:
    """Extend ``#SAT_k`` counts to ``extra`` additional free variables.

    Equivalent to conjoining the circuit with ``(x ∨ ¬x)`` for each of
    the ``extra`` variables (line 1 of Algorithm 1) and recounting:
    ``out[k] = sum_i counts[i] * C(extra, k - i)`` — realized as the
    selected kernel's binomial completion.
    """
    from ..core.numerics.base import Kernel, get_kernel

    if not isinstance(kernel, Kernel):
        kernel = get_kernel(kernel)
    return kernel.complete(counts, extra)


def model_count(circuit: Circuit, root: int | None = None) -> int:
    """Count satisfying assignments over ``Vars(C)``."""
    counts, _ = count_models_by_size(circuit, root)
    return sum(counts)


def weighted_model_count(
    circuit: Circuit,
    weights: Mapping[Hashable, tuple[Fraction | float, Fraction | float]],
    root: int | None = None,
):
    """Weighted model count of a d-D circuit.

    ``weights[label] = (w_true, w_false)``.  For probability computation
    use ``(p, 1 - p)``; the result is then ``Pr(C)`` under independent
    variables — the core of probabilistic query evaluation.

    Variables of the circuit missing from ``weights`` get ``(1, 1)``
    (i.e. they are counted as free).  OR-gate gaps are corrected with the
    product of ``w_true + w_false`` over the gap variables, so the
    circuit does not need to be smooth.
    """
    if root is None:
        root = circuit.output_gate()
    var_sets = circuit.gate_var_sets(root)

    def w(var_gate: int) -> tuple:
        return weights.get(circuit.label(var_gate), (1, 1))

    # Z(g) = prod over Vars(g) of (w_true + w_false): the weight of the
    # full assignment space below g, used for gaps and negation.
    z_cache: dict[frozenset[int], object] = {}

    def z_of(vset: frozenset[int]):
        val = z_cache.get(vset)
        if val is None:
            val = 1
            for var_gate in vset:
                wt, wf = w(var_gate)
                val = val * (wt + wf)
            z_cache[vset] = val
        return val

    values: dict[int, object] = {}
    for gate in sorted(var_sets):
        kind = circuit.kind(gate)
        if kind == VAR:
            values[gate] = w(gate)[0]
        elif kind == TRUE:
            values[gate] = 1
        elif kind == FALSE:
            values[gate] = 0
        elif kind == NOT:
            child = circuit.children(gate)[0]
            values[gate] = z_of(var_sets[gate]) - values[child]
        elif kind == OR:
            acc = 0
            gset = var_sets[gate]
            for child in circuit.children(gate):
                gap = gset - var_sets[child]
                term = values[child]
                if gap:
                    term = term * z_of(gap)
                acc = acc + term
            values[gate] = acc
        else:  # AND
            acc = 1
            for child in circuit.children(gate):
                acc = acc * values[child]
            values[gate] = acc
    return values[root]


def probability(
    circuit: Circuit,
    probs: Mapping[Hashable, Fraction | float],
    root: int | None = None,
):
    """Probability that the circuit is true under independent variables.

    Convenience wrapper around :func:`weighted_model_count` with weights
    ``(p, 1 - p)``.  Variables absent from ``probs`` default to
    probability 1/2 only if absent from the mapping *and* present in the
    circuit — callers should normally supply every variable.
    """
    weights = {}
    for label, p in probs.items():
        weights[label] = (p, 1 - p)
    return weighted_model_count(circuit, weights, root)


# ----------------------------------------------------------------------
# Smoothing
# ----------------------------------------------------------------------

def smooth(
    circuit: Circuit,
    target_vars: Iterable[Hashable] | None = None,
    root: int | None = None,
) -> Circuit:
    """Return a smooth equivalent of a d-D circuit.

    In a smooth circuit every child of an OR gate mentions exactly the
    gate's variable set, and the root mentions all of ``target_vars``.
    Smoothing conjoins ``(x ∨ ¬x)`` gates over the missing variables; it
    preserves determinism and decomposability.  The backward-derivative
    pass of the fast all-facts Shapley algorithm requires smoothness.
    """
    if root is None:
        root = circuit.output_gate()
    var_sets = circuit.gate_var_sets(root)
    result = Circuit()
    new_gate: dict[int, int] = {}
    free_gate: dict[Hashable, int] = {}

    def free(label: Hashable) -> int:
        gate = free_gate.get(label)
        if gate is None:
            v = result.var(label)
            gate = result.raw_or((v, result.not_(v)))
            free_gate[label] = gate
        return gate

    def pad(gate_id: int, missing_labels: list[Hashable]) -> int:
        if not missing_labels:
            return gate_id
        parts = [gate_id] + [free(lbl) for lbl in missing_labels]
        return result.raw_and(tuple(parts))

    for gate in sorted(var_sets):
        kind = circuit.kind(gate)
        if kind == VAR:
            new_gate[gate] = result.var(circuit.label(gate))
        elif kind == TRUE:
            new_gate[gate] = result.true()
        elif kind == FALSE:
            new_gate[gate] = result.false()
        elif kind == NOT:
            new_gate[gate] = result.not_(new_gate[circuit.children(gate)[0]])
        elif kind == AND:
            kids = tuple(new_gate[c] for c in circuit.children(gate))
            new_gate[gate] = result.and_(kids)
        else:  # OR
            gset = var_sets[gate]
            kids = []
            for child in circuit.children(gate):
                gap = gset - var_sets[child]
                # REP002: gate ids are sorted so the padding chain is
                # identical across processes and hash seeds.
                missing = [circuit.label(v) for v in sorted(gap)]
                kids.append(pad(new_gate[child], missing))
            new_gate[gate] = result.raw_or(tuple(kids)) if len(kids) != 1 else kids[0]

    top = new_gate[root]
    if target_vars is not None:
        present = {circuit.label(v) for v in sorted(var_sets[root])}
        extra = [lbl for lbl in target_vars if lbl not in present]
        top = pad(top, extra)
    result.output = top
    return result


# ----------------------------------------------------------------------
# Lemma 4.6: eliminating Tseytin variables
# ----------------------------------------------------------------------

def eliminate_auxiliary(
    circuit: Circuit,
    keep_labels: Iterable[Hashable],
    root: int | None = None,
) -> Circuit:
    """Project a d-DNNF over Tseytin CNF variables back onto the circuit
    variables (Lemma 4.6).

    ``keep_labels`` are the original (endogenous-fact) variables; every
    other variable of the circuit is auxiliary.  The procedure follows
    the lemma: (1) remove unsatisfiable gates, (2) drop gates no longer
    connected to the output, and (3) replace every auxiliary literal with
    a constant-1 gate.  Correctness relies on the Tseytin property that
    each model of the original circuit extends to exactly one model of
    the CNF, so determinism is preserved.

    The input must be in negation normal form (NOT only above variables),
    which holds for both our compiler's output and c2d-style files.
    """
    if root is None:
        root = circuit.output_gate()
    keep = set(keep_labels)
    flags = circuit.reachable(root)

    # Bottom-up satisfiability of each gate.  In NNF, literals are always
    # satisfiable, so only the constants and the gate structure matter.
    sat = [False] * (root + 1)
    for gate in range(root + 1):
        if not flags[gate]:
            continue
        kind = circuit.kind(gate)
        if kind == VAR or kind == TRUE:
            sat[gate] = True
        elif kind == FALSE:
            sat[gate] = False
        elif kind == NOT:
            child = circuit.children(gate)[0]
            child_kind = circuit.kind(child)
            if child_kind == VAR:
                sat[gate] = True
            elif child_kind == TRUE:
                sat[gate] = False
            elif child_kind == FALSE:
                sat[gate] = True
            else:
                raise CircuitError(
                    "eliminate_auxiliary requires NNF (negation above variables only)"
                )
        elif kind == AND:
            sat[gate] = all(sat[c] for c in circuit.children(gate))
        else:  # OR
            sat[gate] = any(sat[c] for c in circuit.children(gate))

    result = Circuit()
    new_gate: dict[int, int] = {}
    for gate in range(root + 1):
        if not flags[gate]:
            continue
        kind = circuit.kind(gate)
        if kind == VAR:
            lbl = circuit.label(gate)
            new_gate[gate] = result.var(lbl) if lbl in keep else result.true()
        elif kind == TRUE:
            new_gate[gate] = result.true()
        elif kind == FALSE:
            new_gate[gate] = result.false()
        elif kind == NOT:
            child = circuit.children(gate)[0]
            if circuit.kind(child) == VAR and circuit.label(child) not in keep:
                new_gate[gate] = result.true()
            else:
                new_gate[gate] = result.not_(new_gate[child])
        elif kind == AND:
            if not sat[gate]:
                new_gate[gate] = result.false()
            else:
                new_gate[gate] = result.and_(
                    new_gate[c] for c in circuit.children(gate)
                )
        else:  # OR: drop unsatisfiable children to preserve determinism
            kids = [new_gate[c] for c in circuit.children(gate) if sat[c]]
            new_gate[gate] = result.or_(kids)
    result.output = new_gate[root]
    return result


# ----------------------------------------------------------------------
# Model enumeration (testing helper)
# ----------------------------------------------------------------------

def enumerate_models(
    circuit: Circuit,
    over: Iterable[Hashable] | None = None,
    root: int | None = None,
    limit: int = 24,
) -> Iterator[frozenset]:
    """Yield all satisfying assignments over ``over`` (default: the
    circuit's reachable variables).  Exponential; for tests only."""
    if root is None:
        root = circuit.output_gate()
    labels = sorted(
        circuit.reachable_vars(root) if over is None else set(over), key=repr
    )
    if len(labels) > limit:
        raise ValueError(f"{len(labels)} variables exceeds enumeration limit {limit}")
    for mask in range(1 << len(labels)):
        chosen = frozenset(labels[i] for i in range(len(labels)) if mask >> i & 1)
        if circuit.evaluate(chosen, root=root):
            yield chosen


# ----------------------------------------------------------------------
# c2d .nnf format
# ----------------------------------------------------------------------

def to_nnf_text(circuit: Circuit, root: int | None = None) -> tuple[str, dict[int, Hashable]]:
    """Serialize a circuit in NNF to the c2d ``.nnf`` text format.

    Returns ``(text, index_to_label)`` where the mapping explains which
    DIMACS-style variable index corresponds to which circuit label.
    """
    if root is None:
        root = circuit.output_gate()
    flags = circuit.reachable(root)
    labels = sorted(
        {circuit.label(g) for g in range(root + 1) if flags[g] and circuit.kind(g) == VAR},
        key=repr,
    )
    index = {lbl: i + 1 for i, lbl in enumerate(labels)}
    lines: list[str] = []
    node_id: dict[int, int] = {}
    edges = 0
    for gate in range(root + 1):
        if not flags[gate]:
            continue
        kind = circuit.kind(gate)
        if kind == VAR:
            lines.append(f"L {index[circuit.label(gate)]}")
        elif kind == NOT:
            child = circuit.children(gate)[0]
            if circuit.kind(child) != VAR:
                raise CircuitError(".nnf requires negation above variables only")
            lines.append(f"L {-index[circuit.label(child)]}")
        elif kind == TRUE:
            lines.append("A 0")
        elif kind == FALSE:
            lines.append("O 0 0")
        elif kind == AND:
            kids = [node_id[c] for c in circuit.children(gate)]
            edges += len(kids)
            lines.append("A " + " ".join(str(x) for x in [len(kids)] + kids))
        else:  # OR
            kids = [node_id[c] for c in circuit.children(gate)]
            edges += len(kids)
            lines.append("O 0 " + " ".join(str(x) for x in [len(kids)] + kids))
        node_id[gate] = len(lines) - 1
    header = f"nnf {len(lines)} {edges} {len(labels)}"
    return header + "\n" + "\n".join(lines) + "\n", {
        i: l  # REP002: index-sorted so the label map is order-stable
        for l, i in sorted(index.items(), key=lambda entry: entry[1])
    }


def from_nnf_text(text: str, labels: Mapping[int, Hashable] | None = None) -> Circuit:
    """Parse a c2d ``.nnf`` file into a :class:`Circuit`.

    ``labels`` optionally maps DIMACS variable indices to labels; indices
    without a label become the label ``("v", index)``.
    """
    lines = [ln for ln in text.splitlines() if ln.strip() and not ln.startswith("c")]
    if not lines or not lines[0].startswith("nnf"):
        raise CircuitError("missing 'nnf' header")
    circuit = Circuit()
    nodes: list[int] = []

    def label_of(idx: int) -> Hashable:
        if labels is not None and idx in labels:
            return labels[idx]
        return ("v", idx)

    for line in lines[1:]:
        parts = line.split()
        tag = parts[0]
        if tag == "L":
            lit = int(parts[1])
            gate = circuit.literal(label_of(abs(lit)), lit > 0)
        elif tag == "A":
            count = int(parts[1])
            kids = tuple(nodes[int(p)] for p in parts[2 : 2 + count])
            gate = circuit.true() if count == 0 else circuit.raw_and(kids)
        elif tag == "O":
            count = int(parts[2])
            kids = tuple(nodes[int(p)] for p in parts[3 : 3 + count])
            gate = circuit.false() if count == 0 else circuit.raw_or(kids)
        else:
            raise CircuitError(f"unknown .nnf node tag {tag!r}")
        nodes.append(gate)
    circuit.output = nodes[-1]
    return circuit
