"""Boolean circuits over named variables.

This module provides the :class:`Circuit` data structure used everywhere in
the library: query lineage (data provenance) is a Boolean circuit whose
variables are database facts, the knowledge compiler emits circuits in
d-DNNF form, and the Shapley algorithms consume them.

Design notes
------------
Gates are plain integers.  A circuit owns parallel arrays (kind, children,
label) indexed by gate id, with the invariant that children always have
smaller ids than their parents.  Bottom-up passes are therefore simple
loops over ``range(len(circuit))`` and never need an explicit topological
sort.  Structurally identical gates are hash-consed, so building the same
sub-circuit twice yields the same gate id.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Hashable, Iterable, Iterator, Mapping


class GateKind(IntEnum):
    """The kind of a circuit gate."""

    VAR = 0
    TRUE = 1
    FALSE = 2
    AND = 3
    OR = 4
    NOT = 5


# Short aliases used pervasively in hot loops.
VAR = GateKind.VAR
TRUE = GateKind.TRUE
FALSE = GateKind.FALSE
AND = GateKind.AND
OR = GateKind.OR
NOT = GateKind.NOT


class CircuitError(ValueError):
    """Raised on structurally invalid circuit operations."""


class Circuit:
    """A Boolean circuit DAG over hashable variable labels.

    Variables are identified by arbitrary hashable *labels* (in this
    library, usually :class:`repro.db.database.Fact` objects or strings).
    Constructor methods (:meth:`var`, :meth:`and_`, :meth:`or_`,
    :meth:`not_`, :meth:`true`, :meth:`false`) return gate ids; the root is
    designated through :attr:`output`.

    Constant simplification is applied during construction (e.g. an AND
    with a FALSE child collapses to FALSE), so circuits built through this
    API never contain constant gates except possibly at the root or where
    a caller explicitly keeps them.
    """

    __slots__ = ("_kinds", "_children", "_labels", "_var_gates", "_cache", "output")

    def __init__(self) -> None:
        self._kinds: list[int] = []
        self._children: list[tuple[int, ...]] = []
        self._labels: list[Hashable | None] = []
        self._var_gates: dict[Hashable, int] = {}
        self._cache: dict[tuple, int] = {}
        self.output: int | None = None

    # ------------------------------------------------------------------
    # Gate construction
    # ------------------------------------------------------------------

    def _add(self, kind: int, children: tuple[int, ...], label: Hashable | None = None) -> int:
        key = (kind, children, label)
        gate = self._cache.get(key)
        if gate is not None:
            return gate
        gate = len(self._kinds)
        self._kinds.append(kind)
        self._children.append(children)
        self._labels.append(label)
        self._cache[key] = gate
        return gate

    def var(self, label: Hashable) -> int:
        """Return the gate for variable ``label``, creating it if needed."""
        gate = self._var_gates.get(label)
        if gate is None:
            gate = self._add(VAR, (), label)
            self._var_gates[label] = gate
        return gate

    def true(self) -> int:
        """Return the constant-TRUE gate."""
        return self._add(TRUE, ())

    def false(self) -> int:
        """Return the constant-FALSE gate."""
        return self._add(FALSE, ())

    def not_(self, child: int) -> int:
        """Return a gate computing the negation of ``child``."""
        kind = self._kinds[child]
        if kind == TRUE:
            return self.false()
        if kind == FALSE:
            return self.true()
        if kind == NOT:
            return self._children[child][0]
        return self._add(NOT, (child,))

    def and_(self, children: Iterable[int]) -> int:
        """Return a gate computing the conjunction of ``children``.

        TRUE children are dropped; a FALSE child collapses the gate to
        FALSE; duplicate children are merged; an empty conjunction is TRUE
        and a singleton conjunction is the child itself.
        """
        kept: list[int] = []
        seen: set[int] = set()
        for child in children:
            kind = self._kinds[child]
            if kind == TRUE:
                continue
            if kind == FALSE:
                return self.false()
            if child not in seen:
                seen.add(child)
                kept.append(child)
        if not kept:
            return self.true()
        if len(kept) == 1:
            return kept[0]
        return self._add(AND, tuple(kept))

    def or_(self, children: Iterable[int]) -> int:
        """Return a gate computing the disjunction of ``children``.

        Dual simplifications of :meth:`and_`.
        """
        kept: list[int] = []
        seen: set[int] = set()
        for child in children:
            kind = self._kinds[child]
            if kind == FALSE:
                continue
            if kind == TRUE:
                return self.true()
            if child not in seen:
                seen.add(child)
                kept.append(child)
        if not kept:
            return self.false()
        if len(kept) == 1:
            return kept[0]
        return self._add(OR, tuple(kept))

    def literal(self, label: Hashable, positive: bool) -> int:
        """Return the gate for the literal ``label`` / ``not label``."""
        gate = self.var(label)
        return gate if positive else self.not_(gate)

    # Raw constructors used by the knowledge compiler, which must keep
    # gates it knows to be deterministic/decomposable even when the
    # generic simplifier would restructure them.

    def raw_and(self, children: tuple[int, ...]) -> int:
        """Add an AND gate without simplification (children preserved)."""
        return self._add(AND, children)

    def raw_or(self, children: tuple[int, ...]) -> int:
        """Add an OR gate without simplification (children preserved)."""
        return self._add(OR, children)

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._kinds)

    @property
    def size(self) -> int:
        """Number of gates in the circuit (including unreachable ones)."""
        return len(self._kinds)

    @property
    def edge_count(self) -> int:
        """Total number of wires (child references)."""
        return sum(len(ch) for ch in self._children)

    def kind(self, gate: int) -> GateKind:
        """Return the :class:`GateKind` of ``gate``."""
        return GateKind(self._kinds[gate])

    def children(self, gate: int) -> tuple[int, ...]:
        """Return the child gate ids of ``gate``."""
        return self._children[gate]

    def label(self, gate: int) -> Hashable:
        """Return the variable label of a VAR gate."""
        if self._kinds[gate] != VAR:
            raise CircuitError(f"gate {gate} is not a variable gate")
        return self._labels[gate]

    def gates(self) -> Iterator[int]:
        """Iterate over all gate ids in topological (bottom-up) order."""
        return iter(range(len(self._kinds)))

    def variables(self) -> set[Hashable]:
        """Return the set of all variable labels present in the circuit."""
        return set(self._var_gates)

    def var_gate(self, label: Hashable) -> int | None:
        """Return the gate id of variable ``label``, or None if absent."""
        return self._var_gates.get(label)

    def output_gate(self) -> int:
        """Return the output gate id, raising if it was never set."""
        if self.output is None:
            raise CircuitError("circuit has no output gate")
        return self.output

    def gate_counts(self) -> dict[GateKind, int]:
        """Return a histogram of gate kinds (useful in benchmarks)."""
        counts: dict[GateKind, int] = {kind: 0 for kind in GateKind}
        for kind in self._kinds:
            counts[GateKind(kind)] += 1
        return counts

    # ------------------------------------------------------------------
    # Reachability and variable sets
    # ------------------------------------------------------------------

    def reachable(self, root: int | None = None) -> list[bool]:
        """Return a flag per gate: is it reachable from ``root``?"""
        if root is None:
            root = self.output_gate()
        flags = [False] * len(self._kinds)
        stack = [root]
        flags[root] = True
        while stack:
            gate = stack.pop()
            for child in self._children[gate]:
                if not flags[child]:
                    flags[child] = True
                    stack.append(child)
        return flags

    def reachable_vars(self, root: int | None = None) -> set[Hashable]:
        """Return the labels of variables reachable from ``root``."""
        flags = self.reachable(root)
        return {
            self._labels[gate]
            for gate, kind in enumerate(self._kinds)
            if kind == VAR and flags[gate]
        }

    def gate_var_sets(self, root: int | None = None) -> dict[int, frozenset[int]]:
        """Compute ``Vars(g)`` for every gate reachable from ``root``.

        Variable sets are represented as frozensets of VAR *gate ids* (not
        labels), which is both faster and unambiguous.
        """
        if root is None:
            root = self.output_gate()
        flags = self.reachable(root)
        empty: frozenset[int] = frozenset()
        sets: dict[int, frozenset[int]] = {}
        for gate in range(root + 1):
            if not flags[gate]:
                continue
            kind = self._kinds[gate]
            if kind == VAR:
                sets[gate] = frozenset((gate,))
            elif kind in (TRUE, FALSE):
                sets[gate] = empty
            else:
                children = self._children[gate]
                if len(children) == 1:
                    sets[gate] = sets[children[0]]
                else:
                    union: frozenset[int] = sets[children[0]]
                    for child in children[1:]:
                        union = union | sets[child]
                    sets[gate] = union
        return sets

    def structural_signature(
        self, root: int | None = None
    ) -> tuple[tuple, tuple]:
        """Canonical, label-free form of the circuit reachable from
        ``root``, plus the variable labels in canonical order.

        Returns ``(signature, labels)`` where ``signature`` is a tuple
        with one entry per reachable gate — ``(kind, i)`` for the
        canonical *i*-th distinct variable, ``(kind, *children)`` with
        canonically renumbered child ids otherwise — and ``labels[i]``
        is the actual label of canonical variable *i* (first-occurrence
        order along the bottom-up gate sweep).

        Two circuits have equal signatures iff they are identical up to
        a bijective renaming of their variable labels, which makes the
        signature the key of the engine layer's
        :class:`~repro.engine.cache.ArtifactCache`: isomorphic lineages
        (the same query shape instantiated on different answer tuples)
        share one compiled artifact, recovered per tuple by renaming
        canonical variable *i* back to ``labels[i]``.
        """
        if root is None:
            root = self.output_gate()
        flags = self.reachable(root)
        canon: dict[int, int] = {}
        labels: list[Hashable] = []
        parts: list[tuple] = []
        for gate in range(root + 1):
            if not flags[gate]:
                continue
            kind = self._kinds[gate]
            if kind == VAR:
                parts.append((kind, len(labels)))
                labels.append(self._labels[gate])
            else:
                parts.append(
                    (kind, *[canon[c] for c in self._children[gate]])
                )
            canon[gate] = len(canon)
        return tuple(parts), tuple(labels)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, true_vars: Iterable[Hashable], root: int | None = None) -> bool:
        """Evaluate the circuit on the assignment where exactly the
        variables in ``true_vars`` are true.

        ``true_vars`` may be any iterable of labels; labels not appearing
        in the circuit are ignored.
        """
        if root is None:
            root = self.output_gate()
        true_set = true_vars if isinstance(true_vars, (set, frozenset)) else set(true_vars)
        values = [False] * (root + 1)
        kinds = self._kinds
        childs = self._children
        labels = self._labels
        for gate in range(root + 1):
            kind = kinds[gate]
            if kind == VAR:
                values[gate] = labels[gate] in true_set
            elif kind == TRUE:
                values[gate] = True
            elif kind == FALSE:
                values[gate] = False
            elif kind == AND:
                values[gate] = all(values[c] for c in childs[gate])
            elif kind == OR:
                values[gate] = any(values[c] for c in childs[gate])
            else:  # NOT
                values[gate] = not values[childs[gate][0]]
        return values[root]

    def evaluate_batch(
        self,
        assignments: Mapping[Hashable, int],
        width: int,
        root: int | None = None,
    ) -> int:
        """Evaluate ``width`` assignments simultaneously using bit-parallel
        integer arithmetic.

        ``assignments[label]`` is an integer whose bit *i* gives the value
        of the variable in assignment *i*.  Returns an integer whose bit
        *i* is the circuit output on assignment *i*.  Missing labels are
        treated as all-false.  This is the workhorse of the Monte Carlo
        and Kernel SHAP baselines.
        """
        if root is None:
            root = self.output_gate()
        mask = (1 << width) - 1
        values = [0] * (root + 1)
        kinds = self._kinds
        childs = self._children
        labels = self._labels
        for gate in range(root + 1):
            kind = kinds[gate]
            if kind == VAR:
                values[gate] = assignments.get(labels[gate], 0) & mask
            elif kind == TRUE:
                values[gate] = mask
            elif kind == FALSE:
                values[gate] = 0
            elif kind == AND:
                acc = mask
                for child in childs[gate]:
                    acc &= values[child]
                    if not acc:
                        break
                values[gate] = acc
            elif kind == OR:
                acc = 0
                for child in childs[gate]:
                    acc |= values[child]
                    if acc == mask:
                        break
                values[gate] = acc
            else:  # NOT
                values[gate] = ~values[childs[gate][0]] & mask
        return values[root]

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def condition(self, assignment: Mapping[Hashable, bool]) -> "Circuit":
        """Return a new circuit with the given variables fixed.

        This is the partial evaluation ``C[f -> 0/1]`` used by Algorithm 1
        and by the exogenous-variable elimination of the pipeline
        (``ELin`` is ``Lin`` with all exogenous facts set to 1).  Constant
        propagation happens on the fly, so the result is simplified.
        """
        result = Circuit()
        root = self.output_gate()
        flags = self.reachable(root)
        mapping: dict[int, int] = {}
        for gate in range(root + 1):
            if not flags[gate]:
                continue
            kind = self._kinds[gate]
            if kind == VAR:
                lbl = self._labels[gate]
                if lbl in assignment:
                    mapping[gate] = result.true() if assignment[lbl] else result.false()
                else:
                    mapping[gate] = result.var(lbl)
            elif kind == TRUE:
                mapping[gate] = result.true()
            elif kind == FALSE:
                mapping[gate] = result.false()
            elif kind == AND:
                mapping[gate] = result.and_(mapping[c] for c in self._children[gate])
            elif kind == OR:
                mapping[gate] = result.or_(mapping[c] for c in self._children[gate])
            else:  # NOT
                mapping[gate] = result.not_(mapping[self._children[gate][0]])
        result.output = mapping[root]
        return result

    def prune(self) -> "Circuit":
        """Return a copy containing only gates reachable from the output."""
        return self.condition({})

    def flatten(self) -> "Circuit":
        """Return an equivalent circuit with nested same-kind AND/OR
        gates inlined into their parents.

        ``or(or(a, b), c)`` becomes ``or(a, b, c)``.  Lineage circuits
        built by the evaluation engine chain binary ORs; flattening them
        recovers the flat DNF/CNF shape assumed by the paper's worked
        examples and shrinks the Tseytin CNF.
        """
        result = Circuit()
        root = self.output_gate()
        flags = self.reachable(root)
        mapping: dict[int, int] = {}
        for gate in range(root + 1):
            if not flags[gate]:
                continue
            kind = self._kinds[gate]
            if kind == VAR:
                mapping[gate] = result.var(self._labels[gate])
            elif kind == TRUE:
                mapping[gate] = result.true()
            elif kind == FALSE:
                mapping[gate] = result.false()
            elif kind == NOT:
                mapping[gate] = result.not_(mapping[self._children[gate][0]])
            else:
                merged: list[int] = []
                for child in self._children[gate]:
                    mapped = mapping[child]
                    if result._kinds[mapped] == kind:
                        merged.extend(result._children[mapped])
                    else:
                        merged.append(mapped)
                if kind == AND:
                    mapping[gate] = result.and_(merged)
                else:
                    mapping[gate] = result.or_(merged)
        result.output = mapping[root]
        # Flattening leaves the superseded nested gates behind; prune
        # them so downstream passes (e.g. Tseytin) never see them.
        return result.prune()

    def rename(self, mapping: Mapping[Hashable, Hashable]) -> "Circuit":
        """Return a copy with variable labels renamed through ``mapping``.

        Labels not present in ``mapping`` are kept unchanged.
        """
        result = Circuit()
        root = self.output_gate()
        flags = self.reachable(root)
        gates: dict[int, int] = {}
        for gate in range(root + 1):
            if not flags[gate]:
                continue
            kind = self._kinds[gate]
            if kind == VAR:
                lbl = self._labels[gate]
                gates[gate] = result.var(mapping.get(lbl, lbl))
            elif kind == TRUE:
                gates[gate] = result.true()
            elif kind == FALSE:
                gates[gate] = result.false()
            elif kind == AND:
                gates[gate] = result.and_(gates[c] for c in self._children[gate])
            elif kind == OR:
                gates[gate] = result.or_(gates[c] for c in self._children[gate])
            else:
                gates[gate] = result.not_(gates[self._children[gate][0]])
        result.output = gates[root]
        return result

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self, root: int | None = None) -> dict:
        """A JSON-serializable rendering of the gates reachable from
        ``root``, suitable for :meth:`from_payload`.

        Gate structure is preserved verbatim (no simplification on the
        way out or back in), so a deserialized d-DNNF is structurally
        identical to the original — determinism and decomposability
        survive the round trip.  Variable labels must themselves be
        JSON-serializable; the engine layer's persistent store only
        serializes *canonical* circuits, whose labels are small ints.
        """
        if root is None:
            root = self.output_gate()
        flags = self.reachable(root)
        dense: dict[int, int] = {}
        kinds: list[int] = []
        children: list[list[int]] = []
        labels: list[Hashable | None] = []
        for gate in range(root + 1):
            if not flags[gate]:
                continue
            dense[gate] = len(kinds)
            kinds.append(int(self._kinds[gate]))
            children.append([dense[c] for c in self._children[gate]])
            labels.append(self._labels[gate])
        return {
            "kinds": kinds,
            "children": children,
            "labels": labels,
            "output": dense[root],
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Circuit":
        """Rebuild a circuit written by :meth:`to_payload`.

        Raises :class:`CircuitError` on malformed payloads (missing
        keys, dangling child references, bad gate kinds) so callers can
        treat truncated/corrupt artifacts as cache misses.
        """
        try:
            kinds = payload["kinds"]
            children = payload["children"]
            labels = payload["labels"]
            output = payload["output"]
        except (KeyError, TypeError) as exc:
            raise CircuitError(f"malformed circuit payload: {exc}") from None
        if not (len(kinds) == len(children) == len(labels)):
            raise CircuitError("malformed circuit payload: ragged gate arrays")
        circuit = cls()
        valid_kinds = {int(k) for k in GateKind}
        for gate, (kind, kids, label) in enumerate(zip(kinds, children, labels)):
            if kind not in valid_kinds:
                raise CircuitError(f"malformed circuit payload: kind {kind!r}")
            kids = tuple(kids)
            if any(not isinstance(c, int) or not 0 <= c < gate for c in kids):
                raise CircuitError(
                    f"malformed circuit payload: gate {gate} has bad children"
                )
            circuit._kinds.append(kind)
            circuit._children.append(kids)
            circuit._labels.append(label)
            if kind == VAR:
                circuit._var_gates[label] = gate
            circuit._cache[(kind, kids, label)] = gate
        if not isinstance(output, int) or not 0 <= output < len(kinds):
            raise CircuitError("malformed circuit payload: bad output gate")
        circuit.output = output
        return circuit

    # ------------------------------------------------------------------
    # Introspection / debugging
    # ------------------------------------------------------------------

    def to_nested(self, gate: int | None = None) -> object:
        """Return a nested-tuple rendering of the circuit (for tests and
        debugging of small circuits only)."""
        if gate is None:
            gate = self.output_gate()
        kind = self._kinds[gate]
        if kind == VAR:
            return self._labels[gate]
        if kind == TRUE:
            return True
        if kind == FALSE:
            return False
        name = {AND: "and", OR: "or", NOT: "not"}[kind]
        return (name, *[self.to_nested(c) for c in self._children[gate]])

    def to_dot(self, root: int | None = None) -> str:
        """Render the circuit in Graphviz DOT format."""
        if root is None:
            root = self.output_gate()
        flags = self.reachable(root)
        lines = ["digraph circuit {", "  rankdir=BT;"]
        symbols = {AND: "∧", OR: "∨", NOT: "¬", TRUE: "1", FALSE: "0"}
        for gate in range(root + 1):
            if not flags[gate]:
                continue
            kind = self._kinds[gate]
            if kind == VAR:
                text = str(self._labels[gate])
                lines.append(f'  g{gate} [label="{text}" shape=box];')
            else:
                lines.append(f'  g{gate} [label="{symbols[kind]}"];')
            for child in self._children[gate]:
                lines.append(f"  g{child} -> g{gate};")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        out = self.output if self.output is not None else "?"
        return f"Circuit(gates={len(self)}, vars={len(self._var_gates)}, output={out})"


def circuit_from_nested(expr: object) -> Circuit:
    """Build a circuit from a nested-tuple expression.

    The inverse of :meth:`Circuit.to_nested`; handy in tests:
    ``("or", "a", ("and", "b", "c"))``.
    """
    circuit = Circuit()

    def build(node: object) -> int:
        if node is True:
            return circuit.true()
        if node is False:
            return circuit.false()
        if isinstance(node, tuple) and node and node[0] in ("and", "or", "not"):
            op, *args = node
            if op == "and":
                return circuit.and_([build(a) for a in args])
            if op == "or":
                return circuit.or_([build(a) for a in args])
            if len(args) != 1:
                raise CircuitError("'not' takes exactly one argument")
            return circuit.not_(build(args[0]))
        return circuit.var(node)

    circuit.output = build(expr)
    return circuit
