"""Boolean circuit substrate: circuits, CNF, Tseytin, d-DNNF algorithms."""

from .circuit import Circuit, CircuitError, GateKind, circuit_from_nested
from .cnf import Cnf, CnfError
from .dnnf import (
    NotDecomposableError,
    NotDeterministicError,
    check_decision_form,
    check_decomposable,
    check_deterministic_exhaustive,
    complete_counts,
    count_models_by_size,
    eliminate_auxiliary,
    enumerate_models,
    from_nnf_text,
    model_count,
    probability,
    smooth,
    to_nnf_text,
    weighted_model_count,
)
from .tseytin import tseytin_transform

__all__ = [
    "Circuit",
    "CircuitError",
    "GateKind",
    "circuit_from_nested",
    "Cnf",
    "CnfError",
    "NotDecomposableError",
    "NotDeterministicError",
    "check_decision_form",
    "check_decomposable",
    "check_deterministic_exhaustive",
    "complete_counts",
    "count_models_by_size",
    "eliminate_auxiliary",
    "enumerate_models",
    "from_nnf_text",
    "model_count",
    "probability",
    "smooth",
    "to_nnf_text",
    "weighted_model_count",
    "tseytin_transform",
]
