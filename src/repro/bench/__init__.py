"""Experiment harness shared by the ``benchmarks/`` scripts."""

from .reporting import (
    TABLE1_HEADERS,
    format_table,
    render_csv,
    table1_rows,
    write_csv,
)
from .runner import OutputRecord, QueryRun, run_output, run_query, run_suite
from .stats import (
    SIZE_BUCKETS,
    bucket_of,
    group_by_bucket,
    mean,
    median,
    percentile,
    timing_row,
)

__all__ = [
    "TABLE1_HEADERS", "format_table", "render_csv", "table1_rows",
    "write_csv",
    "OutputRecord", "QueryRun", "run_output", "run_query", "run_suite",
    "SIZE_BUCKETS", "bucket_of", "group_by_bucket", "mean", "median",
    "percentile", "timing_row",
]
