"""Per-output-tuple experiment runner.

The paper's evaluation loop is: run each query, capture the provenance
of every output tuple, push each through the exact pipeline under a
budget, and record sizes/timings/success.  :func:`run_query` performs
exactly that and returns plain-data records that the table/figure
benches aggregate.

The exact pipeline is resolved through the engine registry
(``get_engine("exact")``); an optional shared
:class:`~repro.engine.cache.ArtifactCache` lets suite runs reuse
compiled artifacts across isomorphic output tuples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Hashable

from ..compiler.knowledge import CompilationBudget
from ..db.database import Database
from ..db.evaluate import LineageResult, lineage
from ..engine.base import EngineOptions
from ..engine.cache import ArtifactCache
from ..engine.registry import get_engine
from ..workloads.suite import QueryShape, QuerySpec, describe


@dataclass
class OutputRecord:
    """One output tuple's trip through the exact pipeline."""

    dataset: str
    query: str
    answer: tuple
    n_facts: int
    circuit_size: int
    cnf_vars: int
    cnf_clauses: int
    ddnnf_size: int
    status: str
    compile_seconds: float
    shapley_seconds: float
    values: dict[Hashable, Fraction] | None = None
    #: the endogenous-lineage circuit (kept only when requested; used by
    #: the inexact-method benches to rerun baselines on the same input)
    circuit: object | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + self.shapley_seconds


@dataclass
class QueryRun:
    """All records of one query, plus query-level metadata."""

    spec: QuerySpec
    shape: QueryShape
    eval_seconds: float
    records: list[OutputRecord] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        if not self.records:
            return float("nan")
        return sum(r.ok for r in self.records) / len(self.records)

    def ok_records(self) -> list[OutputRecord]:
        return [r for r in self.records if r.ok]


def run_query(
    database: Database,
    spec: QuerySpec,
    dataset: str = "",
    budget: CompilationBudget | None = None,
    keep_values: bool = False,
    max_outputs: int | None = None,
    method: str = "derivative",
    cache: ArtifactCache | None = None,
) -> QueryRun:
    """Run one query end to end: provenance for every output tuple, then
    the exact pipeline per tuple under ``budget``.

    With ``keep_values=True`` each record also keeps its lineage circuit
    so downstream experiments can rerun other methods on it.  With a
    shared ``cache``, isomorphic output tuples compile once."""
    plan = spec.plan(database)
    start = time.perf_counter()
    result = lineage(plan, database, endogenous_only=True)
    eval_seconds = time.perf_counter() - start
    run = QueryRun(spec, describe(spec, database), eval_seconds)

    answers = result.tuples()
    if max_outputs is not None:
        answers = answers[:max_outputs]
    for answer in answers:
        run.records.append(
            run_output(
                result, answer, dataset, spec.name, budget, keep_values,
                method, cache,
            )
        )
    return run


def run_output(
    result: LineageResult,
    answer: tuple,
    dataset: str,
    query_name: str,
    budget: CompilationBudget | None = None,
    keep_values: bool = False,
    method: str = "derivative",
    cache: ArtifactCache | None = None,
) -> OutputRecord:
    """Push one output tuple through the exact engine."""
    circuit = result.lineage_of(answer)
    endo = sorted(circuit.reachable_vars())
    options = EngineOptions(budget=budget, timeout=None, mode=method, cache=cache)
    outcome = get_engine("exact").explain_circuit(circuit, endo, options).detail
    return OutputRecord(
        dataset=dataset,
        query=query_name,
        answer=answer,
        n_facts=outcome.stats.n_facts,
        circuit_size=outcome.stats.circuit_size,
        cnf_vars=outcome.stats.cnf_vars,
        cnf_clauses=outcome.stats.cnf_clauses,
        ddnnf_size=outcome.stats.ddnnf_size,
        status=outcome.status,
        compile_seconds=outcome.compile_seconds,
        shapley_seconds=outcome.shapley_seconds,
        values=outcome.values if keep_values else None,
        circuit=circuit if keep_values else None,
    )


def run_suite(
    database: Database,
    specs: list[QuerySpec],
    dataset: str,
    budget: CompilationBudget | None = None,
    keep_values: bool = False,
    max_outputs: int | None = None,
    cache: ArtifactCache | None = None,
) -> list[QueryRun]:
    """Run a whole query suite (one dataset column of Table 1)."""
    return [
        run_query(
            database, spec, dataset, budget,
            keep_values=keep_values, max_outputs=max_outputs, cache=cache,
        )
        for spec in specs
    ]
