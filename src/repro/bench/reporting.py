"""Rendering of paper-style tables.

The benchmark scripts print their tables with these helpers and also
write them under ``benchmarks/results/`` so EXPERIMENTS.md can link to
stable artifacts.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

from .runner import QueryRun
from .stats import timing_row


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain ASCII table with right-padded columns."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def table1_rows(runs: Sequence[QueryRun], dataset: str) -> list[list[object]]:
    """Rows in the format of the paper's Table 1."""
    rows: list[list[object]] = []
    for run in runs:
        ok = run.ok_records()
        kc = timing_row([r.compile_seconds for r in ok])
        alg1 = timing_row([r.shapley_seconds for r in ok])
        rows.append(
            [
                dataset,
                run.spec.name,
                run.shape.joined_tables,
                run.shape.filter_conditions,
                run.eval_seconds,
                len(run.records),
                f"{100 * run.success_rate:.1f}%" if run.records else "-",
                kc["mean"], kc["p25"], kc["p50"], kc["p75"], kc["p99"],
                alg1["mean"], alg1["p25"], alg1["p50"], alg1["p75"], alg1["p99"],
            ]
        )
    return rows


TABLE1_HEADERS = [
    "Dataset", "Query", "#Joined", "#Filters", "Eval[s]", "#Outputs",
    "Success",
    "KC mean", "KC p25", "KC p50", "KC p75", "KC p99",
    "A1 mean", "A1 p25", "A1 p50", "A1 p75", "A1 p99",
]


def write_csv(path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Write a results CSV (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """The CSV text itself (used in tests)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()
