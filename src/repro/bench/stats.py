"""Statistics helpers for the experiment harness.

The paper reports latency percentiles (mean/p25/p50/p75/p99 in Table 1)
and aggregates quality metrics into buckets by provenance size
(Figure 7); this module provides those primitives without any third-
party dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not samples:
        return float("nan")
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean (NaN on empty input)."""
    if not samples:
        return float("nan")
    return sum(samples) / len(samples)


def median(samples: Sequence[float]) -> float:
    """Median (NaN on empty input)."""
    return percentile(samples, 0.5)


def timing_row(samples: Sequence[float]) -> dict[str, float]:
    """The mean/p25/p50/p75/p99 cells of one Table 1 row."""
    return {
        "mean": mean(samples),
        "p25": percentile(samples, 0.25),
        "p50": percentile(samples, 0.50),
        "p75": percentile(samples, 0.75),
        "p99": percentile(samples, 0.99),
    }


#: Figure 7's provenance-size buckets.
SIZE_BUCKETS: tuple[tuple[int, int], ...] = (
    (1, 10), (11, 25), (26, 50), (51, 100), (101, 200), (201, 400),
)


def bucket_label(low: int, high: int) -> str:
    return f"{low}-{high}"


def bucket_of(n_facts: int) -> str | None:
    """The Figure 7 bucket containing ``n_facts`` (None if outside)."""
    for low, high in SIZE_BUCKETS:
        if low <= n_facts <= high:
            return bucket_label(low, high)
    if n_facts > SIZE_BUCKETS[-1][1]:
        return f">{SIZE_BUCKETS[-1][1]}"
    return None


def group_by_bucket(
    pairs: Iterable[tuple[int, float]]
) -> dict[str, list[float]]:
    """Group (n_facts, metric) pairs into Figure 7's buckets."""
    grouped: dict[str, list[float]] = {}
    for n_facts, value in pairs:
        label = bucket_of(n_facts)
        if label is not None:
            grouped.setdefault(label, []).append(value)
    return grouped
