"""Pure scheduling and placement logic for batched explanation.

Extracted from :class:`~repro.engine.session.ExplainSession` so that the
decisions — which answers share a lineage shape, which job warms each
shape, and which shard (worker) each job lands on — are plain data
transformations, unit-testable without a database, an executor, or a
socket.  The session builds :class:`Job` objects (binding an answer to
its circuit, player list, and per-answer options), hands them to
:func:`plan_batch`, and passes the resulting :class:`BatchPlan` to a
transport (:mod:`repro.engine.service`); the socket coordinator reuses
:func:`assign_shards` to place jobs on workers with shape affinity.

Scheduling invariants
---------------------
* **Warm-up planning** — for cache-using engines, exactly one job per
  canonical shape (the batch's first occurrence) goes into the warm
  wave; every other job of that shape is a guaranteed cache/store hit
  once its representative has run.
* **Shape affinity** — :func:`assign_shards` keeps all jobs of one
  shape on one shard, so a worker that compiled a shape serves its
  siblings from its own in-memory cache even without a shared store.
* **Determinism** — both functions are pure: same jobs in, same plan
  out, regardless of thread timing or worker arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence, TypeVar

from .base import EngineOptions

T = TypeVar("T")


@dataclass
class Job:
    """One answer's unit of work: a prepared circuit plus options.

    ``options`` already carries everything answer-specific (the derived
    sampling seed, the canonicalization handle); ``signature`` is the
    canonical structural signature for cache-using engines, ``None``
    for engines that never compile.
    """

    index: int
    answer: tuple
    circuit: object
    players: list
    options: EngineOptions
    signature: object = None

    def portable(self) -> "Job":
        """A copy safe to ship to another process or host.

        The in-memory cache and canonicalization handle are process-
        local (and unpicklable), so they are stripped — remote workers
        attach their own cache — and the signature is replaced by its
        stable hex digest, which is all placement needs.
        """
        from .store import signature_digest  # local import: avoid cycle

        signature = (
            self.signature
            if self.signature is None or isinstance(self.signature, str)
            else signature_digest(self.signature)
        )
        return replace(
            self,
            options=self.options.with_(cache=None, artifacts=None),
            signature=signature,
        )

    def affinity(self) -> str:
        """The placement key: jobs with equal keys share a shard."""
        if self.signature is None:
            return f"job:{self.index}"
        if isinstance(self.signature, str):
            return self.signature
        from .store import signature_digest  # local import: avoid cycle

        return signature_digest(self.signature)


@dataclass
class BatchPlan:
    """The execution plan of one ``explain_many`` batch.

    ``jobs`` is every job in answer order; ``warm_wave`` holds one
    representative per distinct shape (empty when ``deduplicated`` is
    false — sampling engines have nothing to warm), ``main_wave`` the
    rest.  Transports honour the one barrier that matters: a shape's
    main-wave jobs must not start before its warm representative has
    finished (or before the whole warm wave, which is a coarser but
    equally correct cut).
    """

    engine: str
    jobs: list[Job]
    warm_wave: list[Job]
    main_wave: list[Job]
    n_shapes: int
    deduplicated: bool
    #: Main-wave jobs grouped by shape, in first-occurrence order
    #: (the unit of batched execution when ``batched`` is true; empty
    #: groups are never emitted).  Only meaningful when deduplicated.
    groups: list[list[Job]] = None  # type: ignore[assignment]
    #: Whether transports should execute ``groups`` as whole-shape
    #: batched calls instead of one call per main-wave job.
    batched: bool = False

    def __post_init__(self) -> None:
        if self.groups is None:
            self.groups = [[job] for job in self.main_wave]


def plan_batch(
    engine: str, jobs: Sequence[Job], deduplicate: bool,
    batch: bool = False,
) -> BatchPlan:
    """Group ``jobs`` by canonical shape and plan the warm-up wave.

    With ``deduplicate`` false (engines that never touch the cache)
    every job is its own shape and the whole batch is one wave.  Jobs
    whose ``signature`` is ``None`` never share a group even when
    deduplicating — an unknown shape must not alias another.

    With ``batch`` true (engines whose ``supports_batch`` is set and
    sessions that keep ``batch_execution`` on), the plan additionally
    carries the main wave as same-shape *groups*: transports then
    execute each group as one batched engine call.  The warm wave is
    unchanged — each shape's representative still runs first and alone,
    so compile-once/store invariants hold batched or not.
    """
    jobs = list(jobs)
    if not deduplicate:
        return BatchPlan(engine, jobs, [], list(jobs), len(jobs), False)
    groups: dict[object, list[Job]] = {}
    for job in jobs:
        key = job.signature if job.signature is not None else ("\0job", job.index)
        groups.setdefault(key, []).append(job)
    warm_wave = [group[0] for group in groups.values()]
    main_wave = [job for group in groups.values() for job in group[1:]]
    shape_groups = [group[1:] for group in groups.values() if group[1:]]
    return BatchPlan(
        engine, jobs, warm_wave, main_wave, len(groups), True,
        groups=shape_groups if batch else None, batched=batch,
    )


def assign_shards(
    items: Sequence[T],
    n_shards: int,
    key: Callable[[T], str],
) -> list[list[T]]:
    """Partition ``items`` into at most ``n_shards`` affinity-preserving
    shards of balanced size.

    Items with equal ``key`` always land in the same shard, in their
    input order (so a group's warm representative stays first).  Groups
    are placed largest-first onto the least-loaded shard — the classic
    greedy bound: no shard exceeds the ideal share by more than the
    largest group.  Deterministic: ties break by group key, then shard
    position.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    groups: dict[str, list[T]] = {}
    for item in items:
        groups.setdefault(key(item), []).append(item)
    shards: list[list[T]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for group_key, group in sorted(
        groups.items(), key=lambda kv: (-len(kv[1]), kv[0])
    ):
        target = min(range(n_shards), key=lambda i: (loads[i], i))
        shards[target].extend(group)
        loads[target] += len(group)
    return shards
