"""Pure scheduling and placement logic for batched explanation.

Extracted from :class:`~repro.engine.session.ExplainSession` so that the
decisions — which answers share a lineage shape, which job warms each
shape, and which shard (worker) each job lands on — are plain data
transformations, unit-testable without a database, an executor, or a
socket.  The session builds :class:`Job` objects (binding an answer to
its circuit, player list, and per-answer options), hands them to
:func:`plan_batch`, and passes the resulting :class:`BatchPlan` to a
transport (:mod:`repro.engine.service`); the socket coordinator reuses
:func:`assign_shards` to place jobs on workers with shape affinity.

Scheduling invariants
---------------------
* **Warm-up planning** — for cache-using engines, exactly one job per
  canonical shape (the batch's first occurrence) goes into the warm
  wave; every other job of that shape is a guaranteed cache/store hit
  once its representative has run.
* **Shape affinity** — :func:`assign_shards` keeps all jobs of one
  shape on one shard, so a worker that compiled a shape serves its
  siblings from its own in-memory cache even without a shared store.
* **Determinism** — both functions are pure: same jobs in, same plan
  out, regardless of thread timing or worker arrival order.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence, TypeVar

from .base import EngineOptions

T = TypeVar("T")


@dataclass
class Job:
    """One answer's unit of work: a prepared circuit plus options.

    ``options`` already carries everything answer-specific (the derived
    sampling seed, the canonicalization handle); ``signature`` is the
    canonical structural signature for cache-using engines, ``None``
    for engines that never compile.
    """

    index: int
    answer: tuple
    circuit: object
    players: list
    options: EngineOptions
    signature: object = None

    def portable(self) -> "Job":
        """A copy safe to ship to another process or host.

        The in-memory cache and canonicalization handle are process-
        local (and unpicklable), so they are stripped — remote workers
        attach their own cache — and the signature is replaced by its
        stable hex digest, which is all placement needs.
        """
        from .store import signature_digest  # local import: avoid cycle

        signature = (
            self.signature
            if self.signature is None or isinstance(self.signature, str)
            else signature_digest(self.signature)
        )
        return replace(
            self,
            options=self.options.with_(cache=None, artifacts=None),
            signature=signature,
        )

    def affinity(self) -> str:
        """The placement key: jobs with equal keys share a shard."""
        if self.signature is None:
            return f"job:{self.index}"
        if isinstance(self.signature, str):
            return self.signature
        from .store import signature_digest  # local import: avoid cycle

        return signature_digest(self.signature)


def estimate_compile_cost(key: Sequence, scale: float = 1.0) -> float:
    """A priori cost estimate for compiling one canonical component.

    ``key`` is a canonical clause set (tuple of literal tuples).  The
    model is deliberately crude — d-DNNF compile time is exponential in
    the worst case — but it only has to *rank* components: literal
    count times ``log2`` of the variable count tracks the branching
    work of the compiler's divide-and-conquer well enough to put big
    components first.  ``scale`` converts the unitless raw score into
    seconds once calibrated (see :class:`CompileCostModel`).
    """
    n_literals = 0
    variables: set[int] = set()
    for clause in key:
        n_literals += len(clause)
        for lit in clause:
            variables.add(abs(lit))
    raw = float(n_literals) * max(1.0, math.log2(len(variables) + 1))
    return scale * raw


class CompileCostModel:
    """Calibrated compile-cost estimator for critical-path scheduling.

    Starts from the structural score of :func:`estimate_compile_cost`
    and learns a single seconds-per-unit ``scale`` from observed
    component-compile timings (exponentially weighted, so the model
    adapts within a few observations but never flaps on one outlier).
    One instance lives on the session and persists across batches, so
    the second cold batch is scheduled with calibrated estimates.

    Thread-safe: transports report timings from worker threads.
    """

    #: EWMA weight of each new observation.
    ALPHA = 0.3

    def __init__(self, scale: float | None = None) -> None:
        self._scale = float(scale) if scale is not None else 1.0
        self._calibrated = scale is not None
        self._lock = threading.Lock()

    @property
    def scale(self) -> float:
        with self._lock:
            return self._scale

    def estimate(self, key: Sequence) -> float:
        return estimate_compile_cost(key, self.scale)

    def observe(self, key: Sequence, seconds: float) -> None:
        """Fold one measured component compile into the scale."""
        raw = estimate_compile_cost(key, 1.0)
        if raw <= 0.0 or seconds < 0.0:
            return
        observed = seconds / raw
        with self._lock:
            if not self._calibrated:
                self._scale = observed
                self._calibrated = True
            else:
                self._scale += self.ALPHA * (observed - self._scale)


@dataclass(frozen=True)
class ComponentJob:
    """One fleet-deduplicated component compile of the pipeline pass.

    ``key`` is the canonical clause set (the :mod:`compiler.knowledge`
    memo key), ``cost`` the model's estimate, and ``shapes`` the
    affinity digests of every shape in this batch that stitches it.
    """

    key: object
    cost: float
    shapes: tuple[str, ...]


@dataclass
class PipelinePlan:
    """The dependency DAG of a pipelined cold batch.

    ``components`` holds each distinct canonical component exactly once,
    in dispatch order (critical-path-first: components of the most
    expensive shapes, largest first).  ``needs`` maps a shape's affinity
    digest to the indexes (into ``components``) it must have compiled
    before its stitch job is pure stitching; shapes absent from
    ``needs`` (warm, or too small to memoize) have no compile
    dependencies and may dispatch immediately.
    """

    components: list[ComponentJob]
    needs: dict[str, tuple[int, ...]] = field(default_factory=dict)
    #: The session's :class:`CompileCostModel`, threaded through so
    #: transports can calibrate it with measured compile timings.
    #: Process-local (never pickled — the wire payload carries only
    #: components and needs).
    cost_model: "CompileCostModel | None" = field(
        default=None, repr=False, compare=False
    )

    def total_cost(self) -> float:
        return sum(job.cost for job in self.components)


def artifact_component_planner(kind: str = "tape") -> Callable[["Job"], object]:
    """Build the ``component_planner`` callback for cache-using engines.

    The returned closure inspects a shape representative's artifact
    handle (duck-typed; see
    :meth:`~repro.engine.cache.CircuitArtifacts.component_plan`): warm
    shapes — ``kind`` artifact already in memory or on disk — plan no
    compiles, cold shapes plan their distinct canonical components.
    Planning failures degrade to "no plan" rather than aborting the
    batch: the shape then compiles inline in its stitch job, exactly as
    the non-pipelined path would.
    """

    def planner(job: "Job") -> object:
        handle = getattr(job.options, "artifacts", None)
        if handle is None:
            return None
        try:
            if handle.is_warm(kind):
                return None
            return handle.component_plan()
        except Exception:
            return None

    return planner


@dataclass
class BatchPlan:
    """The execution plan of one ``explain_many`` batch.

    ``jobs`` is every job in answer order; ``warm_wave`` holds one
    representative per distinct shape (empty when ``deduplicated`` is
    false — sampling engines have nothing to warm), ``main_wave`` the
    rest.  Transports honour the one barrier that matters: a shape's
    main-wave jobs must not start before its warm representative has
    finished (or before the whole warm wave, which is a coarser but
    equally correct cut).
    """

    engine: str
    jobs: list[Job]
    warm_wave: list[Job]
    main_wave: list[Job]
    n_shapes: int
    deduplicated: bool
    #: Main-wave jobs grouped by shape, in first-occurrence order
    #: (the unit of batched execution when ``batched`` is true; empty
    #: groups are never emitted).  Only meaningful when deduplicated.
    groups: list[list[Job]] = None  # type: ignore[assignment]
    #: Whether transports should execute ``groups`` as whole-shape
    #: batched calls instead of one call per main-wave job.
    batched: bool = False
    #: The compile/execute pipeline DAG, or ``None`` for the classic
    #: warm-wave-barrier schedule (warm batches, sampling engines, or
    #: pipelining disabled).  When set, transports overlap the
    #: component-compile pass with stitch and group execution.
    pipeline: "PipelinePlan | None" = None

    def __post_init__(self) -> None:
        if self.groups is None:
            self.groups = [[job] for job in self.main_wave]


def plan_pipeline(
    warm_wave: Sequence[Job],
    component_planner: Callable[[Job], object],
    cost_model: CompileCostModel | None = None,
) -> PipelinePlan | None:
    """Plan the fleet-wide one-pass component compile for a batch.

    Calls ``component_planner`` on each shape representative (``None``
    or an empty plan means the shape is warm or has nothing memoizable),
    dedupes the canonical component keys across *all* shapes, and
    orders the distinct compiles critical-path-first: components owned
    by the costliest shape go first (so the longest stitch chain starts
    as early as possible), ties broken by own cost descending, then by
    key — fully deterministic.  Returns ``None`` when no shape plans
    any component: the batch should then run the classic schedule, with
    zero pipeline overhead.
    """
    owners: dict[object, list[str]] = {}
    shape_keys: dict[str, list[object]] = {}
    for rep in warm_wave:
        keys = component_planner(rep)
        if not keys:
            continue
        affinity = rep.affinity()
        if affinity in shape_keys:
            continue
        shape_keys[affinity] = list(keys)
        for key in keys:
            owned = owners.setdefault(key, [])
            if affinity not in owned:
                owned.append(affinity)
    if not owners:
        return None
    estimate = (
        cost_model.estimate if cost_model is not None else estimate_compile_cost
    )
    costs = {key: float(estimate(key)) for key in owners}
    shape_cost = {
        affinity: sum(costs[key] for key in keys)
        for affinity, keys in shape_keys.items()
    }
    ordered = sorted(
        owners,
        key=lambda key: (
            -max(shape_cost[affinity] for affinity in owners[key]),
            -costs[key],
            key,
        ),
    )
    components = [
        ComponentJob(key, costs[key], tuple(owners[key])) for key in ordered
    ]
    position = {job.key: index for index, job in enumerate(components)}
    needs = {
        affinity: tuple(sorted(position[key] for key in keys))
        for affinity, keys in shape_keys.items()
    }
    return PipelinePlan(components, needs, cost_model=cost_model)


def plan_batch(
    engine: str, jobs: Sequence[Job], deduplicate: bool,
    batch: bool = False,
    component_planner: Callable[[Job], object] | None = None,
    cost_model: CompileCostModel | None = None,
) -> BatchPlan:
    """Group ``jobs`` by canonical shape and plan the warm-up wave.

    With ``deduplicate`` false (engines that never touch the cache)
    every job is its own shape and the whole batch is one wave.  Jobs
    whose ``signature`` is ``None`` never share a group even when
    deduplicating — an unknown shape must not alias another.

    With ``batch`` true (engines whose ``supports_batch`` is set and
    sessions that keep ``batch_execution`` on), the plan additionally
    carries the main wave as same-shape *groups*: transports then
    execute each group as one batched engine call.  The warm wave is
    unchanged — each shape's representative still runs first and alone,
    so compile-once/store invariants hold batched or not.

    With a ``component_planner`` (see :func:`artifact_component_planner`
    and :func:`plan_pipeline`), the plan also carries the compile/
    execute pipeline DAG in :attr:`BatchPlan.pipeline` — ``None`` when
    every shape turns out warm, in which case transports fall back to
    the classic schedule at no cost.
    """
    jobs = list(jobs)
    if not deduplicate:
        return BatchPlan(engine, jobs, [], list(jobs), len(jobs), False)
    groups: dict[object, list[Job]] = {}
    for job in jobs:
        key = job.signature if job.signature is not None else ("\0job", job.index)
        groups.setdefault(key, []).append(job)
    warm_wave = [group[0] for group in groups.values()]
    main_wave = [job for group in groups.values() for job in group[1:]]
    shape_groups = [group[1:] for group in groups.values() if group[1:]]
    pipeline = (
        plan_pipeline(warm_wave, component_planner, cost_model)
        if component_planner is not None
        else None
    )
    return BatchPlan(
        engine, jobs, warm_wave, main_wave, len(groups), True,
        groups=shape_groups if batch else None, batched=batch,
        pipeline=pipeline,
    )


def assign_shards(
    items: Sequence[T],
    n_shards: int,
    key: Callable[[T], str],
) -> list[list[T]]:
    """Partition ``items`` into at most ``n_shards`` affinity-preserving
    shards of balanced size.

    Items with equal ``key`` always land in the same shard, in their
    input order (so a group's warm representative stays first).  Groups
    are placed largest-first onto the least-loaded shard — the classic
    greedy bound: no shard exceeds the ideal share by more than the
    largest group.  Deterministic: ties break by group key, then shard
    position.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    groups: dict[str, list[T]] = {}
    for item in items:
        groups.setdefault(key(item), []).append(item)
    shards: list[list[T]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for group_key, group in sorted(
        groups.items(), key=lambda kv: (-len(kv[1]), kv[0])
    ):
        target = min(range(n_shards), key=lambda i: (loads[i], i))
        shards[target].extend(group)
        loads[target] += len(group)
    return shards
