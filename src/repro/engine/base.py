"""The engine abstraction: one interface over every Shapley method.

An :class:`Engine` turns an endogenous-lineage circuit plus a player
list into an :class:`EngineResult`.  The five methods of the paper
(exact Algorithm 1, hybrid, CNF Proxy, Monte Carlo, Kernel SHAP) are
adapters over this interface (:mod:`repro.engine.adapters`), registered
by name in :mod:`repro.engine.registry` so that the CLI, the benchmark
harness, and the examples all dispatch with ``get_engine(name)`` instead
of per-file if/elif chains.  Future backends (external compilers,
sharded or remote execution) plug in the same way.
"""

from __future__ import annotations

import hashlib
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, ClassVar, Hashable, Sequence

from ..compiler.knowledge import CompilationBudget

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..circuits.circuit import Circuit
    from .cache import ArtifactCache, CircuitArtifacts


def derive_answer_seed(seed: int, answer: tuple) -> int:
    """A stable per-answer RNG seed for the sampling engines.

    Derived from a cryptographic hash of ``(seed, answer)`` rather than
    the answer's position in some enumeration, so the same answer gets
    the same RNG stream whether it is explained alone, in a batch, in a
    reordered batch, or in a subset — and across processes (``repr`` of
    the plain-value answer tuples is independent of hash randomization).
    """
    digest = hashlib.sha256(f"{seed!r}|{answer!r}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class EngineOptions:
    """Knobs shared by every engine; each engine reads what it needs.

    ``budget`` takes precedence over ``timeout`` for the exact pipeline;
    when only ``timeout`` is set it doubles as the compilation budget
    (the paper's single ``t`` parameter).  ``mode`` selects Algorithm 1's
    all-facts strategy (``derivative`` / ``conditioning``); ``cache`` is
    the shared :class:`~repro.engine.cache.ArtifactCache`, if any.

    ``artifacts`` optionally carries a prebuilt
    :class:`~repro.engine.cache.CircuitArtifacts` handle for the *same*
    circuit the engine is invoked on.  Callers that already
    canonicalized the circuit (e.g. the batched session, which groups
    answers by signature) thread the handle through so the
    canonicalization pass runs exactly once per answer; engines that
    compile read it in preference to re-opening ``cache``.

    ``numeric_backend`` selects the exact-arithmetic kernel of the
    counting passes (:mod:`repro.core.numerics`): ``None``/``"python"``
    is the big-int reference, ``"numpy"`` the vectorized object-dtype
    backend, ``"int64"`` the overflow-guarded machine-width backend
    (native-dtype level-scheduled tape execution where its a-priori
    bounds allow, exact fallback elsewhere; ``fastpath_hits`` /
    ``fastpath_fallbacks`` in the session stats count which), and
    ``"auto"`` walks the ladder int64 → numpy → python by what is
    installed.  Every backend returns byte-identical Fractions; this is
    purely a performance knob, and it travels with the options through
    every transport so remote workers compute on the requested backend
    too.
    """

    budget: CompilationBudget | None = None
    timeout: float | None = 2.5
    samples_per_fact: int = 20
    seed: int | None = None
    mode: str = "derivative"
    numeric_backend: str | None = None
    #: Worker threads for top-level component compilation inside
    #: :func:`~repro.compiler.knowledge.compile_cnf` (``None``/``1`` =
    #: serial).  Purely a wall-clock knob: stitching is deterministic,
    #: so the compiled circuit is byte-identical to the serial one.
    compile_jobs: int | None = None
    #: Byte budget of the machine-width fast path's SoA value buffers
    #: (``None`` = the built-in 64 MiB default).  Shapes over budget
    #: fall back to the interpreted exact pass and are counted under
    #: ``fastpath_budget_fallbacks``.
    fastpath_budget_bytes: int | None = None
    #: Whether sessions may group same-shape answers into one batched
    #: machine-width execution (the PR 8 warm path).  Purely a
    #: performance knob: batched and per-answer execution return
    #: byte-identical Fractions.
    batch_execution: bool = True
    #: Whether sessions may replace the warm-wave barrier with the
    #: pipelined cold-batch schedule (fleet-deduplicated one-pass
    #: component compilation overlapped with stitch/group execution —
    #: the PR 9 cold path).  Purely a performance knob: pipelined and
    #: barrier execution return byte-identical Fractions.
    pipeline_execution: bool = True
    #: Initial seconds-per-unit scale of the compile cost model (see
    #: :class:`~repro.engine.scheduler.CompileCostModel`); ``None``
    #: starts uncalibrated and learns from the first recorded
    #: component-compile timings.  Only the critical-path *ordering* of
    #: compiles depends on it, never any result.
    pipeline_cost_scale: float | None = None
    cache: "ArtifactCache | None" = field(default=None, repr=False)
    artifacts: "CircuitArtifacts | None" = field(default=None, repr=False)

    def compilation_budget(self) -> CompilationBudget | None:
        """The budget for knowledge compilation, deriving one from
        ``timeout`` when no explicit budget is given."""
        if self.budget is not None:
            return self.budget
        if self.timeout:
            return CompilationBudget(max_seconds=self.timeout)
        return None

    def hybrid_timeout(self) -> float | None:
        """The exact-attempt timeout of the hybrid strategy.

        Passed through verbatim so explicit values keep their direct
        :func:`~repro.core.hybrid.hybrid_shapley` semantics: ``0``
        skips the exact attempt (straight to the proxy fallback) and
        ``None`` attempts exactly without a time limit.  The paper's
        2.5 s is the field default.
        """
        if self.budget is not None and self.budget.max_seconds is not None:
            return self.budget.max_seconds
        return self.timeout

    def rng(self) -> random.Random:
        """A fresh RNG for the sampling engines."""
        return random.Random(self.seed)

    def with_(self, **changes) -> "EngineOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: Default options used when a caller passes ``options=None``.
DEFAULT_OPTIONS = EngineOptions()


@dataclass
class EngineResult:
    """Outcome of one engine invocation on one lineage circuit.

    ``status`` is ``"ok"`` on success, ``"budget"`` / ``"timeout"`` when
    the exact pipeline exhausted its resources (the paper's OOM/timeout
    events; only the exact engine reports these — every other engine
    always answers).  ``exact`` tells whether ``values`` are true
    Shapley values (for the hybrid engine it depends on which branch
    answered).  ``detail`` carries the method-specific payload
    (:class:`~repro.core.pipeline.ExactOutcome`,
    :class:`~repro.core.hybrid.HybridResult`, ...).
    """

    method: str
    values: dict[Hashable, object] | None
    exact: bool
    status: str = "ok"
    seconds: float = 0.0
    detail: object = field(default=None, repr=False)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class Engine(ABC):
    """A named strategy computing fact contributions from a lineage
    circuit.

    Subclasses set ``name`` (the registry key) and ``exact`` (whether a
    successful run yields true Shapley values) and implement
    :meth:`explain_circuit`.  Engines must be stateless: one shared
    instance is handed out by :func:`~repro.engine.registry.get_engine`
    and may be used from several threads at once by
    :class:`~repro.engine.session.ExplainSession`.
    """

    name: ClassVar[str]
    #: Whether a successful run returns exact Shapley values.
    exact: ClassVar[bool]
    #: Whether the engine reads :attr:`EngineOptions.cache`.  Sessions
    #: skip circuit deduplication for engines that never compile.
    uses_cache: ClassVar[bool] = False
    #: Whether :meth:`explain_batch` executes a same-shape answer group
    #: as one batched pass (sessions emit shape groups only for engines
    #: that do; the default implementation just loops).
    supports_batch: ClassVar[bool] = False

    @abstractmethod
    def explain_circuit(
        self,
        circuit: "Circuit",
        players: Sequence[Hashable],
        options: EngineOptions | None = None,
    ) -> EngineResult:
        """Compute contributions of ``players`` in ``circuit``."""

    def explain_batch(
        self,
        requests: Sequence[tuple["Circuit", Sequence[Hashable],
                                 EngineOptions | None]],
    ) -> list[EngineResult]:
        """Explain several circuits; one result per request, in order.

        The base implementation is a plain :meth:`explain_circuit`
        loop.  Engines with ``supports_batch`` override it to execute a
        *same-shape group* as one batched pass — results must stay
        byte-identical to the loop either way.
        """
        return [
            self.explain_circuit(circuit, players, options)
            for circuit, players, options in requests
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
