"""Disk-backed artifact store: compiled artifacts shared across processes.

Knowledge compilation dominates the exact pipeline, and the in-memory
:class:`~repro.engine.cache.ArtifactCache` already makes isomorphic
lineages compile once — but only within one process.
:class:`PersistentArtifactStore` is the second tier underneath it: the
*canonical* artifacts (Tseytin CNFs, auxiliary-eliminated d-DNNFs, and
their compiled :class:`~repro.core.numerics.tape.GateTape`s, labels
replaced by canonical indices 0..k-1) are serialized to a
directory keyed by the circuit's structural signature, so every later
process — another benchmark run, a CLI invocation, a worker of a
:class:`~concurrent.futures.ProcessPoolExecutor` — reloads them instead
of recompiling.  Because the stored circuit is reconstructed gate for
gate, the Shapley values computed from a reloaded d-DNNF are *exactly*
(as :class:`~fractions.Fraction` objects) the values of the cold run.

A fourth artifact kind, ``.comp``, holds *component* d-DNNFs: circuits
compiled from a canonical connected-component clause set
(:func:`~repro.compiler.knowledge.canonical_component`), keyed by the
digest of that clause set instead of a whole-circuit signature.  They
make cold compiles of brand-new shapes cheap whenever the shape shares
isomorphic sub-circuits with anything compiled before.  Component
payloads carry the compiler's
:data:`~repro.compiler.knowledge.COMPONENT_SCHEME` tag; a scheme bump
turns stale files into clean misses so cross-run signature parity is
never violated by circuits from an older compiler generation.

File format (version 1)
-----------------------
One file per artifact, named ``<sha256(signature)>.<cnf|dnnf|tape|comp>``::

    repro-artifact <format-version> <kind> <sha256(payload)>\\n
    <payload JSON>

Writes go through a temp file in the same directory followed by
:func:`os.replace`, so concurrent readers never observe a torn
artifact.  Readers verify the header and the payload checksum; any
mismatch (truncation, partial disk write, bad JSON) counts as a
*corruption*, the file is discarded, and the caller falls back to
recompilation.  A format-version bump simply turns old files into
misses.

Artifact kinds may additionally version their *payloads* without
bumping the store format: gate tapes write payload v2 (level schedule
and magnitude bounds for the machine-width execution tier) while
:meth:`~repro.core.numerics.tape.GateTape.from_payload` re-lowers
stored v1 payloads transparently, so pre-PR-5 stores keep serving
tape hits instead of recompiling.

Bounded disk usage (GC)
-----------------------
A store constructed with ``max_bytes`` keeps the directory under that
budget: every successful read refreshes the artifact's mtime (the LRU
clock), and :meth:`gc` evicts least-recently-used artifacts until the
total size fits.  Two finer knobs exist for fleets where ``.comp``
artifacts multiply: ``kind_budgets`` caps each artifact kind's bytes
separately (LRU within the kind), and ``max_age_seconds`` evicts
anything not read or written for that long, regardless of budget.  A
:meth:`gc` pass applies TTL first, then per-kind budgets, then the
total budget.  Eviction is *generation-safe* — each candidate is
re-checked immediately before deletion and skipped if a concurrent
writer or reader refreshed it since the scan — and always safe against
concurrent use: a reader that loses the race simply sees a miss and
recompiles (the store is an accelerator, never a correctness
dependency), while an in-flight write (temp file) is never a GC
candidate and republishes atomically even if its target was just
evicted.  ``StoreStats`` counts ``evictions`` and ``reclaimed_bytes``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable
from pathlib import Path

from ..circuits.circuit import Circuit, CircuitError
from ..circuits.cnf import Cnf, CnfError
from ..compiler.knowledge import COMPONENT_SCHEME
from ..core.numerics.tape import GateTape, TapeError

#: Bump when the header or payload layout changes; older files are then
#: treated as misses and rewritten on the next compile.
FORMAT_VERSION = 1

_MAGIC = "repro-artifact"
_KINDS = ("cnf", "dnnf", "tape", "comp")
_SUFFIXES = tuple(f".{kind}" for kind in _KINDS)

#: Public aliases for read-only consumers (the artifact verifier must
#: parse files with exactly the store's header discipline).
ARTIFACT_MAGIC = _MAGIC
ARTIFACT_KINDS = _KINDS

#: An in-flight temp file older than this is an orphan: a writer died
#: between ``mkstemp`` and ``os.replace``.  Live writers publish within
#: milliseconds, so ten minutes is generously conservative.
ORPHAN_TTL_SECONDS = 600.0


@dataclass
class StoreStats:
    """Hit/miss/corruption accounting of one store instance.

    ``corruptions`` counts artifacts that existed on disk but failed
    validation (truncated file, checksum mismatch, malformed payload);
    each one is removed and recompiled, never silently trusted.
    """

    hits: int = 0
    misses: int = 0
    corruptions: int = 0
    writes: int = 0
    write_failures: int = 0
    evictions: int = 0
    reclaimed_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "store_hits": self.hits,
            "store_misses": self.misses,
            "store_corruptions": self.corruptions,
            "store_writes": self.writes,
            "store_write_failures": self.write_failures,
            "store_evictions": self.evictions,
            "store_reclaimed_bytes": self.reclaimed_bytes,
        }


class _CorruptArtifact(Exception):
    """Internal: the on-disk artifact failed validation."""


@dataclass(frozen=True)
class StoreEntry:
    """One artifact file as seen by a directory scan."""

    path: Path
    kind: str
    size: int
    mtime_ns: int

    @property
    def digest(self) -> str:
        """The signature digest the artifact is filed under."""
        return self.path.stem


@dataclass(frozen=True)
class GcReport:
    """Outcome of one :meth:`PersistentArtifactStore.gc` pass."""

    evicted: int
    reclaimed_bytes: int
    remaining_files: int
    remaining_bytes: int
    orphans_removed: int = 0
    orphan_bytes_reclaimed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "evicted": self.evicted,
            "reclaimed_bytes": self.reclaimed_bytes,
            "remaining_files": self.remaining_files,
            "remaining_bytes": self.remaining_bytes,
            "orphans_removed": self.orphans_removed,
            "orphan_bytes_reclaimed": self.orphan_bytes_reclaimed,
        }


def _validate_kind_budgets(kind_budgets: dict[str, int] | None) -> None:
    if not kind_budgets:
        return
    for kind, budget in kind_budgets.items():
        if kind not in _KINDS:
            raise ValueError(
                f"unknown artifact kind {kind!r}; choose from {_KINDS}"
            )
        if budget <= 0:
            raise ValueError(
                f"kind budget must be positive, got {kind}={budget}"
            )


def signature_digest(signature: tuple) -> str:
    """Stable hex digest of a canonical structural signature.

    Signature entries may mix plain ints and :class:`~enum.IntEnum`
    gate kinds depending on how the circuit was built; both compare
    equal but repr differently, so every entry is normalized to ``int``
    before hashing.  The digest is therefore identical across processes
    and Python versions for equal signatures.
    """
    normalized = repr(
        tuple(tuple(int(part) for part in gate) for gate in signature)
    )
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()


class PersistentArtifactStore:
    """A directory of canonical compiled artifacts, safe to share across
    processes.

    Hand one (or several instances pointing at the same directory) to
    :class:`~repro.engine.cache.ArtifactCache` via its ``store``
    parameter; the cache consults it on every in-memory miss and writes
    back whatever it compiles.  All methods are thread-safe, and the
    atomic-rename write protocol makes concurrent *processes* safe too:
    the worst case is two processes compiling the same shape and one
    overwriting the other's identical artifact.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        max_bytes: int | None = None,
        kind_budgets: dict[str, int] | None = None,
        max_age_seconds: float | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        _validate_kind_budgets(kind_budgets)
        if max_age_seconds is not None and max_age_seconds < 0:
            raise ValueError(
                f"max_age_seconds must be non-negative, got {max_age_seconds}"
            )
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.kind_budgets = dict(kind_budgets) if kind_budgets else None
        self.max_age_seconds = max_age_seconds
        self.stats = StoreStats()
        self._lock = threading.Lock()
        #: Running estimate of the directory size, maintained on writes
        #: so the budget check does not re-scan the directory each time;
        #: ``None`` until the first budgeted write (or GC) measures it.
        self._estimated_bytes: int | None = None

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @staticmethod
    def kinds() -> tuple[str, ...]:
        """Every artifact kind the store knows about."""
        return _KINDS

    def path_for(self, signature: tuple, kind: str) -> Path:
        """The on-disk path of one artifact (``kind``: cnf / dnnf /
        tape)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return self.directory / f"{signature_digest(signature)}.{kind}"

    def __len__(self) -> int:
        """Number of artifact files currently in the directory."""
        return len(self.entries())

    def entries(self) -> list[StoreEntry]:
        """A snapshot of every artifact file (in-flight temp files and
        foreign files are skipped; files vanishing mid-scan are
        tolerated)."""
        found: list[StoreEntry] = []
        try:
            candidates = list(self.directory.iterdir())
        except OSError:
            return found
        for path in candidates:
            if path.suffix not in _SUFFIXES:
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted or replaced by a concurrent process
            found.append(
                StoreEntry(path, path.suffix[1:], stat.st_size, stat.st_mtime_ns)
            )
        return found

    def total_bytes(self) -> int:
        """Total size of every artifact file currently in the store."""
        return sum(entry.size for entry in self.entries())

    def orphan_entries(self) -> list[StoreEntry]:
        """In-flight/orphaned ``*.tmp`` files from atomic writes.

        A live writer's temp file appears here for milliseconds; one
        whose writer died mid-publish stays until :meth:`gc` sweeps it
        (after :data:`ORPHAN_TTL_SECONDS`).  These files are invisible
        to :meth:`entries` / :meth:`kind_summary` — they are not
        artifacts — but are reported by ``repro cache stats`` and
        ``repro verify`` so interrupted writes cannot silently leak
        disk."""
        found: list[StoreEntry] = []
        try:
            candidates = list(self.directory.iterdir())
        except OSError:
            return found
        for path in candidates:
            if path.suffix != ".tmp":
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append(StoreEntry(path, "tmp", stat.st_size, stat.st_mtime_ns))
        return found

    def orphan_summary(self) -> dict[str, int]:
        """File count and byte total of orphaned temp files."""
        entries = self.orphan_entries()
        return {
            "files": len(entries),
            "bytes": sum(entry.size for entry in entries),
        }

    def kind_summary(self) -> dict[str, dict[str, int]]:
        """File count and byte total per artifact kind (all kinds are
        present in the result, zeroed when absent on disk)."""
        summary = {kind: {"files": 0, "bytes": 0} for kind in _KINDS}
        for entry in self.entries():
            bucket = summary[entry.kind]
            bucket["files"] += 1
            bucket["bytes"] += entry.size
        return summary

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def load_cnf(self, signature: tuple) -> Cnf | None:
        """The stored canonical CNF of ``signature``, or ``None``."""
        payload = self._load(signature, "cnf")
        if payload is None:
            return None
        try:
            cnf = Cnf.from_payload(payload)
        except CnfError:
            return self._corrupt(self.path_for(signature, "cnf"))
        self._hit(self.path_for(signature, "cnf"))
        return cnf

    def load_ddnnf(self, signature: tuple) -> Circuit | None:
        """The stored canonical d-DNNF of ``signature``, or ``None``."""
        payload = self._load(signature, "dnnf")
        if payload is None:
            return None
        try:
            circuit = Circuit.from_payload(payload)
        except CircuitError:
            return self._corrupt(self.path_for(signature, "dnnf"))
        self._hit(self.path_for(signature, "dnnf"))
        return circuit

    def load_tape(self, signature: tuple) -> GateTape | None:
        """The stored canonical gate tape of ``signature``, or ``None``."""
        payload = self._load(signature, "tape")
        if payload is None:
            return None
        try:
            tape = GateTape.from_payload(payload)
        except TapeError:
            return self._corrupt(self.path_for(signature, "tape"))
        self._hit(self.path_for(signature, "tape"))
        return tape

    def load_component(self, key: tuple) -> Circuit | None:
        """The memoized component d-DNNF of canonical clause set
        ``key``, or ``None``.

        A payload written by a different compiler generation (scheme
        tag mismatch) is a clean miss, not a corruption: it was valid
        for the compiler that wrote it, but stitching it in could break
        byte-identical signature parity with fresh compiles.
        """
        payload = self._load(key, "comp")
        if payload is None:
            return None
        path = self.path_for(key, "comp")
        if not isinstance(payload, dict) or payload.get("scheme") != COMPONENT_SCHEME:
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            circuit = Circuit.from_payload(payload.get("circuit") or {})
        except CircuitError:
            return self._corrupt(path)
        self._hit(path)
        return circuit

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def gc(
        self,
        max_bytes: int | None = None,
        kind_budgets: dict[str, int] | None = None,
        max_age_seconds: float | None = None,
    ) -> GcReport:
        """Evict artifacts until the directory satisfies every
        configured budget (arguments default to the store's own knobs).

        Orphaned temp files from interrupted atomic writes (older than
        :data:`ORPHAN_TTL_SECONDS`) are always swept first.  Then three
        passes run in order, each least-recently-used first: an
        age pass dropping artifacts older than ``max_age_seconds``, a
        per-kind pass shrinking each kind in ``kind_budgets`` to its
        byte budget, and a total pass shrinking everything to
        ``max_bytes``.  At least one knob must be set, here or on the
        store — otherwise this raises ``ValueError`` (mentioning
        ``max_bytes``, the knob almost everyone wants).

        Safe to run while other threads and *processes* read and write
        the same directory: candidates are re-checked right before
        deletion and skipped when their generation changed (a writer
        republished, or a reader's hit refreshed the LRU clock), a
        vanished file is simply someone else's eviction, and any reader
        that loses the race falls back to recompiling.  The report and
        the ``evictions`` / ``reclaimed_bytes`` counters describe this
        pass only / this instance's lifetime respectively.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        kinds = kind_budgets if kind_budgets is not None else self.kind_budgets
        age = (
            max_age_seconds
            if max_age_seconds is not None
            else self.max_age_seconds
        )
        if budget is None and not kinds and age is None:
            raise ValueError(
                "gc() needs a budget: max_bytes, kind_budgets, or "
                "max_age_seconds (none set on the store)"
            )
        if budget is not None and budget <= 0:
            raise ValueError(f"max_bytes must be positive, got {budget}")
        _validate_kind_budgets(kinds)
        if age is not None and age < 0:
            raise ValueError(f"max_age_seconds must be non-negative, got {age}")

        # Sweep orphaned temp files first: any *.tmp older than the
        # orphan TTL was abandoned by a writer that died mid-publish
        # (live writers rename within milliseconds).  Generation-safe
        # like artifact eviction — a concurrent writer's fresh temp
        # file is never touched.
        orphans_removed = 0
        orphan_bytes = 0
        orphan_cutoff = time.time_ns() - int(ORPHAN_TTL_SECONDS * 1e9)
        for orphan in self.orphan_entries():
            if orphan.mtime_ns >= orphan_cutoff:
                continue
            outcome, size = self._try_evict(orphan)
            if outcome == "evicted":
                orphans_removed += 1
                orphan_bytes += size

        live = {entry.path: entry for entry in self.entries()}
        evicted = 0
        reclaimed = 0

        def sweep(
            entries: list[StoreEntry],
            over_budget: Callable[[int], bool],
        ) -> int:
            """Evict LRU-first from ``entries`` while ``over_budget``
            says the watched total is still too big; returns the bytes
            still attributed to surviving entries."""
            nonlocal evicted, reclaimed
            total = sum(entry.size for entry in entries)
            # Oldest mtime first = least recently used first (reads
            # refresh mtime); path name breaks ties deterministically.
            for entry in sorted(entries, key=lambda e: (e.mtime_ns, e.path.name)):
                if not over_budget(total):
                    break
                outcome, size = self._try_evict(entry)
                if outcome == "kept":
                    # New generation since the scan — recently written
                    # or read.  It is now MRU, so keep it; a follow-up
                    # pass will see the refreshed clock.
                    continue
                live.pop(entry.path, None)
                total -= entry.size
                if outcome == "evicted":
                    evicted += 1
                    reclaimed += size
            return total

        if age is not None:
            cutoff = time.time_ns() - int(age * 1e9)
            expired = [e for e in live.values() if e.mtime_ns < cutoff]
            sweep(expired, lambda total: total > 0)
        if kinds:
            for kind, kind_budget in sorted(kinds.items()):
                subset = [e for e in live.values() if e.kind == kind]
                sweep(subset, lambda total, b=kind_budget: total > b)
        total = sum(entry.size for entry in live.values())
        if budget is not None:
            total = sweep(list(live.values()), lambda t, b=budget: t > b)
        with self._lock:
            self.stats.evictions += evicted
            self.stats.reclaimed_bytes += reclaimed
            self._estimated_bytes = total
        remaining = self.entries()
        return GcReport(
            evicted, reclaimed, len(remaining),
            sum(entry.size for entry in remaining),
            orphans_removed, orphan_bytes,
        )

    def _try_evict(self, entry: StoreEntry) -> tuple[str, int]:
        """Generation-safe single-file eviction.

        Returns ``("evicted", bytes)``, ``("gone", 0)`` for a file a
        concurrent collector beat us to, or ``("kept", 0)`` when the
        entry's generation changed (or the unlink hit an IO error) —
        GC skips, never fails.
        """
        try:
            stat = entry.path.stat()
        except OSError:
            return "gone", 0
        if stat.st_mtime_ns != entry.mtime_ns:
            return "kept", 0
        try:
            entry.path.unlink()
        except FileNotFoundError:
            return "gone", 0
        except OSError:
            return "kept", 0
        return "evicted", stat.st_size

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def store_cnf(self, signature: tuple, cnf: Cnf) -> None:
        """Persist the canonical CNF of ``signature`` (atomic)."""
        self._store(signature, "cnf", cnf.to_payload())

    def store_ddnnf(self, signature: tuple, circuit: Circuit) -> None:
        """Persist the canonical d-DNNF of ``signature`` (atomic)."""
        self._store(signature, "dnnf", circuit.to_payload())

    def store_tape(self, signature: tuple, tape: GateTape) -> None:
        """Persist the canonical compiled gate tape of ``signature``
        (atomic)."""
        self._store(signature, "tape", tape.to_payload())

    def store_component(self, key: tuple, circuit: Circuit) -> None:
        """Persist a memoized component d-DNNF keyed by its canonical
        clause set (atomic).

        The canonical clause set itself rides along in the payload so
        the file's digest (and the canonical form it keys) can be
        re-derived and audited offline; loaders ignore the extra field.
        """
        self._store(
            key,
            "comp",
            {
                "scheme": COMPONENT_SCHEME,
                "clauses": [list(clause) for clause in key],
                "circuit": circuit.to_payload(),
            },
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _hit(self, path: Path) -> None:
        with self._lock:
            self.stats.hits += 1
        # Refresh the LRU clock: an artifact read now is the last one a
        # budgeted GC should evict.  Best-effort — the file may already
        # be gone (concurrent eviction) or read-only.
        try:
            os.utime(path)
        except OSError:
            pass

    def _corrupt(self, path: Path) -> None:
        """Count a corruption, drop the bad file, report a miss."""
        with self._lock:
            self.stats.corruptions += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def _load(self, signature: tuple, kind: str) -> dict | None:
        path = self.path_for(signature, kind)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except OSError:
            return self._corrupt(path)
        newline = blob.find(b"\n")
        if newline < 0:
            return self._corrupt(path)
        header = blob[:newline].decode("utf-8", errors="replace").split()
        payload = blob[newline + 1 :]
        if len(header) != 4 or header[0] != _MAGIC or header[2] != kind:
            return self._corrupt(path)
        if header[1] != str(FORMAT_VERSION):
            # An older/newer format is a clean miss, not a corruption:
            # the artifact was valid for the version that wrote it.
            with self._lock:
                self.stats.misses += 1
            return None
        if hashlib.sha256(payload).hexdigest() != header[3]:
            return self._corrupt(path)
        try:
            return json.loads(payload)
        except ValueError:
            return self._corrupt(path)

    def _store(self, signature: tuple, kind: str, payload_dict: dict) -> None:
        path = self.path_for(signature, kind)
        payload = json.dumps(payload_dict, separators=(",", ":")).encode("utf-8")
        header = (
            f"{_MAGIC} {FORMAT_VERSION} {kind} "
            f"{hashlib.sha256(payload).hexdigest()}\n"
        ).encode("ascii")
        # Atomic publish: write a sibling temp file, fsync-free rename.
        # Concurrent writers race benignly (identical content); readers
        # only ever see a complete old or new file.
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=f".{kind}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(header)
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # The store is an accelerator, never a correctness
            # dependency: a full disk or vanished directory must not
            # fail the computation that produced the artifact.
            with self._lock:
                self.stats.write_failures += 1
            return
        with self._lock:
            self.stats.writes += 1
        self._after_write(len(header) + len(payload))

    def _after_write(self, written: int) -> None:
        """Budget check after a successful write, amortized through a
        running size estimate so the common case is O(1).

        Overwrites of an existing artifact inflate the estimate (both
        generations are counted) — that only triggers GC *earlier*, and
        each pass resets the estimate to the measured total.  A store
        configured with only per-kind budgets auto-enforces against
        their sum (the tightest total bound they imply); an age TTL
        alone never triggers on writes — run :meth:`gc` explicitly or
        on a schedule for that.
        """
        trigger = self.max_bytes
        if trigger is None and self.kind_budgets:
            trigger = sum(self.kind_budgets.values())
        if trigger is None:
            return
        with self._lock:
            if self._estimated_bytes is not None:
                self._estimated_bytes += written
                over = self._estimated_bytes > trigger
                measure = False
            else:
                over = False
                measure = True
        if measure:
            total = self.total_bytes()
            with self._lock:
                self._estimated_bytes = total
            over = total > trigger
        if over:
            self.gc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"PersistentArtifactStore({str(self.directory)!r}, "
            f"hits={s.hits}, misses={s.misses}, corrupt={s.corruptions})"
        )
