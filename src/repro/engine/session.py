"""Batched explanation sessions: dedupe circuits, fan out answers.

:meth:`ExplainSession.explain_many` is the multi-answer counterpart of
:func:`repro.core.attribution.attribute`: it computes the query's
lineage once, opens each answer's circuit against the shared
:class:`~repro.engine.cache.ArtifactCache` (one canonicalization pass
per answer, whose :class:`~repro.engine.cache.CircuitArtifacts` handle
is threaded through to the engine), groups answers by canonical shape,
and fans the work out over an executor.  Each distinct shape is
explained first (a warm-up wave, so every shape compiles exactly once),
then the remaining answers run as pure cache hits.  Per-tuple
budget/timeout outcomes are preserved: each answer gets its own
:class:`~repro.engine.base.EngineResult` with its own status, exactly
as the per-answer path reports them.

Two executors are supported:

* ``"thread"`` (default) — a :class:`~concurrent.futures.ThreadPoolExecutor`
  sharing the session's in-memory cache;
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  The warm-up wave still runs in the parent (populating the session's
  cache and, when attached, its persistent
  :class:`~repro.engine.store.PersistentArtifactStore`); worker
  processes then build their own cache over the *same* store directory,
  so they reload compiled artifacts from disk instead of recompiling.
  Without a store, workers fall back to compiling independently.

Determinism: exact results are independent of scheduling (Fractions
from structure); for the sampling engines each answer's RNG seed is
:func:`~repro.engine.base.derive_answer_seed` — a stable hash of
``(options.seed, answer)`` — so batched runs are reproducible regardless
of interleaving, invariant to answer order and subsetting, and agree
with the single-answer path at the same seed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.pipeline import QueryLike, to_plan
from ..db.database import Database
from ..db.evaluate import lineage
from .base import EngineOptions, EngineResult, derive_answer_seed
from .cache import ArtifactCache
from .registry import get_engine
from .store import PersistentArtifactStore

#: Executor kinds accepted by :class:`ExplainSession`.
EXECUTORS = ("thread", "process")

#: Per-process artifact cache of pool workers, keyed by store directory
#: (None = no persistent store).  Lives for the worker's lifetime so
#: repeated tasks in one worker also get in-memory hits.
_WORKER_CACHES: dict[str | None, ArtifactCache] = {}


def _worker_cache(store_dir: str | None) -> ArtifactCache:
    cache = _WORKER_CACHES.get(store_dir)
    if cache is None:
        store = PersistentArtifactStore(store_dir) if store_dir else None
        cache = ArtifactCache(store=store)
        _WORKER_CACHES[store_dir] = cache
    return cache


def _process_explain(
    engine_name: str,
    circuit,
    players: list,
    options: EngineOptions,
    store_dir: str | None,
) -> EngineResult:
    """Top-level worker body of the ``"process"`` executor.

    Runs in a pool worker: rebuilds a per-process cache over the shared
    store directory (cache handles are not picklable, so the parent
    ships only the directory path) and dispatches through the registry.
    """
    cache = _worker_cache(store_dir)
    options = options.with_(cache=cache)
    return get_engine(engine_name).explain_circuit(circuit, players, options)


@dataclass
class _Job:
    index: int
    answer: tuple
    circuit: object
    players: list
    options: EngineOptions
    signature: object = None


class ExplainSession:
    """A database + method + cache bound together for batched work.

    Parameters
    ----------
    database:
        The database with its endogenous/exogenous partition.
    method:
        A registered engine name (see
        :func:`~repro.engine.registry.available_engines`).
    options:
        Engine options; the session's cache is injected into them.
    cache:
        Shared :class:`ArtifactCache`.  ``None`` creates a fresh one;
        pass ``ArtifactCache(max_entries=0)`` to measure uncached runs,
        or ``ArtifactCache(store=PersistentArtifactStore(dir))`` to
        share compiled artifacts across processes and runs.
    max_workers:
        Pool width for :meth:`explain_many` (``None`` = executor
        default).
    executor:
        ``"thread"`` (default) or ``"process"`` — the default pool kind
        of :meth:`explain_many`.
    """

    def __init__(
        self,
        database: Database,
        method: str = "exact",
        options: EngineOptions | None = None,
        cache: ArtifactCache | None = None,
        max_workers: int | None = None,
        executor: str = "thread",
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        self.database = database
        self.engine = get_engine(method)
        self.cache = cache if cache is not None else ArtifactCache()
        base = options if options is not None else EngineOptions()
        self.options = base.with_(cache=self.cache)
        self.max_workers = max_workers
        self.executor = executor
        self._answers_explained = 0
        self._unique_shapes = 0

    # ------------------------------------------------------------------

    def explain_one(
        self, circuit, players: Sequence[Hashable]
    ) -> EngineResult:
        """Explain a single prepared lineage circuit (cache-aware)."""
        return self.engine.explain_circuit(circuit, list(players), self.options)

    def explain_many(
        self,
        query: QueryLike,
        answers: Sequence[tuple] | None = None,
        executor: str | None = None,
    ) -> dict[tuple, EngineResult]:
        """Explain every answer of ``query`` (or the given subset).

        Returns one :class:`EngineResult` per answer, keyed by answer
        tuple and ordered like the query's answer list.  ``executor``
        overrides the session default for this call.
        """
        executor = executor if executor is not None else self.executor
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        result = lineage(
            to_plan(query, self.database), self.database, endogenous_only=True
        )
        available = result.tuples()
        if answers is None:
            answers = available
        else:
            known = set(available)
            for answer in answers:
                if answer not in known:
                    raise ValueError(f"{answer!r} is not an answer of the query")

        uses_cache = self.engine.uses_cache
        jobs: list[_Job] = []
        for index, answer in enumerate(answers):
            circuit = result.lineage_of(answer)
            options = self.options
            if options.seed is not None:
                options = options.with_(
                    seed=derive_answer_seed(options.seed, answer)
                )
            if uses_cache:
                # One canonicalization pass per answer: the handle both
                # keys the dedup groups below and rides into the engine
                # through options.artifacts, so explain_circuit never
                # recomputes the signature.
                handle = self.cache.open(circuit)
                options = options.with_(artifacts=handle)
                players = sorted(handle.labels)
                signature = handle.signature
            else:
                players = sorted(circuit.reachable_vars())
                signature = None
            jobs.append(
                _Job(index, answer, circuit, players, options, signature)
            )

        # Dedupe up front: one representative per canonical shape runs
        # in the first wave and populates the cache; everything else is
        # a hit.  Without this, concurrent workers racing on the same
        # cold shape would each compile it.  Engines that never touch
        # the cache (the sampling baselines) skip the signature pass
        # and run everything in one wave.
        if uses_cache:
            groups: dict[object, list[_Job]] = {}
            for job in jobs:
                groups.setdefault(job.signature, []).append(job)
            first_wave = [group[0] for group in groups.values()]
            second_wave = [job for group in groups.values() for job in group[1:]]
            n_shapes = len(groups)
        else:
            first_wave, second_wave = jobs, []
            n_shapes = len(jobs)

        if executor == "process":
            outcomes = self._run_process(first_wave, second_wave)
        else:
            outcomes = self._run_thread(first_wave, second_wave)

        self._answers_explained += len(jobs)
        self._unique_shapes += n_shapes
        return {job.answer: outcomes[job.index] for job in jobs}

    # ------------------------------------------------------------------

    def _run_thread(
        self, first_wave: list[_Job], second_wave: list[_Job]
    ) -> dict[int, EngineResult]:
        outcomes: dict[int, EngineResult] = {}
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            for wave in (first_wave, second_wave):
                futures = {
                    pool.submit(
                        self.engine.explain_circuit,
                        job.circuit, job.players, job.options,
                    ): job
                    for job in wave
                }
                for future, job in futures.items():
                    outcomes[job.index] = future.result()
        return outcomes

    def _run_process(
        self, first_wave: list[_Job], second_wave: list[_Job]
    ) -> dict[int, EngineResult]:
        """Warm up shapes in-process, then fan the rest out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.

        For cache-using engines the warm-up wave runs in the parent so
        every distinct shape compiles exactly once and — when the
        session cache has a persistent store — lands on disk before any
        worker asks for it (workloads where every answer has a distinct
        shape therefore compile in the parent; the pool only pays off
        through shape reuse).  Engines that never compile have no
        warm-up to do, so their single wave goes straight to the pool.
        Workers receive only picklable state (circuit, players, options
        stripped of the cache/handle, the store directory) and reload
        artifacts through their own store-backed cache.
        """
        outcomes: dict[int, EngineResult] = {}
        store = self.cache.store
        store_dir = str(store.directory) if store is not None else None
        if self.engine.uses_cache:
            for job in first_wave:
                outcomes[job.index] = self.engine.explain_circuit(
                    job.circuit, job.players, job.options
                )
            pooled = second_wave
        else:
            pooled = first_wave + second_wave
        if not pooled:
            return outcomes
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {
                pool.submit(
                    _process_explain,
                    self.engine.name,
                    job.circuit,
                    job.players,
                    job.options.with_(cache=None, artifacts=None),
                    store_dir,
                ): job
                for job in pooled
            }
            for future, job in futures.items():
                outcomes[job.index] = future.result()
        return outcomes

    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Session counters merged with both cache tiers' stats.

        ``compile_calls`` vs ``answers_explained`` is the headline
        number: with repeated lineage shapes it is strictly smaller.
        With a persistent store attached, ``store_*`` counters report
        the disk tier (note: worker processes of the ``"process"``
        executor keep their own local counters; only their artifact
        *files* are shared).
        """
        return {
            "answers_explained": self._answers_explained,
            "unique_shapes": self._unique_shapes,
            **self.cache.stats_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExplainSession(method={self.engine.name!r}, "
            f"answers={self._answers_explained}, cache={self.cache!r})"
        )
