"""Batched explanation sessions: dedupe circuits, fan out answers.

:meth:`ExplainSession.explain_many` is the multi-answer counterpart of
:func:`repro.core.attribution.attribute`: it computes the query's
lineage once, groups the answer tuples by canonical circuit shape
(:meth:`~repro.engine.cache.ArtifactCache.signature_of`), and fans the
work out over a :class:`concurrent.futures.ThreadPoolExecutor`.  Each
distinct shape is explained first (a warm-up wave, so every shape
compiles exactly once), then the remaining answers run as pure cache
hits.  Per-tuple budget/timeout outcomes are preserved: each answer
gets its own :class:`~repro.engine.base.EngineResult` with its own
status, exactly as the per-answer path reports them.

Determinism: exact results are independent of scheduling (Fractions
from structure); for the sampling engines each answer's RNG is seeded
with ``options.seed + answer_index``, so batched runs are reproducible
regardless of thread interleaving.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.pipeline import QueryLike, to_plan
from ..db.database import Database
from ..db.evaluate import lineage
from .base import EngineOptions, EngineResult
from .cache import ArtifactCache
from .registry import get_engine


@dataclass
class _Job:
    index: int
    answer: tuple
    circuit: object
    players: list
    options: EngineOptions


class ExplainSession:
    """A database + method + cache bound together for batched work.

    Parameters
    ----------
    database:
        The database with its endogenous/exogenous partition.
    method:
        A registered engine name (see
        :func:`~repro.engine.registry.available_engines`).
    options:
        Engine options; the session's cache is injected into them.
    cache:
        Shared :class:`ArtifactCache`.  ``None`` creates a fresh one;
        pass ``ArtifactCache(max_entries=0)`` to measure uncached runs.
    max_workers:
        Thread-pool width for :meth:`explain_many` (``None`` = executor
        default).
    """

    def __init__(
        self,
        database: Database,
        method: str = "exact",
        options: EngineOptions | None = None,
        cache: ArtifactCache | None = None,
        max_workers: int | None = None,
    ) -> None:
        self.database = database
        self.engine = get_engine(method)
        self.cache = cache if cache is not None else ArtifactCache()
        base = options if options is not None else EngineOptions()
        self.options = base.with_(cache=self.cache)
        self.max_workers = max_workers
        self._answers_explained = 0
        self._unique_shapes = 0

    # ------------------------------------------------------------------

    def explain_one(
        self, circuit, players: Sequence[Hashable]
    ) -> EngineResult:
        """Explain a single prepared lineage circuit (cache-aware)."""
        return self.engine.explain_circuit(circuit, list(players), self.options)

    def explain_many(
        self,
        query: QueryLike,
        answers: Sequence[tuple] | None = None,
    ) -> dict[tuple, EngineResult]:
        """Explain every answer of ``query`` (or the given subset).

        Returns one :class:`EngineResult` per answer, keyed by answer
        tuple and ordered like the query's answer list.
        """
        result = lineage(
            to_plan(query, self.database), self.database, endogenous_only=True
        )
        available = result.tuples()
        if answers is None:
            answers = available
        else:
            known = set(available)
            for answer in answers:
                if answer not in known:
                    raise ValueError(f"{answer!r} is not an answer of the query")

        jobs: list[_Job] = []
        for index, answer in enumerate(answers):
            circuit = result.lineage_of(answer)
            players = sorted(circuit.reachable_vars())
            options = self.options
            if options.seed is not None:
                options = options.with_(seed=options.seed + index)
            jobs.append(_Job(index, answer, circuit, players, options))

        # Dedupe up front: one representative per canonical shape runs
        # in the first wave and populates the cache; everything else is
        # a hit.  Without this, concurrent workers racing on the same
        # cold shape would each compile it.  Engines that never touch
        # the cache (the sampling baselines) skip the signature pass
        # and run everything in one wave.
        if self.engine.uses_cache:
            groups: dict[tuple, list[_Job]] = {}
            for job in jobs:
                signature, _ = self.cache.signature_of(job.circuit)
                groups.setdefault(signature, []).append(job)
            first_wave = [group[0] for group in groups.values()]
            second_wave = [job for group in groups.values() for job in group[1:]]
            n_shapes = len(groups)
        else:
            first_wave, second_wave = jobs, []
            n_shapes = len(jobs)

        outcomes: dict[int, EngineResult] = {}
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            for wave in (first_wave, second_wave):
                futures = {
                    pool.submit(
                        self.engine.explain_circuit,
                        job.circuit, job.players, job.options,
                    ): job
                    for job in wave
                }
                for future, job in futures.items():
                    outcomes[job.index] = future.result()

        self._answers_explained += len(jobs)
        self._unique_shapes += n_shapes
        return {job.answer: outcomes[job.index] for job in jobs}

    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Session counters merged with the cache's hit/miss stats.

        ``compile_calls`` vs ``answers_explained`` is the headline
        number: with repeated lineage shapes it is strictly smaller.
        """
        return {
            "answers_explained": self._answers_explained,
            "unique_shapes": self._unique_shapes,
            **self.cache.stats.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExplainSession(method={self.engine.name!r}, "
            f"answers={self._answers_explained}, cache={self.cache!r})"
        )
